//! The dbTouch kernel: catalog of data objects and the top-level API.
//!
//! The kernel owns the data objects visible on the (simulated) screen. For each
//! object it keeps the dense matrix, the per-column sample hierarchies, the
//! zone-map indexes, the view geometry, the per-object touch action and the
//! per-object cache and prefetcher. The public API mirrors what a dbTouch
//! front-end needs:
//!
//! * load columns/tables ([`Kernel::load_column`], [`Kernel::load_table`]),
//! * choose the query action a gesture triggers ([`Kernel::set_action`]),
//! * run gesture traces ([`Kernel::run_trace`]) — the per-touch processing
//!   itself lives in [`crate::session`],
//! * apply schema/layout gestures: zoom, rotate, drag a column out of a table,
//!   group columns into a table (Section 2.8).

use crate::operators::aggregate::AggregateKind;
use crate::operators::filter::Predicate;
use crate::session::{Session, SessionOutcome};
use dbtouch_gesture::trace::GestureTrace;
use dbtouch_gesture::view::View;
use dbtouch_storage::cache::RegionCache;
use dbtouch_storage::column::Column;
use dbtouch_storage::index::ZoneMapIndex;
use dbtouch_storage::layout::Layout;
use dbtouch_storage::matrix::Matrix;
use dbtouch_storage::prefetch::Prefetcher;
use dbtouch_storage::rotation::RotationTask;
use dbtouch_storage::sample::SampleHierarchy;
use dbtouch_storage::table::Table;
use dbtouch_types::{DbTouchError, KernelConfig, Result, SizeCm};
use serde::{Deserialize, Serialize};

/// Identifier of a data object in the kernel's catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

/// The per-touch query action configured for a data object.
///
/// "Users define the query they wish to run by choosing a few query actions
/// (say a scan or an aggregate for simplicity) and then they start a slide
/// gesture over a column or a table." (Section 2.3)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TouchAction {
    /// Deliver the touched raw value.
    Scan,
    /// Maintain a running aggregate of all touched values.
    Aggregate(AggregateKind),
    /// Interactive summaries: aggregate the `[id-k, id+k]` window around each
    /// touch (Section 2.7). `half_window = None` uses the kernel default.
    Summary {
        /// Half-window `k`; `None` uses [`KernelConfig::summary_half_window`].
        half_window: Option<u64>,
        /// Aggregate applied inside the window.
        kind: AggregateKind,
    },
    /// Deliver touched values that satisfy a where-restriction.
    FilteredScan {
        /// The where-restriction.
        predicate: Predicate,
    },
    /// Maintain a running aggregate of the touched values that satisfy a
    /// where-restriction.
    FilteredAggregate {
        /// The where-restriction.
        predicate: Predicate,
        /// The aggregate maintained over passing values.
        kind: AggregateKind,
    },
    /// Deliver the full tuple at the touched position (tables).
    Tuple,
    /// Incrementally group the touched tuples of a table object: the touched
    /// row's `group_attribute` value selects the group and its
    /// `value_attribute` value feeds that group's running aggregate
    /// (Section 2.9, hash-based grouping made non-blocking).
    GroupBy {
        /// Attribute index whose value identifies the group.
        group_attribute: usize,
        /// Attribute index whose (numeric) value is aggregated per group.
        value_attribute: usize,
        /// The per-group aggregate.
        kind: AggregateKind,
    },
}

impl TouchAction {
    /// The aggregate kind this action maintains across touches, if any.
    pub fn aggregate_kind(&self) -> Option<AggregateKind> {
        match self {
            TouchAction::Aggregate(kind)
            | TouchAction::FilteredAggregate { kind, .. }
            | TouchAction::Summary { kind, .. } => Some(*kind),
            _ => None,
        }
    }
}

/// One data object in the catalog: its storage, geometry and policies.
#[derive(Debug)]
pub(crate) struct DataObject {
    pub(crate) name: String,
    pub(crate) matrix: Matrix,
    pub(crate) hierarchies: Vec<SampleHierarchy>,
    pub(crate) indexes: Vec<Option<ZoneMapIndex>>,
    pub(crate) view: View,
    pub(crate) action: TouchAction,
    pub(crate) cache: RegionCache,
    pub(crate) prefetcher: Prefetcher,
}

impl DataObject {
    pub(crate) fn row_count(&self) -> u64 {
        self.matrix.row_count()
    }

    /// The sample hierarchy of an attribute. Non-numeric attributes have a
    /// degenerate single-level hierarchy (base data only).
    pub(crate) fn hierarchy(&self, attribute: usize) -> Result<&SampleHierarchy> {
        self.hierarchies
            .get(attribute)
            .ok_or_else(|| DbTouchError::NotFound(format!("attribute {attribute}")))
    }

    /// Flip the physical layout of the object's matrix, converting
    /// `chunk_rows` rows at a time (incremental rotation, Section 2.8).
    pub(crate) fn rotate_layout(&mut self, chunk_rows: u64) -> Result<()> {
        let task = RotationTask::new(self.matrix.clone(), chunk_rows);
        self.matrix = task.finish()?;
        self.view = self.view.rotated();
        Ok(())
    }
}

/// The dbTouch kernel.
///
/// ```
/// use dbtouch_core::kernel::{Kernel, TouchAction};
/// use dbtouch_core::operators::aggregate::AggregateKind;
/// use dbtouch_gesture::synthesizer::GestureSynthesizer;
/// use dbtouch_types::{KernelConfig, SizeCm};
///
/// let mut kernel = Kernel::new(KernelConfig::default());
/// let object = kernel
///     .load_column("readings", (0..100_000).collect(), SizeCm::new(2.0, 10.0))
///     .unwrap();
/// kernel
///     .set_action(object, TouchAction::Summary { half_window: Some(5), kind: AggregateKind::Avg })
///     .unwrap();
///
/// let view = kernel.view(object).unwrap();
/// let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
/// let outcome = kernel.run_trace(object, &trace).unwrap();
/// assert!(outcome.stats.entries_returned > 0);
/// assert!(outcome.stats.rows_touched < 100_000);
/// ```
#[derive(Debug)]
pub struct Kernel {
    config: KernelConfig,
    objects: Vec<DataObject>,
}

impl Kernel {
    /// Create a kernel with the given configuration.
    pub fn new(config: KernelConfig) -> Kernel {
        Kernel {
            config,
            objects: Vec::new(),
        }
    }

    /// The kernel configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Number of data objects in the catalog.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// The names of all data objects, in load order. Just by glancing at this
    /// list (the screen), users know what data is available — no schema
    /// knowledge required (Section 2.2, "Schema-less Querying").
    pub fn catalog(&self) -> Vec<String> {
        self.objects.iter().map(|o| o.name.clone()).collect()
    }

    /// Look up an object id by name.
    pub fn object_id(&self, name: &str) -> Result<ObjectId> {
        self.objects
            .iter()
            .position(|o| o.name == name)
            .map(|i| ObjectId(i as u64))
            .ok_or_else(|| DbTouchError::NotFound(name.to_string()))
    }

    fn object(&self, id: ObjectId) -> Result<&DataObject> {
        self.objects
            .get(id.0 as usize)
            .ok_or_else(|| DbTouchError::NotFound(format!("object {}", id.0)))
    }

    fn object_mut(&mut self, id: ObjectId) -> Result<&mut DataObject> {
        self.objects
            .get_mut(id.0 as usize)
            .ok_or_else(|| DbTouchError::NotFound(format!("object {}", id.0)))
    }

    fn register(&mut self, matrix: Matrix, view: View) -> ObjectId {
        let config = &self.config;
        let hierarchies = Self::build_hierarchies(&matrix, config);
        let indexes = Self::build_indexes(&matrix);
        let id = ObjectId(self.objects.len() as u64);
        self.objects.push(DataObject {
            name: matrix.name().to_string(),
            matrix,
            hierarchies,
            indexes,
            view,
            action: TouchAction::Scan,
            cache: if config.cache_enabled {
                RegionCache::new(config.cache_capacity_rows)
            } else {
                RegionCache::disabled()
            },
            prefetcher: if config.prefetch_enabled {
                Prefetcher::new(16)
            } else {
                Prefetcher::disabled()
            },
        });
        id
    }

    fn build_hierarchies(matrix: &Matrix, config: &KernelConfig) -> Vec<SampleHierarchy> {
        let levels = config.sample_levels;
        match matrix.columns() {
            Some(cols) => cols
                .iter()
                .map(|c| {
                    let depth = if c.data_type().is_numeric() { levels } else { 1 };
                    SampleHierarchy::build(c.clone(), depth)
                })
                .collect(),
            None => {
                // Row-major load: build degenerate hierarchies from a columnar copy.
                let columnar = matrix
                    .converted_to(Layout::ColumnMajor)
                    .expect("layout conversion of a valid matrix cannot fail");
                columnar
                    .columns()
                    .expect("column-major matrix has columns")
                    .iter()
                    .map(|c| {
                        let depth = if c.data_type().is_numeric() { levels } else { 1 };
                        SampleHierarchy::build(c.clone(), depth)
                    })
                    .collect()
            }
        }
    }

    fn build_indexes(matrix: &Matrix) -> Vec<Option<ZoneMapIndex>> {
        const INDEX_BLOCK_ROWS: u64 = 4096;
        match matrix.columns() {
            Some(cols) => cols
                .iter()
                .map(|c| {
                    c.data_type()
                        .is_numeric()
                        .then(|| ZoneMapIndex::build(c, INDEX_BLOCK_ROWS).ok())
                        .flatten()
                })
                .collect(),
            None => vec![None; matrix.column_count()],
        }
    }

    /// Load a column of integers as a new data object rendered at `size`.
    pub fn load_column(
        &mut self,
        name: impl Into<String>,
        values: Vec<i64>,
        size: SizeCm,
    ) -> Result<ObjectId> {
        self.load_column_typed(Column::from_i64(name.into(), values), size)
    }

    /// Load a column of floats as a new data object rendered at `size`.
    pub fn load_column_f64(
        &mut self,
        name: impl Into<String>,
        values: Vec<f64>,
        size: SizeCm,
    ) -> Result<ObjectId> {
        self.load_column_typed(Column::from_f64(name.into(), values), size)
    }

    /// Load an already-built column as a new data object rendered at `size`.
    pub fn load_column_typed(&mut self, column: Column, size: SizeCm) -> Result<ObjectId> {
        self.config.validate()?;
        let name = column.name().to_string();
        if self.object_id(&name).is_ok() {
            return Err(DbTouchError::AlreadyExists(name));
        }
        let tuple_count = column.len();
        let view = View::for_column(name, tuple_count, size)?;
        let matrix = Matrix::from_column(column);
        Ok(self.register(matrix, view))
    }

    /// Load a table as a single "fat rectangle" data object rendered at `size`.
    pub fn load_table(&mut self, table: Table, size: SizeCm) -> Result<ObjectId> {
        self.config.validate()?;
        let name = table.name().to_string();
        if self.object_id(&name).is_ok() {
            return Err(DbTouchError::AlreadyExists(name));
        }
        let view = View::for_table(name, table.row_count(), table.column_count(), size)?;
        let matrix = Matrix::from_table(table);
        Ok(self.register(matrix, view))
    }

    /// Set the per-touch query action of an object.
    pub fn set_action(&mut self, id: ObjectId, action: TouchAction) -> Result<()> {
        // Aggregation-style actions require a numeric target column.
        if action.aggregate_kind().is_some() {
            let obj = self.object(id)?;
            let numeric = obj
                .matrix
                .schema()
                .iter()
                .any(|(_, dt)| dt.is_numeric());
            if !numeric {
                return Err(DbTouchError::TypeMismatch {
                    expected: "numeric column".into(),
                    found: "no numeric attribute in object".into(),
                });
            }
        }
        if let TouchAction::GroupBy {
            group_attribute,
            value_attribute,
            ..
        } = &action
        {
            let obj = self.object(id)?;
            let schema = obj.matrix.schema();
            let value_type = schema
                .get(*value_attribute)
                .ok_or_else(|| DbTouchError::NotFound(format!("attribute {value_attribute}")))?
                .1;
            if schema.get(*group_attribute).is_none() {
                return Err(DbTouchError::NotFound(format!(
                    "attribute {group_attribute}"
                )));
            }
            if !value_type.is_numeric() {
                return Err(DbTouchError::TypeMismatch {
                    expected: "numeric value attribute".into(),
                    found: value_type.name(),
                });
            }
        }
        self.object_mut(id)?.action = action;
        Ok(())
    }

    /// The currently configured action of an object.
    pub fn action(&self, id: ObjectId) -> Result<&TouchAction> {
        Ok(&self.object(id)?.action)
    }

    /// A copy of the object's current view (geometry, orientation, zoom).
    pub fn view(&self, id: ObjectId) -> Result<View> {
        Ok(self.object(id)?.view.clone())
    }

    /// The number of tuples in an object.
    pub fn row_count(&self, id: ObjectId) -> Result<u64> {
        Ok(self.object(id)?.row_count())
    }

    /// The current physical layout of an object.
    pub fn layout(&self, id: ObjectId) -> Result<Layout> {
        Ok(self.object(id)?.matrix.layout())
    }

    /// The schema of an object as `(name, type)` pairs.
    pub fn schema(&self, id: ObjectId) -> Result<&[(String, dbtouch_types::DataType)]> {
        Ok(self.object(id)?.matrix.schema())
    }

    /// Read one cell of an object directly (used by join sessions and tests;
    /// ordinary exploration goes through gesture traces instead).
    pub fn cell(
        &self,
        id: ObjectId,
        row: dbtouch_types::RowId,
        attribute: usize,
    ) -> Result<dbtouch_types::Value> {
        self.object(id)?.matrix.get(row, attribute)
    }

    /// Run a gesture trace over an object, returning the produced results and
    /// statistics. This is the main query entry point: the trace plays the role
    /// the SQL string plays in a traditional system.
    pub fn run_trace(&mut self, id: ObjectId, trace: &GestureTrace) -> Result<SessionOutcome> {
        let config = self.config.clone();
        let object = self.object_mut(id)?;
        Session::new(object, &config).run(trace)
    }

    /// Apply a zoom directly (equivalent to a pinch gesture handled outside a
    /// session, e.g. from a UI button).
    pub fn zoom(&mut self, id: ObjectId, factor: f64) -> Result<View> {
        let object = self.object_mut(id)?;
        object.view = object.view.zoomed(factor)?;
        Ok(object.view.clone())
    }

    /// Apply the rotate gesture directly: flips both the on-screen orientation
    /// and the physical layout of the object (Section 2.8).
    pub fn rotate(&mut self, id: ObjectId) -> Result<Layout> {
        let chunk = self.config.rotation_chunk_rows;
        let object = self.object_mut(id)?;
        object.rotate_layout(chunk)?;
        Ok(object.matrix.layout())
    }

    /// Drag a column out of a table object into a new standalone column object
    /// (Section 2.8). The new object is rendered at `size` and the original
    /// table keeps its remaining columns.
    pub fn drag_column_out(
        &mut self,
        table_id: ObjectId,
        column_name: &str,
        size: SizeCm,
    ) -> Result<ObjectId> {
        let (column, remaining) = {
            let obj = self.object(table_id)?;
            let columnar = obj.matrix.converted_to(Layout::ColumnMajor)?;
            let cols = columnar
                .columns()
                .expect("column-major matrix has columns")
                .to_vec();
            let idx = cols
                .iter()
                .position(|c| c.name() == column_name)
                .ok_or_else(|| DbTouchError::NotFound(format!("column {column_name}")))?;
            let mut cols = cols;
            let column = cols.remove(idx);
            (column, cols)
        };
        if remaining.is_empty() {
            return Err(DbTouchError::InvalidPlan(
                "cannot drag the last column out of a table".into(),
            ));
        }
        // Rebuild the source table object with the remaining columns.
        let obj = self.object(table_id)?;
        let table_name = obj.name.clone();
        let old_view = obj.view.clone();
        let new_table = Table::from_columns(table_name, remaining)?;
        let new_view = View::for_table(
            new_table.name().to_string(),
            new_table.row_count(),
            new_table.column_count(),
            old_view.size(),
        )?;
        let rebuilt = Matrix::from_table(new_table);
        {
            let config = self.config.clone();
            let obj = self.object_mut(table_id)?;
            obj.hierarchies = Self::build_hierarchies(&rebuilt, &config);
            obj.indexes = Self::build_indexes(&rebuilt);
            obj.matrix = rebuilt;
            obj.view = new_view;
        }
        // Register the dragged-out column as its own object.
        self.load_column_typed(column, size)
    }

    /// Group standalone column objects into a new table object (the "drag and
    /// drop actions in a table placeholder" of Section 2.8). The source column
    /// objects remain in the catalog.
    pub fn group_into_table(
        &mut self,
        name: impl Into<String>,
        column_ids: &[ObjectId],
        size: SizeCm,
    ) -> Result<ObjectId> {
        if column_ids.is_empty() {
            return Err(DbTouchError::InvalidPlan(
                "grouping requires at least one column object".into(),
            ));
        }
        let mut columns = Vec::with_capacity(column_ids.len());
        for id in column_ids {
            let obj = self.object(*id)?;
            let col = obj
                .matrix
                .columns()
                .and_then(|c| c.first())
                .ok_or_else(|| {
                    DbTouchError::InvalidPlan(format!(
                        "object {} is not a standalone column-major column",
                        obj.name
                    ))
                })?;
            columns.push(col.clone());
        }
        let table = Table::from_columns(name.into(), columns)?;
        self.load_table(table, size)
    }

    /// Cache and prefetcher statistics of an object (for the benchmarks and the
    /// examples' reporting).
    pub fn object_stats(
        &self,
        id: ObjectId,
    ) -> Result<(dbtouch_storage::cache::CacheStats, dbtouch_storage::prefetch::PrefetchStats)>
    {
        let obj = self.object(id)?;
        Ok((obj.cache.stats(), obj.prefetcher.stats()))
    }

    /// The zone-map index of an attribute, if one was built (numeric columns).
    pub fn index(&self, id: ObjectId, attribute: usize) -> Result<Option<&ZoneMapIndex>> {
        let obj = self.object(id)?;
        Ok(obj.indexes.get(attribute).and_then(|i| i.as_ref()))
    }

    /// Reveal a single value by tapping at a fraction of the object's extent —
    /// the schema-discovery interaction of Section 2.2 ("a single tap anywhere
    /// on a column data object reveals a single column value, allowing to
    /// easily recognize the data type of the column").
    pub fn tap(&mut self, id: ObjectId, fraction: f64) -> Result<SessionOutcome> {
        let view = self.view(id)?;
        let mut synthesizer = dbtouch_gesture::synthesizer::GestureSynthesizer::new(
            self.config.touch_sample_rate_hz,
        );
        let trace = synthesizer.tap(&view, fraction.clamp(0.0, 1.0));
        self.run_trace(id, &trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtouch_types::Value;

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig::default())
    }

    #[test]
    fn load_and_catalog() {
        let mut k = kernel();
        let a = k.load_column("a", (0..100).collect(), SizeCm::new(2.0, 10.0)).unwrap();
        let b = k.load_column_f64("b", vec![1.0; 50], SizeCm::new(2.0, 8.0)).unwrap();
        assert_eq!(k.object_count(), 2);
        assert_eq!(k.catalog(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(k.object_id("a").unwrap(), a);
        assert_eq!(k.object_id("b").unwrap(), b);
        assert!(k.object_id("missing").is_err());
        assert_eq!(k.row_count(a).unwrap(), 100);
        assert_eq!(k.layout(a).unwrap(), Layout::ColumnMajor);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut k = kernel();
        k.load_column("a", vec![1, 2, 3], SizeCm::new(2.0, 10.0)).unwrap();
        assert!(matches!(
            k.load_column("a", vec![4, 5], SizeCm::new(2.0, 10.0)),
            Err(DbTouchError::AlreadyExists(_))
        ));
    }

    #[test]
    fn invalid_view_size_rejected() {
        let mut k = kernel();
        assert!(k.load_column("a", vec![1], SizeCm::new(0.0, 10.0)).is_err());
    }

    #[test]
    fn default_action_is_scan_and_can_change() {
        let mut k = kernel();
        let id = k.load_column("a", (0..10).collect(), SizeCm::new(2.0, 10.0)).unwrap();
        assert_eq!(k.action(id).unwrap(), &TouchAction::Scan);
        k.set_action(id, TouchAction::Aggregate(AggregateKind::Sum)).unwrap();
        assert!(matches!(k.action(id).unwrap(), TouchAction::Aggregate(AggregateKind::Sum)));
    }

    #[test]
    fn aggregate_action_requires_numeric_column() {
        let mut k = kernel();
        let strings = Column::from_strings("s", 4, &["a", "b", "c"]).unwrap();
        let id = k.load_column_typed(strings, SizeCm::new(2.0, 10.0)).unwrap();
        assert!(k.set_action(id, TouchAction::Aggregate(AggregateKind::Avg)).is_err());
        assert!(k.set_action(id, TouchAction::Scan).is_ok());
    }

    #[test]
    fn tap_reveals_a_value_for_schema_discovery() {
        let mut k = kernel();
        let id = k.load_column("a", (0..1000).collect(), SizeCm::new(2.0, 10.0)).unwrap();
        let outcome = k.tap(id, 0.5).unwrap();
        assert_eq!(outcome.results.len(), 1);
        let v = outcome.results.latest().unwrap().value().unwrap().clone();
        assert!(matches!(v, Value::Int(_)));
    }

    #[test]
    fn zoom_updates_view_geometry() {
        let mut k = kernel();
        let id = k.load_column("a", (0..1000).collect(), SizeCm::new(2.0, 10.0)).unwrap();
        let v = k.zoom(id, 2.0).unwrap();
        assert_eq!(v.size(), SizeCm::new(4.0, 20.0));
        assert_eq!(k.view(id).unwrap().zoom, 2.0);
        assert!(k.zoom(id, 0.0).is_err());
    }

    #[test]
    fn rotate_flips_layout_and_view() {
        let mut k = kernel();
        let table = Table::from_columns(
            "t",
            vec![
                Column::from_i64("id", (0..500).collect()),
                Column::from_f64("v", (0..500).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        let id = k.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        assert_eq!(k.layout(id).unwrap(), Layout::ColumnMajor);
        assert_eq!(k.rotate(id).unwrap(), Layout::RowMajor);
        assert_eq!(k.view(id).unwrap().orientation, dbtouch_types::Orientation::Horizontal);
        assert_eq!(k.rotate(id).unwrap(), Layout::ColumnMajor);
    }

    #[test]
    fn drag_column_out_creates_new_object() {
        let mut k = kernel();
        let table = Table::from_columns(
            "t",
            vec![
                Column::from_i64("id", (0..100).collect()),
                Column::from_f64("price", (0..100).map(|i| i as f64).collect()),
                Column::from_i64("qty", (0..100).map(|i| i % 7).collect()),
            ],
        )
        .unwrap();
        let tid = k.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        let cid = k.drag_column_out(tid, "price", SizeCm::new(2.0, 10.0)).unwrap();
        assert_eq!(k.catalog(), vec!["t".to_string(), "price".to_string()]);
        assert_eq!(k.row_count(cid).unwrap(), 100);
        assert_eq!(k.view(tid).unwrap().attribute_count, 2);
        assert!(k.drag_column_out(tid, "missing", SizeCm::new(2.0, 10.0)).is_err());
    }

    #[test]
    fn drag_last_column_out_rejected() {
        let mut k = kernel();
        let table = Table::from_columns("t", vec![Column::from_i64("only", vec![1, 2, 3])]).unwrap();
        let tid = k.load_table(table, SizeCm::new(2.0, 10.0)).unwrap();
        assert!(k.drag_column_out(tid, "only", SizeCm::new(2.0, 10.0)).is_err());
    }

    #[test]
    fn group_columns_into_table() {
        let mut k = kernel();
        let a = k.load_column("a", (0..50).collect(), SizeCm::new(2.0, 10.0)).unwrap();
        let b = k.load_column("b", (100..150).collect(), SizeCm::new(2.0, 10.0)).unwrap();
        let t = k.group_into_table("grouped", &[a, b], SizeCm::new(4.0, 10.0)).unwrap();
        assert_eq!(k.row_count(t).unwrap(), 50);
        assert_eq!(k.view(t).unwrap().attribute_count, 2);
        // mismatched lengths fail
        let c = k.load_column("c", (0..10).collect(), SizeCm::new(2.0, 10.0)).unwrap();
        assert!(k.group_into_table("bad", &[a, c], SizeCm::new(4.0, 10.0)).is_err());
        assert!(k.group_into_table("empty", &[], SizeCm::new(4.0, 10.0)).is_err());
    }

    #[test]
    fn indexes_built_for_numeric_columns() {
        let mut k = kernel();
        let id = k.load_column("a", (0..10_000).collect(), SizeCm::new(2.0, 10.0)).unwrap();
        assert!(k.index(id, 0).unwrap().is_some());
        let strings = Column::from_strings("s", 4, &["x", "y"]).unwrap();
        let sid = k.load_column_typed(strings, SizeCm::new(2.0, 10.0)).unwrap();
        assert!(k.index(sid, 0).unwrap().is_none());
        assert!(k.index(id, 5).unwrap().is_none());
    }

    #[test]
    fn object_stats_accessible() {
        let mut k = kernel();
        let id = k.load_column("a", (0..100).collect(), SizeCm::new(2.0, 10.0)).unwrap();
        let (cache, prefetch) = k.object_stats(id).unwrap();
        assert_eq!(cache.hits, 0);
        assert_eq!(prefetch.requests, 0);
    }

    #[test]
    fn unknown_object_errors() {
        let mut k = kernel();
        assert!(k.view(ObjectId(9)).is_err());
        assert!(k.set_action(ObjectId(9), TouchAction::Scan).is_err());
        assert!(k.rotate(ObjectId(9)).is_err());
    }
}
