//! The dbTouch kernel: a single-user facade over the shared catalog.
//!
//! The kernel pairs one [`SharedCatalog`] (the immutable loaded data: matrixes,
//! sample hierarchies, zone-map indexes) with one [`ObjectState`] per object
//! (the mutable exploration state: view geometry, touch action, region cache,
//! prefetcher). The public API mirrors what a dbTouch front-end needs:
//!
//! * load columns/tables ([`Kernel::load_column`], [`Kernel::load_table`]),
//! * choose the query action a gesture triggers ([`Kernel::set_action`]),
//! * run gesture traces ([`Kernel::run_trace`]) — the per-touch processing
//!   itself lives in [`crate::session`],
//! * apply schema/layout gestures: zoom, rotate, drag a column out of a table
//!   (and back in), group columns into a table (Section 2.8).
//!
//! The catalog is epoch-versioned: [`Kernel::run_trace`] is a gesture
//! boundary, so the touched object's state observes the newest catalog epoch
//! right before the trace runs and then keeps that exact view for the whole
//! trace — a restructure published mid-trace (by this kernel's catalog handle
//! or any concurrent session) becomes visible only at the next boundary.
//! [`Kernel::observed_epoch`] and [`Kernel::restructures_seen`] expose what a
//! kernel session has seen.
//!
//! For many concurrent explorers over the same data, share the kernel's
//! catalog ([`Kernel::catalog`]) with `dbtouch-server`'s session manager —
//! every session checks out its own state and the loaded data is never copied.

use crate::catalog::{validate_action, ObjectState, SharedCatalog};
use crate::operators::aggregate::AggregateKind;
use crate::operators::filter::Predicate;
use crate::session::{Session, SessionOutcome};
use dbtouch_gesture::trace::GestureTrace;
use dbtouch_gesture::view::View;
use dbtouch_storage::column::Column;
use dbtouch_storage::index::ZoneMapIndex;
use dbtouch_storage::layout::Layout;
use dbtouch_storage::table::Table;
use dbtouch_types::{DbTouchError, KernelConfig, Result, SizeCm};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Identifier of a data object in the kernel's catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

/// The per-touch query action configured for a data object.
///
/// "Users define the query they wish to run by choosing a few query actions
/// (say a scan or an aggregate for simplicity) and then they start a slide
/// gesture over a column or a table." (Section 2.3)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TouchAction {
    /// Deliver the touched raw value.
    Scan,
    /// Maintain a running aggregate of all touched values.
    Aggregate(AggregateKind),
    /// Interactive summaries: aggregate the `[id-k, id+k]` window around each
    /// touch (Section 2.7). `half_window = None` uses the kernel default.
    Summary {
        /// Half-window `k`; `None` uses [`KernelConfig::summary_half_window`].
        half_window: Option<u64>,
        /// Aggregate applied inside the window.
        kind: AggregateKind,
    },
    /// Deliver touched values that satisfy a where-restriction.
    FilteredScan {
        /// The where-restriction.
        predicate: Predicate,
    },
    /// Maintain a running aggregate of the touched values that satisfy a
    /// where-restriction.
    FilteredAggregate {
        /// The where-restriction.
        predicate: Predicate,
        /// The aggregate maintained over passing values.
        kind: AggregateKind,
    },
    /// Deliver the full tuple at the touched position (tables).
    Tuple,
    /// Incrementally group the touched tuples of a table object: the touched
    /// row's `group_attribute` value selects the group and its
    /// `value_attribute` value feeds that group's running aggregate
    /// (Section 2.9, hash-based grouping made non-blocking).
    GroupBy {
        /// Attribute index whose value identifies the group.
        group_attribute: usize,
        /// Attribute index whose (numeric) value is aggregated per group.
        value_attribute: usize,
        /// The per-group aggregate.
        kind: AggregateKind,
    },
}

impl TouchAction {
    /// The aggregate kind this action maintains across touches, if any.
    pub fn aggregate_kind(&self) -> Option<AggregateKind> {
        match self {
            TouchAction::Aggregate(kind)
            | TouchAction::FilteredAggregate { kind, .. }
            | TouchAction::Summary { kind, .. } => Some(*kind),
            _ => None,
        }
    }
}

/// The dbTouch kernel.
///
/// ```
/// use dbtouch_core::kernel::{Kernel, TouchAction};
/// use dbtouch_core::operators::aggregate::AggregateKind;
/// use dbtouch_gesture::synthesizer::GestureSynthesizer;
/// use dbtouch_types::{KernelConfig, SizeCm};
///
/// let mut kernel = Kernel::new(KernelConfig::default());
/// let object = kernel
///     .load_column("readings", (0..100_000).collect(), SizeCm::new(2.0, 10.0))
///     .unwrap();
/// kernel
///     .set_action(object, TouchAction::Summary { half_window: Some(5), kind: AggregateKind::Avg })
///     .unwrap();
///
/// let view = kernel.view(object).unwrap();
/// let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
/// let outcome = kernel.run_trace(object, &trace).unwrap();
/// assert!(outcome.stats.entries_returned > 0);
/// assert!(outcome.stats.rows_touched < 100_000);
/// ```
#[derive(Debug)]
pub struct Kernel {
    catalog: Arc<SharedCatalog>,
    /// One state slot per catalog id; `None` marks an object removed from the
    /// catalog (its id is a permanent tombstone).
    states: Vec<Option<ObjectState>>,
}

impl Kernel {
    /// Create a kernel with the given configuration (and a fresh catalog).
    pub fn new(config: KernelConfig) -> Kernel {
        Kernel {
            catalog: Arc::new(SharedCatalog::new(config)),
            states: Vec::new(),
        }
    }

    /// A single-user kernel over an existing shared catalog (for comparing a
    /// sequential run against concurrent server sessions on the same data).
    /// State for the objects already loaded is checked out immediately.
    pub fn from_catalog(catalog: Arc<SharedCatalog>) -> Kernel {
        let mut kernel = Kernel {
            catalog,
            states: Vec::new(),
        };
        // Only fails for ids beyond the catalog's length, which cannot happen
        // while we hold the ids we are iterating.
        kernel.sync_states().expect("checkout of existing objects");
        kernel
    }

    /// The shared catalog behind this kernel. Hand a clone of this to
    /// `dbtouch-server` to serve the same data to many concurrent sessions.
    pub fn catalog(&self) -> &Arc<SharedCatalog> {
        &self.catalog
    }

    /// The kernel configuration.
    pub fn config(&self) -> &KernelConfig {
        self.catalog.config()
    }

    /// Number of data objects in the catalog.
    pub fn object_count(&self) -> usize {
        self.catalog.object_count()
    }

    /// The names of all data objects, in load order. Just by glancing at this
    /// list (the screen), users know what data is available — no schema
    /// knowledge required (Section 2.2, "Schema-less Querying").
    pub fn catalog_names(&self) -> Vec<String> {
        self.catalog.names()
    }

    /// Look up an object id by name.
    pub fn object_id(&self, name: &str) -> Result<ObjectId> {
        self.catalog.object_id(name)
    }

    /// Bring this kernel's session state up to the newest catalog epoch:
    /// checkout objects it has no local state for yet (loaded through the
    /// catalog handle or another kernel), observe restructures of objects it
    /// does (cold caches, action kept when it still validates — see
    /// [`ObjectState::refresh`]) and drop state for removed objects. The
    /// mutating entry points call this automatically; call it explicitly
    /// before using the read-only accessors (`view`, `schema`, `row_count`,
    /// …) after the shared catalog handle changed.
    pub fn refresh(&mut self) -> Result<()> {
        self.sync_states()?;
        for slot in &mut self.states {
            let Some(state) = slot else { continue };
            match state.refresh(&self.catalog) {
                Ok(_) => {}
                Err(DbTouchError::NotFound(_)) => *slot = None,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn sync_states(&mut self) -> Result<()> {
        let snapshot = self.catalog.snapshot();
        while self.states.len() < snapshot.slot_count() {
            let id = ObjectId(self.states.len() as u64);
            self.states.push(match snapshot.object(id) {
                Ok(_) => Some(self.catalog.checkout_from(&snapshot, id)?),
                Err(_) => None,
            });
        }
        Ok(())
    }

    /// Gesture-boundary refresh of one object's state (the epoch semantics:
    /// a trace runs against exactly one snapshot, observed at its start).
    fn refresh_state(&mut self, id: ObjectId) -> Result<&mut ObjectState> {
        self.sync_states()?;
        let slot = self
            .states
            .get_mut(id.0 as usize)
            .ok_or_else(|| DbTouchError::NotFound(format!("object {}", id.0)))?;
        let refreshed = match slot.as_mut() {
            Some(state) => state.refresh(&self.catalog),
            None => Err(DbTouchError::NotFound(format!("object {}", id.0))),
        };
        match refreshed {
            Ok(_) => Ok(slot.as_mut().expect("state present: refresh succeeded")),
            Err(e) => {
                if matches!(e, DbTouchError::NotFound(_)) {
                    *slot = None;
                }
                Err(e)
            }
        }
    }

    fn state(&self, id: ObjectId) -> Result<&ObjectState> {
        self.states
            .get(id.0 as usize)
            .and_then(|slot| slot.as_ref())
            .ok_or_else(|| DbTouchError::NotFound(format!("object {}", id.0)))
    }

    fn state_mut(&mut self, id: ObjectId) -> Result<&mut ObjectState> {
        self.sync_states()?;
        self.states
            .get_mut(id.0 as usize)
            .and_then(|slot| slot.as_mut())
            .ok_or_else(|| DbTouchError::NotFound(format!("object {}", id.0)))
    }

    /// Load a column of integers as a new data object rendered at `size`.
    pub fn load_column(
        &mut self,
        name: impl Into<String>,
        values: Vec<i64>,
        size: SizeCm,
    ) -> Result<ObjectId> {
        let id = self.catalog.load_column(name, values, size)?;
        self.sync_states()?;
        Ok(id)
    }

    /// Load a column of floats as a new data object rendered at `size`.
    pub fn load_column_f64(
        &mut self,
        name: impl Into<String>,
        values: Vec<f64>,
        size: SizeCm,
    ) -> Result<ObjectId> {
        let id = self.catalog.load_column_f64(name, values, size)?;
        self.sync_states()?;
        Ok(id)
    }

    /// Load an already-built column as a new data object rendered at `size`.
    pub fn load_column_typed(&mut self, column: Column, size: SizeCm) -> Result<ObjectId> {
        let id = self.catalog.load_column_typed(column, size)?;
        self.sync_states()?;
        Ok(id)
    }

    /// Load a table as a single "fat rectangle" data object rendered at `size`.
    pub fn load_table(&mut self, table: Table, size: SizeCm) -> Result<ObjectId> {
        let id = self.catalog.load_table(table, size)?;
        self.sync_states()?;
        Ok(id)
    }

    /// Set the per-touch query action of an object (this kernel's sessions
    /// only; other sessions over the same catalog keep their own action).
    pub fn set_action(&mut self, id: ObjectId, action: TouchAction) -> Result<()> {
        // A gesture boundary, like the server's SetAction event: observe the
        // newest epoch first so the action is validated against the schema it
        // will actually run under — accepting it against a stale schema would
        // just silently fall back to the default at the next trace.
        let state = self.refresh_state(id)?;
        validate_action(&action, state.data().schema())?;
        state.action = action;
        Ok(())
    }

    /// The currently configured action of an object.
    pub fn action(&self, id: ObjectId) -> Result<&TouchAction> {
        Ok(self.state(id)?.action())
    }

    /// A copy of the object's current view (geometry, orientation, zoom).
    pub fn view(&self, id: ObjectId) -> Result<View> {
        Ok(self.state(id)?.view().clone())
    }

    /// The number of tuples in an object.
    pub fn row_count(&self, id: ObjectId) -> Result<u64> {
        Ok(self.state(id)?.row_count())
    }

    /// The current physical layout of an object (as this kernel sees it).
    pub fn layout(&self, id: ObjectId) -> Result<Layout> {
        Ok(self.state(id)?.matrix.layout())
    }

    /// The schema of an object as `(name, type)` pairs.
    pub fn schema(&self, id: ObjectId) -> Result<&[(String, dbtouch_types::DataType)]> {
        Ok(self.state(id)?.matrix.schema())
    }

    /// Read one cell of an object directly (used by join sessions and tests;
    /// ordinary exploration goes through gesture traces instead).
    pub fn cell(
        &self,
        id: ObjectId,
        row: dbtouch_types::RowId,
        attribute: usize,
    ) -> Result<dbtouch_types::Value> {
        self.state(id)?.matrix.get(row, attribute)
    }

    /// Run a gesture trace over an object, returning the produced results and
    /// statistics. This is the main query entry point: the trace plays the role
    /// the SQL string plays in a traditional system.
    ///
    /// The call is a gesture boundary: the object's state observes the newest
    /// catalog epoch first, then the whole trace runs against that one
    /// consistent snapshot.
    pub fn run_trace(&mut self, id: ObjectId, trace: &GestureTrace) -> Result<SessionOutcome> {
        let config = self.catalog.config().clone();
        let state = self.refresh_state(id)?;
        let queue = state.remote_tier().map(|tier| Arc::clone(tier.queue()));
        let mut outcome = Session::new(state, &config).run(trace)?;
        // The single-user kernel treats the end of a trace as a drain
        // barrier: remote refinements overlapped with the touches of *this*
        // trace, and the outcome handed back is fully refined — bit-identical
        // to the all-local configuration. (The server drains incrementally
        // across traces instead; see `dbtouch-server`.)
        if !outcome.pending.is_empty() {
            let queue = queue.expect("pending refinements imply a remote tier");
            crate::remote_exec::drain_outcome(&mut outcome, &queue)?;
        }
        Ok(outcome)
    }

    /// The catalog epoch this kernel's session over `id` last observed (at
    /// checkout or its most recent gesture boundary).
    pub fn observed_epoch(&self, id: ObjectId) -> Result<u64> {
        Ok(self.state(id)?.epoch())
    }

    /// How many restructures of `id` this kernel's session has observed.
    pub fn restructures_seen(&self, id: ObjectId) -> Result<u64> {
        Ok(self.state(id)?.restructures_seen())
    }

    /// Apply a zoom directly (equivalent to a pinch gesture handled outside a
    /// session, e.g. from a UI button).
    pub fn zoom(&mut self, id: ObjectId, factor: f64) -> Result<View> {
        let state = self.state_mut(id)?;
        state.view = state.view.zoomed(factor)?;
        Ok(state.view.clone())
    }

    /// Apply the rotate gesture directly: flips both the on-screen orientation
    /// and the physical layout of the object (Section 2.8). The rotation is
    /// session-local: other sessions over the same catalog are undisturbed.
    pub fn rotate(&mut self, id: ObjectId) -> Result<Layout> {
        let chunk = self.catalog.config().rotation_chunk_rows;
        let state = self.state_mut(id)?;
        state.rotate_layout(chunk)?;
        Ok(state.matrix.layout())
    }

    /// Drag a column out of a table object into a new standalone column object
    /// (Section 2.8). The new object is rendered at `size` and the original
    /// table keeps its remaining columns. This restructures the shared
    /// catalog: new checkouts see the restructured table.
    pub fn drag_column_out(
        &mut self,
        table_id: ObjectId,
        column_name: &str,
        size: SizeCm,
    ) -> Result<ObjectId> {
        self.sync_states()?;
        self.state(table_id)?; // surface NotFound before touching the catalog
        let id = self.catalog.drag_column_out(table_id, column_name, size)?;
        // Observe the restructure immediately (the kernel performed it, so
        // this *is* its gesture boundary): the rebuilt table's state starts
        // with cold region cache and prefetcher — their row ranges described
        // the pre-restructure build — while the configured action carries
        // across when it still validates (it describes intent, not data).
        // The newly registered column object is checked out alongside.
        self.refresh()?;
        Ok(id)
    }

    /// Drag a standalone column object back into a table — the inverse of
    /// [`Kernel::drag_column_out`]. The table is rebuilt with the column
    /// appended and the standalone object is removed from the catalog; its id
    /// becomes a permanent tombstone and this kernel's state for it is
    /// dropped.
    pub fn drag_column_into(&mut self, table_id: ObjectId, column_id: ObjectId) -> Result<()> {
        self.sync_states()?;
        self.state(table_id)?;
        self.state(column_id)?;
        self.catalog.drag_column_into(table_id, column_id)?;
        self.refresh()?;
        Ok(())
    }

    /// Group standalone column objects into a new table object (the "drag and
    /// drop actions in a table placeholder" of Section 2.8). The source column
    /// objects remain in the catalog; the new table starts with fresh session
    /// state — no region cache, prefetcher or action carries over from the
    /// source objects' sessions.
    pub fn group_into_table(
        &mut self,
        name: impl Into<String>,
        column_ids: &[ObjectId],
        size: SizeCm,
    ) -> Result<ObjectId> {
        self.sync_states()?;
        let id = self.catalog.group_into_table(name, column_ids, size)?;
        self.sync_states()?;
        Ok(id)
    }

    /// Cache and prefetcher statistics of an object (for the benchmarks and the
    /// examples' reporting).
    pub fn object_stats(
        &self,
        id: ObjectId,
    ) -> Result<(
        dbtouch_storage::cache::CacheStats,
        dbtouch_storage::prefetch::PrefetchStats,
    )> {
        let state = self.state(id)?;
        Ok((state.cache.stats(), state.prefetcher.stats()))
    }

    /// The zone-map index of an attribute, if one was built (numeric columns).
    pub fn index(&self, id: ObjectId, attribute: usize) -> Result<Option<&ZoneMapIndex>> {
        let state = self.state(id)?;
        Ok(state.data.indexes().get(attribute).and_then(|i| i.as_ref()))
    }

    /// Reveal a single value by tapping at a fraction of the object's extent —
    /// the schema-discovery interaction of Section 2.2 ("a single tap anywhere
    /// on a column data object reveals a single column value, allowing to
    /// easily recognize the data type of the column").
    pub fn tap(&mut self, id: ObjectId, fraction: f64) -> Result<SessionOutcome> {
        self.sync_states()?;
        let view = self.view(id)?;
        let mut synthesizer = dbtouch_gesture::synthesizer::GestureSynthesizer::new(
            self.catalog.config().touch_sample_rate_hz,
        );
        let trace = synthesizer.tap(&view, fraction.clamp(0.0, 1.0));
        self.run_trace(id, &trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtouch_types::Value;

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig::default())
    }

    #[test]
    fn load_and_catalog() {
        let mut k = kernel();
        let a = k
            .load_column("a", (0..100).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let b = k
            .load_column_f64("b", vec![1.0; 50], SizeCm::new(2.0, 8.0))
            .unwrap();
        assert_eq!(k.object_count(), 2);
        assert_eq!(k.catalog_names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(k.object_id("a").unwrap(), a);
        assert_eq!(k.object_id("b").unwrap(), b);
        assert!(k.object_id("missing").is_err());
        assert_eq!(k.row_count(a).unwrap(), 100);
        assert_eq!(k.layout(a).unwrap(), Layout::ColumnMajor);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut k = kernel();
        k.load_column("a", vec![1, 2, 3], SizeCm::new(2.0, 10.0))
            .unwrap();
        assert!(matches!(
            k.load_column("a", vec![4, 5], SizeCm::new(2.0, 10.0)),
            Err(DbTouchError::AlreadyExists(_))
        ));
    }

    #[test]
    fn invalid_view_size_rejected() {
        let mut k = kernel();
        assert!(k.load_column("a", vec![1], SizeCm::new(0.0, 10.0)).is_err());
    }

    #[test]
    fn default_action_is_scan_and_can_change() {
        let mut k = kernel();
        let id = k
            .load_column("a", (0..10).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        assert_eq!(k.action(id).unwrap(), &TouchAction::Scan);
        k.set_action(id, TouchAction::Aggregate(AggregateKind::Sum))
            .unwrap();
        assert!(matches!(
            k.action(id).unwrap(),
            TouchAction::Aggregate(AggregateKind::Sum)
        ));
    }

    #[test]
    fn aggregate_action_requires_numeric_column() {
        let mut k = kernel();
        let strings = Column::from_strings("s", 4, &["a", "b", "c"]).unwrap();
        let id = k
            .load_column_typed(strings, SizeCm::new(2.0, 10.0))
            .unwrap();
        assert!(k
            .set_action(id, TouchAction::Aggregate(AggregateKind::Avg))
            .is_err());
        assert!(k.set_action(id, TouchAction::Scan).is_ok());
    }

    #[test]
    fn tap_reveals_a_value_for_schema_discovery() {
        let mut k = kernel();
        let id = k
            .load_column("a", (0..1000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let outcome = k.tap(id, 0.5).unwrap();
        assert_eq!(outcome.results.len(), 1);
        let v = outcome.results.latest().unwrap().value().unwrap().clone();
        assert!(matches!(v, Value::Int(_)));
    }

    #[test]
    fn zoom_updates_view_geometry() {
        let mut k = kernel();
        let id = k
            .load_column("a", (0..1000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let v = k.zoom(id, 2.0).unwrap();
        assert_eq!(v.size(), SizeCm::new(4.0, 20.0));
        assert_eq!(k.view(id).unwrap().zoom, 2.0);
        assert!(k.zoom(id, 0.0).is_err());
    }

    #[test]
    fn rotate_flips_layout_and_view() {
        let mut k = kernel();
        let table = Table::from_columns(
            "t",
            vec![
                Column::from_i64("id", (0..500).collect()),
                Column::from_f64("v", (0..500).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        let id = k.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        assert_eq!(k.layout(id).unwrap(), Layout::ColumnMajor);
        assert_eq!(k.rotate(id).unwrap(), Layout::RowMajor);
        assert_eq!(
            k.view(id).unwrap().orientation,
            dbtouch_types::Orientation::Horizontal
        );
        assert_eq!(k.rotate(id).unwrap(), Layout::ColumnMajor);
    }

    #[test]
    fn drag_column_out_creates_new_object() {
        let mut k = kernel();
        let table = Table::from_columns(
            "t",
            vec![
                Column::from_i64("id", (0..100).collect()),
                Column::from_f64("price", (0..100).map(|i| i as f64).collect()),
                Column::from_i64("qty", (0..100).map(|i| i % 7).collect()),
            ],
        )
        .unwrap();
        let tid = k.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        let cid = k
            .drag_column_out(tid, "price", SizeCm::new(2.0, 10.0))
            .unwrap();
        assert_eq!(
            k.catalog_names(),
            vec!["t".to_string(), "price".to_string()]
        );
        assert_eq!(k.row_count(cid).unwrap(), 100);
        assert_eq!(k.view(tid).unwrap().attribute_count, 2);
        assert!(k
            .drag_column_out(tid, "missing", SizeCm::new(2.0, 10.0))
            .is_err());
    }

    #[test]
    fn drag_column_out_name_clash_leaves_table_intact() {
        let mut k = kernel();
        // A standalone object already claims the name "price".
        k.load_column("price", (0..10).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let table = Table::from_columns(
            "t",
            vec![
                Column::from_i64("id", (0..100).collect()),
                Column::from_f64("price", (0..100).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        let tid = k.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        assert!(matches!(
            k.drag_column_out(tid, "price", SizeCm::new(2.0, 10.0)),
            Err(DbTouchError::AlreadyExists(_))
        ));
        // The failed drag must not have stripped the column from the table.
        assert_eq!(k.schema(tid).unwrap().len(), 2);
        assert_eq!(k.view(tid).unwrap().attribute_count, 2);
    }

    #[test]
    fn refresh_exposes_late_catalog_loads_to_readers() {
        let mut a = kernel();
        a.load_column("first", (0..100).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let catalog = std::sync::Arc::clone(a.catalog());
        let late = catalog
            .load_column("late", (0..50).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        a.refresh().unwrap();
        assert_eq!(a.row_count(late).unwrap(), 50);
        assert_eq!(a.view(late).unwrap().tuple_count, 50);
        // tap() syncs on its own even without an explicit refresh.
        let mut b = Kernel::from_catalog(std::sync::Arc::clone(&catalog));
        let later = catalog
            .load_column("later", (0..30).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        assert_eq!(b.tap(later, 0.5).unwrap().results.len(), 1);
    }

    #[test]
    fn drag_column_out_preserves_session_action() {
        let mut k = kernel();
        let table = Table::from_columns(
            "t",
            vec![
                Column::from_i64("id", (0..200).collect()),
                Column::from_f64("price", (0..200).map(|i| i as f64).collect()),
                Column::from_i64("qty", (0..200).map(|i| i % 7).collect()),
            ],
        )
        .unwrap();
        let tid = k.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        k.set_action(tid, TouchAction::Aggregate(AggregateKind::Sum))
            .unwrap();
        k.drag_column_out(tid, "qty", SizeCm::new(2.0, 10.0))
            .unwrap();
        // The configured action survives the restructure...
        assert!(matches!(
            k.action(tid).unwrap(),
            TouchAction::Aggregate(AggregateKind::Sum)
        ));
        // ...but an action referencing a now-invalid attribute falls back.
        k.set_action(
            tid,
            TouchAction::GroupBy {
                group_attribute: 0,
                value_attribute: 1,
                kind: AggregateKind::Sum,
            },
        )
        .unwrap();
        k.drag_column_out(tid, "price", SizeCm::new(2.1, 10.0))
            .unwrap();
        assert_eq!(k.action(tid).unwrap(), &TouchAction::Scan);
    }

    #[test]
    fn drag_column_out_resets_region_cache_and_prefetcher() {
        // Regression: the restructure used to carry the old RegionCache and
        // prefetcher verbatim, so regions "warmed" against the pre-restructure
        // object survived into the rebuilt one.
        let mut k = kernel();
        let table = Table::from_columns(
            "t",
            vec![
                Column::from_i64("id", (0..50_000).collect()),
                Column::from_f64("price", (0..50_000).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        let tid = k.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        let view = k.view(tid).unwrap();
        let trace = dbtouch_gesture::synthesizer::GestureSynthesizer::new(60.0)
            .exploratory_slide(&view, 2.0);
        k.run_trace(tid, &trace).unwrap();
        let (cache_before, prefetch_before) = k.object_stats(tid).unwrap();
        assert!(cache_before.resident_rows > 0, "warm regions expected");
        assert!(
            prefetch_before.requests + prefetch_before.useful_hits + prefetch_before.cold_accesses
                > 0,
            "prefetcher activity expected"
        );

        k.drag_column_out(tid, "price", SizeCm::new(2.0, 10.0))
            .unwrap();
        let (cache_after, prefetch_after) = k.object_stats(tid).unwrap();
        assert_eq!(
            cache_after,
            dbtouch_storage::cache::CacheStats::default(),
            "region cache must start cold after a restructure"
        );
        assert_eq!(
            prefetch_after,
            dbtouch_storage::prefetch::PrefetchStats::default(),
            "prefetcher must start cold after a restructure"
        );
        // The rebuilt object is still fully usable and re-warms from scratch.
        let view = k.view(tid).unwrap();
        let trace =
            dbtouch_gesture::synthesizer::GestureSynthesizer::new(60.0).slide_down(&view, 0.5);
        let outcome = k.run_trace(tid, &trace).unwrap();
        assert!(outcome.stats.entries_returned > 0);
        let (cache_rewarmed, _) = k.object_stats(tid).unwrap();
        assert_eq!(
            cache_rewarmed.hits + cache_rewarmed.misses,
            outcome.stats.cache_hits + outcome.stats.cache_misses,
            "post-restructure stats must come only from post-restructure touches"
        );
    }

    #[test]
    fn drag_last_column_out_rejected() {
        let mut k = kernel();
        let table =
            Table::from_columns("t", vec![Column::from_i64("only", vec![1, 2, 3])]).unwrap();
        let tid = k.load_table(table, SizeCm::new(2.0, 10.0)).unwrap();
        assert!(k
            .drag_column_out(tid, "only", SizeCm::new(2.0, 10.0))
            .is_err());
    }

    #[test]
    fn group_columns_into_table() {
        let mut k = kernel();
        let a = k
            .load_column("a", (0..50).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let b = k
            .load_column("b", (100..150).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let t = k
            .group_into_table("grouped", &[a, b], SizeCm::new(4.0, 10.0))
            .unwrap();
        assert_eq!(k.row_count(t).unwrap(), 50);
        assert_eq!(k.view(t).unwrap().attribute_count, 2);
        // mismatched lengths fail
        let c = k
            .load_column("c", (0..10).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        assert!(k
            .group_into_table("bad", &[a, c], SizeCm::new(4.0, 10.0))
            .is_err());
        assert!(k
            .group_into_table("empty", &[], SizeCm::new(4.0, 10.0))
            .is_err());
    }

    #[test]
    fn indexes_built_for_numeric_columns() {
        let mut k = kernel();
        let id = k
            .load_column("a", (0..10_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        assert!(k.index(id, 0).unwrap().is_some());
        let strings = Column::from_strings("s", 4, &["x", "y"]).unwrap();
        let sid = k
            .load_column_typed(strings, SizeCm::new(2.0, 10.0))
            .unwrap();
        assert!(k.index(sid, 0).unwrap().is_none());
        assert!(k.index(id, 5).unwrap().is_none());
    }

    #[test]
    fn object_stats_accessible() {
        let mut k = kernel();
        let id = k
            .load_column("a", (0..100).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let (cache, prefetch) = k.object_stats(id).unwrap();
        assert_eq!(cache.hits, 0);
        assert_eq!(prefetch.requests, 0);
    }

    #[test]
    fn unknown_object_errors() {
        let mut k = kernel();
        assert!(k.view(ObjectId(9)).is_err());
        assert!(k.set_action(ObjectId(9), TouchAction::Scan).is_err());
        assert!(k.rotate(ObjectId(9)).is_err());
    }

    #[test]
    fn group_into_table_starts_cold_no_cache_or_prefetcher_carryover() {
        // Regression guard (the drag_column_out analogue): the grouped table
        // is a fresh object with fresh per-session state — nothing from the
        // source columns' warmed-up sessions may leak into it.
        let mut k = kernel();
        let a = k
            .load_column("a", (0..50_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let b = k
            .load_column(
                "b",
                (0..50_000).map(|i| i * 2).collect(),
                SizeCm::new(2.0, 10.0),
            )
            .unwrap();
        // Warm the source sessions: region cache and prefetcher activity.
        let view = k.view(a).unwrap();
        let trace = dbtouch_gesture::synthesizer::GestureSynthesizer::new(60.0)
            .exploratory_slide(&view, 2.0);
        k.run_trace(a, &trace).unwrap();
        let (cache_a, prefetch_a) = k.object_stats(a).unwrap();
        assert!(cache_a.resident_rows > 0, "warm regions expected on source");
        assert!(
            prefetch_a.requests + prefetch_a.useful_hits + prefetch_a.cold_accesses > 0,
            "prefetcher activity expected on source"
        );
        k.set_action(a, TouchAction::Aggregate(AggregateKind::Sum))
            .unwrap();

        let t = k
            .group_into_table("grouped", &[a, b], SizeCm::new(4.0, 10.0))
            .unwrap();
        let (cache_t, prefetch_t) = k.object_stats(t).unwrap();
        assert_eq!(
            cache_t,
            dbtouch_storage::cache::CacheStats::default(),
            "grouped table must start with a cold region cache"
        );
        assert_eq!(
            prefetch_t,
            dbtouch_storage::prefetch::PrefetchStats::default(),
            "grouped table must start with a cold prefetcher"
        );
        // The source session's action does not leak either: the new object
        // starts from the default.
        assert_eq!(k.action(t).unwrap(), &TouchAction::Scan);
        // And the source objects are untouched (same identity, same state).
        assert!(matches!(
            k.action(a).unwrap(),
            TouchAction::Aggregate(AggregateKind::Sum)
        ));
        let (cache_a_after, _) = k.object_stats(a).unwrap();
        assert_eq!(cache_a_after, cache_a);
    }

    #[test]
    fn run_trace_is_a_gesture_boundary_for_catalog_restructures() {
        let mut k = kernel();
        let table = Table::from_columns(
            "t",
            vec![
                Column::from_i64("id", (0..5_000).collect()),
                Column::from_f64("v", (0..5_000).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        let tid = k.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        k.set_action(tid, TouchAction::Tuple).unwrap();
        let epoch_before = k.observed_epoch(tid).unwrap();
        assert_eq!(k.restructures_seen(tid).unwrap(), 0);

        // A restructure published through the *catalog handle* (as another
        // session would): this kernel sees it at its next trace boundary.
        let catalog = std::sync::Arc::clone(k.catalog());
        catalog
            .drag_column_out(tid, "v", SizeCm::new(2.0, 10.0))
            .unwrap();
        assert_eq!(k.observed_epoch(tid).unwrap(), epoch_before);
        assert_eq!(k.schema(tid).unwrap().len(), 2, "pre-boundary view");

        let view = k.view(tid).unwrap();
        let trace =
            dbtouch_gesture::synthesizer::GestureSynthesizer::new(60.0).slide_down(&view, 0.3);
        let outcome = k.run_trace(tid, &trace).unwrap();
        assert!(k.observed_epoch(tid).unwrap() > epoch_before);
        assert_eq!(k.restructures_seen(tid).unwrap(), 1);
        assert_eq!(k.schema(tid).unwrap().len(), 1, "post-boundary view");
        // The whole trace ran against the rebuilt single-column table.
        for r in outcome.results.results() {
            assert_eq!(r.values.len(), 1);
        }
    }

    #[test]
    fn drag_column_into_restores_table_and_drops_column_state() {
        let mut k = kernel();
        let table = Table::from_columns(
            "t",
            vec![
                Column::from_i64("id", (0..100).collect()),
                Column::from_f64("price", (0..100).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        let tid = k.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        let cid = k
            .drag_column_out(tid, "price", SizeCm::new(2.0, 10.0))
            .unwrap();
        assert_eq!(k.schema(tid).unwrap().len(), 1);
        k.drag_column_into(tid, cid).unwrap();
        assert_eq!(k.schema(tid).unwrap().len(), 2);
        assert_eq!(k.catalog_names(), vec!["t".to_string()]);
        // The removed object's id is a tombstone everywhere.
        assert!(k.view(cid).is_err());
        assert!(k
            .run_trace(cid, &dbtouch_gesture::trace::GestureTrace::default())
            .is_err());
        assert_eq!(k.restructures_seen(tid).unwrap(), 2);
    }

    #[test]
    fn kernel_from_shared_catalog_sees_loaded_objects() {
        let mut loader = kernel();
        let id = loader
            .load_column("a", (0..1000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let mut other = Kernel::from_catalog(std::sync::Arc::clone(loader.catalog()));
        let outcome = other.tap(id, 0.25).unwrap();
        assert_eq!(outcome.results.len(), 1);
        assert_eq!(other.row_count(id).unwrap(), 1000);
    }
}
