//! The shared data catalog: epoch-versioned immutable snapshots, separated
//! from per-session exploration state.
//!
//! The seed reproduction bundled everything a touch session needs — the dense
//! matrix, sample hierarchies, zone-map indexes, view geometry, region cache
//! and prefetcher — into one mutable `DataObject`, which forced `&mut self`
//! through the whole kernel and limited the system to a single explorer. This
//! module splits that bundle along the concurrency boundary:
//!
//! * [`ObjectData`] — what was *loaded*: the matrix, the per-attribute sample
//!   hierarchies and zone-map indexes, plus the default view geometry and
//!   touch action. Immutable after load, shared across sessions behind `Arc`.
//! * [`ObjectState`] — what a *session* does with it: the session's view
//!   (zoom/rotation), its chosen touch action, its region cache, its
//!   prefetcher, and (after a rotate gesture) its privately rotated copy of
//!   the matrix. Cheap to create, owned by exactly one session.
//! * [`CatalogSnapshot`] — one immutable version of the whole catalog: an
//!   epoch number, a restructure counter, and the object table. Snapshots are
//!   never mutated; every catalog change builds a successor.
//! * [`SharedCatalog`] — the `Send + Sync` registry of loaded objects. The
//!   current snapshot lives in an [`EpochCell`]: readers
//!   ([`checkout`](SharedCatalog::checkout), [`data`](SharedCatalog::data),
//!   name lookups) take it with one wait-free atomic load and never block;
//!   mutators (`load_*`, [`drag_column_out`](SharedCatalog::drag_column_out),
//!   [`drag_column_into`](SharedCatalog::drag_column_into),
//!   [`group_into_table`](SharedCatalog::group_into_table)) build the
//!   successor snapshot entirely off-lock and publish it with a short
//!   compare-and-swap loop — a slow restructure can no longer stall a single
//!   checkout.
//!
//! **Epochs and live sessions.** Every publish advances the snapshot's epoch;
//! rebuild-style publishes (restructures) additionally advance the
//! restructure counter. A checked-out [`ObjectState`] records the epoch it
//! was taken at and keeps that exact view — same matrix, same schema — until
//! its session reaches a gesture boundary and calls
//! [`ObjectState::refresh`]: only then does it observe the newest epoch,
//! rebuilding its state (cold region cache and prefetcher, base view, action
//! kept when it still validates) when its object's data identity changed. A
//! gesture trace therefore always runs against one consistent snapshot —
//! never a half-restructured object.
//!
//! The single-user [`crate::kernel::Kernel`] is now a thin facade: one
//! `SharedCatalog` plus one `ObjectState` per object. `dbtouch-server` runs
//! many sessions against the same catalog from worker threads.

use crate::epoch::EpochCell;
use crate::kernel::{ObjectId, TouchAction};
use crate::morsel::MorselPool;
use crate::remote::NetworkModel;
use crate::remote_exec::{CompletionQueue, RemoteExecutor, RemoteTier};
use dbtouch_gesture::view::View;
use dbtouch_obs::{Gauge, MetricSource, MetricValue, SpanConfig, Telemetry, TraceEventKind};
use dbtouch_storage::cache::RegionCache;
use dbtouch_storage::column::Column;
use dbtouch_storage::index::ZoneMapIndex;
use dbtouch_storage::layout::Layout;
use dbtouch_storage::matrix::Matrix;
use dbtouch_storage::prefetch::Prefetcher;
use dbtouch_storage::rotation::RotationTask;
use dbtouch_storage::sample::SampleHierarchy;
use dbtouch_storage::shared_cache::{next_object_identity, SharedResultCache};
use dbtouch_storage::table::Table;
use dbtouch_types::{DataType, DbTouchError, KernelConfig, Result, SizeCm};
use std::sync::{Arc, Mutex};

/// The immutable, shareable part of a loaded data object.
///
/// Everything here is fixed at load (or restructure) time. Sessions read it
/// concurrently through `Arc<ObjectData>`; nothing in it ever mutates.
#[derive(Debug, Clone)]
pub struct ObjectData {
    name: String,
    /// Process-unique generation of this immutable build. A restructure
    /// (`drag_column_out`, `drag_column_into`) builds fresh `ObjectData` with
    /// a fresh identity, which is what keys (and thereby invalidates) the
    /// shared cross-session result cache. Cloning with unchanged data (e.g.
    /// `set_default_action`) keeps the identity — cached results stay valid.
    identity: u64,
    matrix: Arc<Matrix>,
    hierarchies: Arc<Vec<SampleHierarchy>>,
    indexes: Arc<Vec<Option<ZoneMapIndex>>>,
    base_view: View,
    default_action: TouchAction,
}

impl ObjectData {
    /// Assemble object data from already-built parts: the reopen path of the
    /// persistent catalog (`crate::persist`), where columns, hierarchies and
    /// indexes come from the on-disk store instead of an O(rows) build.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        name: String,
        identity: u64,
        matrix: Arc<Matrix>,
        hierarchies: Arc<Vec<SampleHierarchy>>,
        indexes: Arc<Vec<Option<ZoneMapIndex>>>,
        base_view: View,
        default_action: TouchAction,
    ) -> ObjectData {
        ObjectData {
            name,
            identity,
            matrix,
            hierarchies,
            indexes,
            base_view,
            default_action,
        }
    }

    /// The object's catalog name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The identity of this immutable build (see
    /// [`dbtouch_storage::shared_cache::next_object_identity`]).
    pub fn identity(&self) -> u64 {
        self.identity
    }

    /// The loaded matrix (base layout, before any per-session rotation).
    pub fn matrix(&self) -> &Arc<Matrix> {
        &self.matrix
    }

    /// Per-attribute sample hierarchies.
    pub fn hierarchies(&self) -> &[SampleHierarchy] {
        &self.hierarchies
    }

    /// Per-attribute zone-map indexes (numeric attributes only).
    pub fn indexes(&self) -> &[Option<ZoneMapIndex>] {
        &self.indexes
    }

    /// The default view new sessions start from.
    pub fn base_view(&self) -> &View {
        &self.base_view
    }

    /// The default touch action new sessions start from.
    pub fn default_action(&self) -> &TouchAction {
        &self.default_action
    }

    /// Number of tuples.
    pub fn row_count(&self) -> u64 {
        self.matrix.row_count()
    }

    /// The schema as `(name, type)` pairs.
    pub fn schema(&self) -> &[(String, DataType)] {
        self.matrix.schema()
    }

    /// The standalone column behind a single-column object (`None` for
    /// tables and for row-major loads).
    fn standalone_column(&self) -> Option<&Column> {
        match self.matrix.columns() {
            Some([column]) => Some(column),
            _ => None,
        }
    }
}

/// One immutable version of the catalog: the epoch, the restructure counter
/// and the object table of that version.
///
/// Snapshots are what readers hold: everything read through one
/// `Arc<CatalogSnapshot>` is mutually consistent, no matter how many
/// publishes happen concurrently. Object ids are stable across versions — a
/// restructure replaces an object *in place* and an object removed by
/// [`SharedCatalog::drag_column_into`] leaves a permanent tombstone, so an id
/// never points at a different object later.
#[derive(Debug, Clone)]
pub struct CatalogSnapshot {
    /// Version number: +1 per successful publish of any kind.
    epoch: u64,
    /// How many publishes rebuilt or removed an existing object's data
    /// (`drag_column_out`, `drag_column_into`); loads and metadata edits do
    /// not count.
    restructures: u64,
    /// Object table indexed by `ObjectId`; `None` marks a removed object.
    slots: Vec<Option<Arc<ObjectData>>>,
}

impl CatalogSnapshot {
    /// Assemble a snapshot from persisted parts (`crate::persist`).
    pub(crate) fn from_parts(
        epoch: u64,
        restructures: u64,
        slots: Vec<Option<Arc<ObjectData>>>,
    ) -> CatalogSnapshot {
        CatalogSnapshot {
            epoch,
            restructures,
            slots,
        }
    }

    /// The object table, indexed by id; `None` marks a tombstone.
    pub(crate) fn slots(&self) -> &[Option<Arc<ObjectData>>] {
        &self.slots
    }

    /// The snapshot's version number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Restructures performed up to this version.
    pub fn restructures(&self) -> u64 {
        self.restructures
    }

    /// Number of live (non-removed) objects.
    pub fn object_count(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Number of ids ever allocated, including tombstones of removed objects.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The names of all live objects, in load order (the paper's "screen":
    /// glancing at it tells users what data exists, no schema required).
    pub fn names(&self) -> Vec<String> {
        self.slots
            .iter()
            .flatten()
            .map(|o| o.name.clone())
            .collect()
    }

    /// Look up a live object's id by name.
    pub fn object_id(&self, name: &str) -> Result<ObjectId> {
        self.slots
            .iter()
            .position(|slot| slot.as_ref().is_some_and(|o| o.name == name))
            .map(|i| ObjectId(i as u64))
            .ok_or_else(|| DbTouchError::NotFound(name.to_string()))
    }

    /// The shared data of a live object.
    pub fn object(&self, id: ObjectId) -> Result<&Arc<ObjectData>> {
        self.slots
            .get(id.0 as usize)
            .and_then(|slot| slot.as_ref())
            .ok_or_else(|| DbTouchError::NotFound(format!("object {}", id.0)))
    }

    /// Iterate the live objects with their ids.
    pub fn objects(&self) -> impl Iterator<Item = (ObjectId, &Arc<ObjectData>)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|o| (ObjectId(i as u64), o)))
    }
}

/// The mutable, per-session part of exploring one data object.
///
/// Owned by exactly one session; never shared. Holds `Arc` handles into the
/// shared [`ObjectData`], so creating one is cheap (no data copies) — until
/// the session rotates the object's layout, at which point it gets its own
/// rotated matrix without disturbing other sessions.
#[derive(Debug)]
pub struct ObjectState {
    /// The object this state explores (ids are stable across restructures).
    pub(crate) id: ObjectId,
    /// The catalog epoch this state last observed (at checkout or the most
    /// recent [`refresh`](ObjectState::refresh)).
    pub(crate) epoch: u64,
    /// Restructures of this object the state has observed via refresh.
    pub(crate) restructures_seen: u64,
    pub(crate) data: Arc<ObjectData>,
    /// The matrix this session reads: the shared one, or a session-private
    /// rotated copy after a rotate gesture.
    pub(crate) matrix: Arc<Matrix>,
    pub(crate) view: View,
    pub(crate) action: TouchAction,
    pub(crate) cache: RegionCache,
    pub(crate) prefetcher: Prefetcher,
    /// Handle to the catalog-wide cross-session result cache, `None` when the
    /// configuration disables it.
    pub(crate) shared_cache: Option<Arc<SharedResultCache>>,
    /// The session's device/cloud tier, `None` when the configuration has no
    /// remote split. See [`crate::remote_exec`].
    pub(crate) remote: Option<RemoteTier>,
    /// The catalog-wide morsel pool large summary windows fan out over,
    /// `None` when [`KernelConfig::scan_parallelism`] is 1 (sequential
    /// scans). See [`crate::morsel`].
    pub(crate) morsel: Option<Arc<MorselPool>>,
    /// The owning catalog's telemetry hub (a disabled hub when
    /// [`KernelConfig::telemetry_enabled`] is off). Sessions emit
    /// gesture-lifecycle events through this handle.
    pub(crate) telemetry: Arc<Telemetry>,
}

impl ObjectState {
    /// The id of the object this state explores.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The catalog epoch this state observed at checkout or its latest
    /// [`refresh`](ObjectState::refresh).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// How many restructures of this object the state has observed.
    pub fn restructures_seen(&self) -> u64 {
        self.restructures_seen
    }

    /// The shared data this state explores.
    pub fn data(&self) -> &Arc<ObjectData> {
        &self.data
    }

    /// The session's current view (geometry, orientation, zoom).
    pub fn view(&self) -> &View {
        &self.view
    }

    /// The session's current touch action.
    pub fn action(&self) -> &TouchAction {
        &self.action
    }

    /// Change the session's touch action (validate against
    /// [`ObjectData::schema`] first via [`validate_action`]).
    pub fn set_action(&mut self, action: TouchAction) {
        self.action = action;
    }

    /// Number of tuples visible to this session.
    pub fn row_count(&self) -> u64 {
        self.matrix.row_count()
    }

    /// The sample hierarchy of an attribute. Non-numeric attributes have a
    /// degenerate single-level hierarchy (base data only).
    pub fn hierarchy(&self, attribute: usize) -> Result<&SampleHierarchy> {
        self.data
            .hierarchies
            .get(attribute)
            .ok_or_else(|| DbTouchError::NotFound(format!("attribute {attribute}")))
    }

    /// Flip the physical layout of this session's matrix, converting
    /// `chunk_rows` rows at a time (incremental rotation, Section 2.8). Only
    /// this session sees the rotated copy; the shared catalog is untouched.
    ///
    /// The rotation reads through the shared `Arc<Matrix>` and builds only
    /// the rotated target chunk by chunk — the source is never deep-copied,
    /// so peak memory stays bounded by one extra (target) copy.
    pub(crate) fn rotate_layout(&mut self, chunk_rows: u64) -> Result<()> {
        let task = RotationTask::over(Arc::clone(&self.matrix), chunk_rows);
        self.matrix = Arc::new(task.finish()?);
        self.view = self.view.rotated();
        Ok(())
    }

    /// Observe the newest catalog epoch — the gesture-boundary step of the
    /// live-restructure semantics. Call between gesture traces, never inside
    /// one: a trace always runs against the single snapshot the state last
    /// observed.
    ///
    /// * Epoch unchanged: nothing to do.
    /// * Epoch advanced but this object's data identity is unchanged (other
    ///   objects were loaded or restructured, or only metadata changed): the
    ///   state keeps its view, action, caches and any private rotation; only
    ///   the observed epoch moves forward.
    /// * This object was rebuilt (`drag_column_out` / `drag_column_into` on
    ///   it): the state is rebuilt against the new data — base view, cold
    ///   region cache and prefetcher (their row ranges described the old
    ///   build), shared matrix (a private rotation is dropped). The session's
    ///   action carries over when it still *means the same thing*: it must
    ///   validate against the new schema AND any attribute it references by
    ///   index must still name the column it named before (a restructure may
    ///   reorder the schema — e.g. a dragged-out column returns at the end —
    ///   and silently retargeting an aggregate to a different column would be
    ///   worse than falling back). Otherwise it falls back to the object's
    ///   default.
    ///
    /// Returns `true` when the object's data changed (a restructure was
    /// observed). Errors with `NotFound` when the object was removed from
    /// the catalog ([`SharedCatalog::drag_column_into`] merged it away).
    pub fn refresh(&mut self, catalog: &SharedCatalog) -> Result<bool> {
        let snapshot = catalog.snapshot();
        if snapshot.epoch() == self.epoch {
            return Ok(false);
        }
        let data = snapshot.object(self.id)?.clone();
        self.epoch = snapshot.epoch();
        self.telemetry
            .event(TraceEventKind::EpochRefresh, self.epoch);
        if data.identity == self.data.identity {
            // Same build (the publish that moved the epoch did not rebuild
            // this object's data): keep every piece of session state, track
            // any metadata-only edits through the newer Arc.
            self.data = data;
            return Ok(false);
        }
        let action = if action_survives_rebuild(&self.action, self.data.schema(), data.schema()) {
            self.action.clone()
        } else {
            data.default_action.clone()
        };
        let mut rebuilt = catalog.fresh_state(self.id, self.epoch, data);
        rebuilt.action = action;
        rebuilt.restructures_seen = self.restructures_seen + 1;
        // Refinements of earlier traces are still in flight toward this
        // session's completion queue: the rebuilt state must keep feeding it
        // (they are identity-stamped, so nothing from the old build can ever
        // be applied against the new one).
        if let (Some(rebuilt_tier), Some(old_tier)) =
            (rebuilt.remote.as_mut(), self.remote.as_ref())
        {
            rebuilt_tier.queue = Arc::clone(&old_tier.queue);
        }
        *self = rebuilt;
        Ok(true)
    }

    /// The shared cross-session result cache, when enabled.
    pub fn shared_cache(&self) -> Option<&Arc<SharedResultCache>> {
        self.shared_cache.as_ref()
    }

    /// The session's device/cloud tier, when the catalog runs with a remote
    /// split.
    pub fn remote_tier(&self) -> Option<&RemoteTier> {
        self.remote.as_ref()
    }

    /// The shared morsel pool, when the catalog scans in parallel.
    pub fn morsel_pool(&self) -> Option<&Arc<MorselPool>> {
        self.morsel.as_ref()
    }

    /// Point this state's remote refinements at a caller-owned completion
    /// queue. The server shares one queue across all of a session's states so
    /// its worker drains a single queue per session at event boundaries; must
    /// be called before the state runs a trace (pending refinements already
    /// in flight keep their original queue). No-op without a remote split.
    pub fn set_remote_queue(&mut self, queue: Arc<CompletionQueue>) {
        if let Some(tier) = self.remote.as_mut() {
            tier.queue = queue;
        }
    }
}

/// The concurrent registry of loaded data objects.
///
/// `SharedCatalog` is `Send + Sync`: any number of sessions on any threads
/// checkout per-session [`ObjectState`] and read the shared
/// `Arc<ObjectData>` concurrently. The read path is wait-free — one atomic
/// snapshot load, no lock of any kind — and mutators build successor
/// snapshots off-lock, publishing them with a compare-and-swap loop
/// (rebuilding against the fresh snapshot when they lose the race).
#[derive(Debug)]
pub struct SharedCatalog {
    config: KernelConfig,
    current: EpochCell<CatalogSnapshot>,
    /// Serializes mutators through [`publish`](SharedCatalog::publish) so a
    /// lost CAS race never throws away a completed O(rows) rebuild. Purely a
    /// write-side optimization: correctness rests on the CAS, and readers
    /// never touch this lock — the checkout/read path stays wait-free.
    mutators: Mutex<()>,
    /// The cross-session result cache every checkout of this catalog shares,
    /// `None` when [`KernelConfig::shared_cache_enabled`] is off.
    shared_cache: Option<Arc<SharedResultCache>>,
    /// The remote-processing executor every checkout of this catalog shares,
    /// `Some` only when [`KernelConfig::remote_split`] is set in overlapped
    /// mode (blocking-mode splits pay their latency inline and need no pool).
    remote_executor: Option<Arc<RemoteExecutor>>,
    /// The scan-helper pool every session's large summary windows fan out
    /// over, `Some` only when [`KernelConfig::scan_parallelism`] > 1.
    morsel: Option<Arc<MorselPool>>,
    /// The attached persistent store, when the catalog was opened from (or
    /// created in) a directory via [`SharedCatalog::open`]. Attached catalogs
    /// persist every published epoch; see `crate::persist`.
    persistence: Option<Arc<crate::persist::Persistence>>,
    /// The catalog's telemetry hub. Every layer below (pager, caches, remote
    /// executor) registers itself here; sessions and the server share the
    /// handle through [`ObjectState`] / [`SharedCatalog::telemetry`].
    telemetry: Arc<Telemetry>,
    /// Live catalog gauges scraped through the hub (epoch, restructures,
    /// object count), updated on every publish.
    gauges: Arc<CatalogGauges>,
}

/// Point-in-time catalog gauges registered with the telemetry hub.
#[derive(Debug, Default)]
struct CatalogGauges {
    epoch: Gauge,
    restructures: Gauge,
    objects: Gauge,
}

impl CatalogGauges {
    fn observe(&self, snapshot: &CatalogSnapshot) {
        self.epoch.set(snapshot.epoch);
        self.restructures.set(snapshot.restructures);
        self.objects.set(snapshot.object_count() as u64);
    }
}

impl MetricSource for CatalogGauges {
    fn source_name(&self) -> &'static str {
        "catalog"
    }

    fn collect(&self) -> Vec<(&'static str, MetricValue)> {
        vec![
            ("epoch", MetricValue::Gauge(self.epoch.get())),
            ("restructures", MetricValue::Gauge(self.restructures.get())),
            ("objects", MetricValue::Gauge(self.objects.get())),
        ]
    }
}

impl SharedCatalog {
    /// Create an empty catalog with the given kernel configuration.
    pub fn new(config: KernelConfig) -> SharedCatalog {
        let snapshot = CatalogSnapshot {
            epoch: 0,
            restructures: 0,
            slots: Vec::new(),
        };
        Self::assemble(config, snapshot, None)
    }

    /// Assemble a catalog around an initial snapshot — shared by [`new`]
    /// (empty, memory-only) and the persistent open path (`crate::persist`).
    ///
    /// [`new`]: SharedCatalog::new
    pub(crate) fn assemble(
        config: KernelConfig,
        snapshot: CatalogSnapshot,
        persistence: Option<Arc<crate::persist::Persistence>>,
    ) -> SharedCatalog {
        let shared_cache = config
            .shared_cache_enabled
            .then(|| Arc::new(SharedResultCache::new(config.shared_cache_capacity)));
        let remote_executor = config
            .remote_split
            .as_ref()
            .filter(|split| split.overlapped)
            .map(|split| {
                Arc::new(RemoteExecutor::start(
                    split.io_threads,
                    split.queue_depth,
                    NetworkModel::from_split(split),
                    config.segment_rows,
                ))
            });
        // scan_parallelism counts the submitting session as a worker, so the
        // pool runs one helper fewer.
        let morsel = (config.scan_parallelism > 1)
            .then(|| Arc::new(MorselPool::start(config.scan_parallelism - 1)));
        let telemetry = Arc::new(if config.telemetry_enabled {
            Telemetry::with_spans(
                config.telemetry_ring_capacity,
                config.telemetry_hot_sample,
                SpanConfig {
                    enabled: config.tracing_enabled,
                    tail_threshold_nanos: config.trace_tail_threshold_micros.saturating_mul(1_000),
                    head_sample_every: config.trace_head_sample_every,
                    retained_capacity: config.trace_retained_capacity,
                    max_spans: config.trace_max_spans,
                },
            )
        } else {
            Telemetry::disabled()
        });
        // Every stats-bearing layer registers itself as a scrape source; the
        // snapshot assembles their live values without any report plumbing.
        let gauges = Arc::new(CatalogGauges::default());
        gauges.observe(&snapshot);
        telemetry.register(Arc::clone(&gauges) as Arc<dyn MetricSource>);
        if let Some(cache) = &shared_cache {
            telemetry.register(Arc::clone(cache) as Arc<dyn MetricSource>);
        }
        if let Some(executor) = &remote_executor {
            telemetry.register(Arc::clone(executor) as Arc<dyn MetricSource>);
        }
        if let Some(pool) = &morsel {
            telemetry.register(Arc::clone(pool) as Arc<dyn MetricSource>);
        }
        if let Some(persistence) = &persistence {
            let pager = Arc::clone(persistence.pager());
            pager.attach_telemetry(Arc::clone(&telemetry));
            telemetry.register(Arc::clone(pager.encoding_stats()) as Arc<dyn MetricSource>);
            telemetry.register(pager as Arc<dyn MetricSource>);
        }
        SharedCatalog {
            config,
            current: EpochCell::new(Arc::new(snapshot)),
            mutators: Mutex::new(()),
            shared_cache,
            remote_executor,
            morsel,
            persistence,
            telemetry,
            gauges,
        }
    }

    /// The catalog's telemetry hub (disabled when the configuration turns
    /// telemetry off — recording through it is then a no-op).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// The attached persistent store, if any.
    pub(crate) fn persistence(&self) -> Option<&Arc<crate::persist::Persistence>> {
        self.persistence.as_ref()
    }

    /// The kernel configuration sessions run under.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// The catalog-wide cross-session result cache, when enabled.
    pub fn shared_cache(&self) -> Option<&Arc<SharedResultCache>> {
        self.shared_cache.as_ref()
    }

    /// The remote-processing executor, when the catalog runs an overlapped
    /// device/cloud split.
    pub fn remote_executor(&self) -> Option<&Arc<RemoteExecutor>> {
        self.remote_executor.as_ref()
    }

    /// The catalog-wide morsel scan pool, when `scan_parallelism` > 1.
    pub fn morsel_pool(&self) -> Option<&Arc<MorselPool>> {
        self.morsel.as_ref()
    }

    /// The current catalog snapshot (wait-free). Everything read through the
    /// returned `Arc` is mutually consistent.
    pub fn snapshot(&self) -> Arc<CatalogSnapshot> {
        self.current.load()
    }

    /// The current epoch: +1 per successful publish of any kind.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// How many publishes rebuilt or removed an existing object's data.
    pub fn restructure_count(&self) -> u64 {
        self.snapshot().restructures
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.snapshot().object_count()
    }

    /// The names of all live objects, in load order.
    pub fn names(&self) -> Vec<String> {
        self.snapshot().names()
    }

    /// Look up an object id by name.
    pub fn object_id(&self, name: &str) -> Result<ObjectId> {
        self.snapshot().object_id(name)
    }

    /// The shared data of an object.
    pub fn data(&self, id: ObjectId) -> Result<Arc<ObjectData>> {
        self.snapshot().object(id).cloned()
    }

    /// Create fresh per-session state for an object: the default view and
    /// action, an empty cache and prefetcher, and the shared matrix. The
    /// state records the epoch it was taken at; see
    /// [`ObjectState::refresh`] for how it observes later epochs.
    pub fn checkout(&self, id: ObjectId) -> Result<ObjectState> {
        let snapshot = self.snapshot();
        self.checkout_from(&snapshot, id)
    }

    /// Checkout against an already-loaded snapshot (one consistent version
    /// for a batch of checkouts).
    pub(crate) fn checkout_from(
        &self,
        snapshot: &CatalogSnapshot,
        id: ObjectId,
    ) -> Result<ObjectState> {
        let data = snapshot.object(id)?.clone();
        Ok(self.fresh_state(id, snapshot.epoch, data))
    }

    fn fresh_state(&self, id: ObjectId, epoch: u64, data: Arc<ObjectData>) -> ObjectState {
        let config = &self.config;
        ObjectState {
            id,
            epoch,
            restructures_seen: 0,
            matrix: data.matrix.clone(),
            view: data.base_view.clone(),
            action: data.default_action.clone(),
            cache: if config.cache_enabled {
                RegionCache::new(config.cache_capacity_rows)
            } else {
                RegionCache::disabled()
            },
            prefetcher: if config.prefetch_enabled {
                Prefetcher::new(16)
            } else {
                Prefetcher::disabled()
            },
            shared_cache: self.shared_cache.clone(),
            remote: config.remote_split.as_ref().map(|split| RemoteTier {
                local_min_level: split.local_min_level,
                network: NetworkModel::from_split(split),
                overlapped: split.overlapped,
                executor: self.remote_executor.clone(),
                queue: Arc::new(CompletionQueue::new()),
            }),
            morsel: self.morsel.clone(),
            telemetry: Arc::clone(&self.telemetry),
            data,
        }
    }

    /// Load a column of integers as a new data object rendered at `size`.
    pub fn load_column(
        &self,
        name: impl Into<String>,
        values: Vec<i64>,
        size: SizeCm,
    ) -> Result<ObjectId> {
        self.load_column_typed(Column::from_i64(name.into(), values), size)
    }

    /// Load a column of floats as a new data object rendered at `size`.
    pub fn load_column_f64(
        &self,
        name: impl Into<String>,
        values: Vec<f64>,
        size: SizeCm,
    ) -> Result<ObjectId> {
        self.load_column_typed(Column::from_f64(name.into(), values), size)
    }

    /// Load an already-built column as a new data object rendered at `size`.
    pub fn load_column_typed(&self, column: Column, size: SizeCm) -> Result<ObjectId> {
        self.config.validate()?;
        let name = column.name().to_string();
        let tuple_count = column.len();
        let view = View::for_column(name, tuple_count, size)?;
        let matrix = Matrix::from_column(column);
        self.register(matrix, view)
    }

    /// Load a table as a single "fat rectangle" data object rendered at `size`.
    pub fn load_table(&self, table: Table, size: SizeCm) -> Result<ObjectId> {
        self.config.validate()?;
        let view = View::for_table(
            table.name().to_string(),
            table.row_count(),
            table.column_count(),
            size,
        )?;
        let matrix = Matrix::from_table(table);
        self.register(matrix, view)
    }

    /// Change the default touch action new sessions start from. Existing
    /// checked-out states are unaffected (they own their action). The action
    /// is validated against the exact snapshot the publish asserts, so a
    /// concurrent restructure cannot slip an invalid default in — the CAS
    /// fails and the edit revalidates against the fresh snapshot.
    pub fn set_default_action(&self, id: ObjectId, action: TouchAction) -> Result<()> {
        self.publish(|snapshot| {
            let obj = snapshot.object(id)?;
            validate_action(&action, obj.matrix.schema())?;
            let mut updated = (**obj).clone();
            updated.default_action = action.clone();
            let mut slots = snapshot.slots.clone();
            slots[id.0 as usize] = Some(Arc::new(updated));
            Ok((slots, 0, ()))
        })
    }

    /// Drag a column out of a table object into a new standalone column
    /// object (Section 2.8). The whole restructure — name-clash check, table
    /// rebuild, registration of the standalone column — is built against one
    /// snapshot and published atomically, entirely off-lock: concurrent
    /// checkouts never wait for the O(rows) rebuild, and a concurrent load
    /// cannot leave the table restructured with the dragged column lost
    /// (the CAS fails and the rebuild retries against the fresh snapshot).
    /// Sessions holding the old table `Arc` keep reading the old data until
    /// their next [`ObjectState::refresh`]; new checkouts see the
    /// restructured table immediately.
    pub fn drag_column_out(
        &self,
        table_id: ObjectId,
        column_name: &str,
        size: SizeCm,
    ) -> Result<ObjectId> {
        let (id, old_identity) = self.publish(|snapshot| {
            let obj = snapshot.object(table_id)?;
            let mut cols = table_columns(obj)?;
            let idx = cols
                .iter()
                .position(|c| c.name() == column_name)
                .ok_or_else(|| DbTouchError::NotFound(format!("column {column_name}")))?;
            let column = cols.remove(idx);
            if cols.is_empty() {
                return Err(DbTouchError::InvalidPlan(
                    "cannot drag the last column out of a table".into(),
                ));
            }
            if snapshot.object_id(column_name).is_ok() {
                return Err(DbTouchError::AlreadyExists(column_name.to_string()));
            }
            let rebuilt = self.rebuild_table(obj, cols)?;
            let column_view = View::for_column(column.name().to_string(), column.len(), size)?;
            let standalone = self.build_data(Matrix::from_column(column), column_view)?;
            let old_identity = obj.identity;
            let mut slots = snapshot.slots.clone();
            slots[table_id.0 as usize] = Some(Arc::new(rebuilt));
            let id = ObjectId(slots.len() as u64);
            slots.push(Some(Arc::new(standalone)));
            Ok((slots, 1, (id, old_identity)))
        })?;
        // The rebuilt table carries a fresh identity, so shared-cache entries
        // computed against the old build can never be served for it; eagerly
        // dropping them just frees the memory sooner. Runs after the publish
        // — the O(cache-size) sweep must not sit inside the retry loop.
        if let Some(cache) = &self.shared_cache {
            cache.invalidate_object(old_identity);
        }
        Ok(id)
    }

    /// Drag a standalone column object back into a table — the inverse of
    /// [`drag_column_out`](SharedCatalog::drag_column_out) (the "drag and
    /// drop actions in a table placeholder" of Section 2.8). The table is
    /// rebuilt with the column appended and the standalone object is removed
    /// from the catalog; its id becomes a permanent tombstone (ids are never
    /// reused). Sessions still holding the removed object keep reading their
    /// `Arc`'d data; their next [`ObjectState::refresh`] reports `NotFound`.
    pub fn drag_column_into(&self, table_id: ObjectId, column_id: ObjectId) -> Result<()> {
        if table_id == column_id {
            return Err(DbTouchError::InvalidPlan(
                "cannot drag an object into itself".into(),
            ));
        }
        let (old_table_identity, old_column_identity) = self.publish(|snapshot| {
            let table = snapshot.object(table_id)?;
            let column_obj = snapshot.object(column_id)?;
            let column = column_obj.standalone_column().cloned().ok_or_else(|| {
                DbTouchError::InvalidPlan(format!(
                    "object {} is not a standalone column-major column",
                    column_obj.name
                ))
            })?;
            let mut cols = table_columns(table)?;
            if cols.iter().any(|c| c.name() == column.name()) {
                return Err(DbTouchError::AlreadyExists(format!(
                    "column {} in table {}",
                    column.name(),
                    table.name
                )));
            }
            cols.push(column);
            let rebuilt = self.rebuild_table(table, cols)?;
            let identities = (table.identity, column_obj.identity);
            let mut slots = snapshot.slots.clone();
            slots[table_id.0 as usize] = Some(Arc::new(rebuilt));
            slots[column_id.0 as usize] = None;
            Ok((slots, 1, identities))
        })?;
        if let Some(cache) = &self.shared_cache {
            cache.invalidate_object(old_table_identity);
            cache.invalidate_object(old_column_identity);
        }
        Ok(())
    }

    /// Group standalone column objects into a new table object (Section 2.8).
    /// The source column objects remain in the catalog; the new table is
    /// registered as a fresh object with fresh per-session state — nothing
    /// (region cache, prefetcher, actions) carries over from the sources.
    pub fn group_into_table(
        &self,
        name: impl Into<String>,
        column_ids: &[ObjectId],
        size: SizeCm,
    ) -> Result<ObjectId> {
        self.config.validate()?;
        if column_ids.is_empty() {
            return Err(DbTouchError::InvalidPlan(
                "grouping requires at least one column object".into(),
            ));
        }
        let name = name.into();
        self.publish(|snapshot| {
            if snapshot.object_id(&name).is_ok() {
                return Err(DbTouchError::AlreadyExists(name.clone()));
            }
            let mut columns = Vec::with_capacity(column_ids.len());
            for id in column_ids {
                let obj = snapshot.object(*id)?;
                let col = obj.standalone_column().cloned().ok_or_else(|| {
                    DbTouchError::InvalidPlan(format!(
                        "object {} is not a standalone column-major column",
                        obj.name
                    ))
                })?;
                columns.push(col);
            }
            let table = Table::from_columns(name.clone(), columns)?;
            let view = View::for_table(
                table.name().to_string(),
                table.row_count(),
                table.column_count(),
                size,
            )?;
            let data = self.build_data(Matrix::from_table(table), view)?;
            let mut slots = snapshot.slots.clone();
            let id = ObjectId(slots.len() as u64);
            slots.push(Some(Arc::new(data)));
            Ok((slots, 0, id))
        })
    }

    /// The read-copy-update loop every mutator goes through: load the current
    /// snapshot, let `mutate` build the successor's slots with no reader
    /// blocked, publish with a compare-and-swap; if another publish won the
    /// race anyway, rebuild against the fresh snapshot. `mutate` returns the
    /// new slots, how many restructures the change performs (0 or 1) and the
    /// caller's result.
    ///
    /// Mutators are serialized by the `mutators` lock for the duration of
    /// their build, so under sustained churn each O(rows) restructure build
    /// runs exactly once instead of being discarded and redone on every lost
    /// race. The CAS remains the actual publication step (and keeps the loop
    /// correct even for a publisher that bypassed the lock); readers are
    /// oblivious to all of this — `EpochCell::load` never blocks.
    fn publish<R>(
        &self,
        mut mutate: impl FnMut(&CatalogSnapshot) -> Result<(Vec<Option<Arc<ObjectData>>>, u64, R)>,
    ) -> Result<R> {
        let _serialized = self.mutators.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            let current = self.current.load();
            let (slots, restructured, out) = mutate(&current)?;
            let next = Arc::new(CatalogSnapshot {
                epoch: current.epoch + 1,
                restructures: current.restructures + restructured,
                slots,
            });
            if self.current.publish_if_current(&current, Arc::clone(&next)) {
                self.gauges.observe(&next);
                self.telemetry
                    .event(TraceEventKind::EpochPublished, next.epoch);
                // Attached catalogs persist the epoch they just published —
                // still under the mutators lock, so manifests land in epoch
                // order and a directory is always exactly one epoch. The
                // in-memory publish has already happened; a persist failure
                // is reported to the mutator as the durability error it is.
                if let Some(persistence) = &self.persistence {
                    persistence.persist_snapshot(&next)?;
                }
                return Ok(out);
            }
        }
    }

    fn register(&self, matrix: Matrix, view: View) -> Result<ObjectId> {
        // Cheap duplicate check first: building sample hierarchies and
        // indexes is O(rows), so don't pay it for a name that will be
        // rejected. The check is repeated inside the publish loop for the
        // race where two loaders register the same name concurrently.
        if self.object_id(matrix.name()).is_ok() {
            return Err(DbTouchError::AlreadyExists(matrix.name().to_string()));
        }
        let data = Arc::new(self.build_data(matrix, view)?);
        self.publish(|snapshot| {
            if snapshot.object_id(&data.name).is_ok() {
                return Err(DbTouchError::AlreadyExists(data.name.clone()));
            }
            let mut slots = snapshot.slots.clone();
            let id = ObjectId(slots.len() as u64);
            slots.push(Some(Arc::clone(&data)));
            Ok((slots, 0, id))
        })
    }

    fn build_data(&self, matrix: Matrix, view: View) -> Result<ObjectData> {
        let hierarchies = build_hierarchies(&matrix, &self.config)?;
        let indexes = build_indexes(&matrix);
        Ok(ObjectData {
            name: matrix.name().to_string(),
            identity: next_object_identity(),
            matrix: Arc::new(matrix),
            hierarchies: Arc::new(hierarchies),
            indexes: Arc::new(indexes),
            base_view: view,
            default_action: TouchAction::Scan,
        })
    }

    /// Rebuild a table object's data from a new column set, keeping its name
    /// and on-screen size (fresh identity, hierarchies and indexes) — the
    /// shared core of `drag_column_out` and `drag_column_into`.
    fn rebuild_table(&self, obj: &ObjectData, cols: Vec<Column>) -> Result<ObjectData> {
        let table = Table::from_columns(obj.name.clone(), cols)?;
        let view = View::for_table(
            table.name().to_string(),
            table.row_count(),
            table.column_count(),
            obj.base_view.size(),
        )?;
        self.build_data(Matrix::from_table(table), view)
    }
}

/// A table object's columns, in schema order (via a column-major copy when
/// the object is currently row-major).
fn table_columns(obj: &ObjectData) -> Result<Vec<Column>> {
    let columnar = obj.matrix.converted_to(Layout::ColumnMajor)?;
    Ok(columnar
        .columns()
        .expect("column-major matrix has columns")
        .to_vec())
}

/// Whether a session's action carries across a rebuild from `old` schema to
/// `new` schema: it must validate against `new`, and any attribute it names
/// by index must still be the same column — otherwise a schema reorder (a
/// ping-ponged column returns at the end of the table) would silently
/// retarget the action to different data.
fn action_survives_rebuild(
    action: &TouchAction,
    old: &[(String, DataType)],
    new: &[(String, DataType)],
) -> bool {
    if validate_action(action, new).is_err() {
        return false;
    }
    match action {
        TouchAction::GroupBy {
            group_attribute,
            value_attribute,
            ..
        } => {
            let same_column =
                |i: usize| old.get(i).map(|(name, _)| name) == new.get(i).map(|(name, _)| name);
            same_column(*group_attribute) && same_column(*value_attribute)
        }
        // The remaining actions address whatever attribute the touch lands
        // on — no stored index to go stale.
        _ => true,
    }
}

/// Validate that `action` is runnable against `schema` (shared by the kernel,
/// the catalog and the server's session workers).
pub fn validate_action(action: &TouchAction, schema: &[(String, DataType)]) -> Result<()> {
    if action.aggregate_kind().is_some() {
        let numeric = schema.iter().any(|(_, dt)| dt.is_numeric());
        if !numeric {
            return Err(DbTouchError::TypeMismatch {
                expected: "numeric column".into(),
                found: "no numeric attribute in object".into(),
            });
        }
    }
    if let TouchAction::GroupBy {
        group_attribute,
        value_attribute,
        ..
    } = action
    {
        let value_type = schema
            .get(*value_attribute)
            .ok_or_else(|| DbTouchError::NotFound(format!("attribute {value_attribute}")))?
            .1;
        if schema.get(*group_attribute).is_none() {
            return Err(DbTouchError::NotFound(format!(
                "attribute {group_attribute}"
            )));
        }
        if !value_type.is_numeric() {
            return Err(DbTouchError::TypeMismatch {
                expected: "numeric value attribute".into(),
                found: value_type.name(),
            });
        }
    }
    Ok(())
}

fn build_hierarchies(matrix: &Matrix, config: &KernelConfig) -> Result<Vec<SampleHierarchy>> {
    let levels = config.sample_levels;
    let build_all = |cols: &[Column]| -> Result<Vec<SampleHierarchy>> {
        cols.iter()
            .map(|c| {
                let depth = if c.data_type().is_numeric() {
                    levels
                } else {
                    1
                };
                SampleHierarchy::build(c.clone(), depth)
            })
            .collect()
    };
    match matrix.columns() {
        Some(cols) => build_all(cols),
        None => {
            // Row-major load: build degenerate hierarchies from a columnar copy.
            let columnar = matrix.converted_to(Layout::ColumnMajor)?;
            build_all(columnar.columns().expect("column-major matrix has columns"))
        }
    }
}

fn build_indexes(matrix: &Matrix) -> Vec<Option<ZoneMapIndex>> {
    const INDEX_BLOCK_ROWS: u64 = 4096;
    match matrix.columns() {
        Some(cols) => cols
            .iter()
            .map(|c| {
                c.data_type()
                    .is_numeric()
                    .then(|| ZoneMapIndex::build(c, INDEX_BLOCK_ROWS).ok())
                    .flatten()
            })
            .collect(),
        None => vec![None; matrix.column_count()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use dbtouch_gesture::synthesizer::GestureSynthesizer;

    fn assert_send_sync<T: Send + Sync>() {}

    fn two_column_table(rows: i64) -> Table {
        Table::from_columns(
            "t",
            vec![
                Column::from_i64("id", (0..rows).collect()),
                Column::from_f64("v", (0..rows).map(|i| i as f64).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn shared_catalog_is_send_and_sync() {
        assert_send_sync::<SharedCatalog>();
        assert_send_sync::<Arc<ObjectData>>();
        assert_send_sync::<Arc<CatalogSnapshot>>();
        assert_send_sync::<ObjectState>();
    }

    #[test]
    fn checkout_shares_data_without_copying() {
        let catalog = SharedCatalog::new(KernelConfig::default());
        let id = catalog
            .load_column("a", (0..10_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let s1 = catalog.checkout(id).unwrap();
        let s2 = catalog.checkout(id).unwrap();
        assert!(Arc::ptr_eq(&s1.matrix, &s2.matrix));
        assert!(Arc::ptr_eq(&s1.data, &s2.data));
        assert_eq!(s1.row_count(), 10_000);
        assert_eq!(s1.id(), id);
        assert_eq!(s1.epoch(), catalog.epoch());
        assert_eq!(s1.restructures_seen(), 0);
    }

    #[test]
    fn per_session_rotation_does_not_disturb_other_sessions() {
        let catalog = SharedCatalog::new(KernelConfig::default());
        let id = catalog
            .load_table(two_column_table(100), SizeCm::new(6.0, 10.0))
            .unwrap();
        let mut s1 = catalog.checkout(id).unwrap();
        let s2 = catalog.checkout(id).unwrap();
        s1.rotate_layout(16).unwrap();
        assert_eq!(s1.matrix.layout(), Layout::RowMajor);
        assert_eq!(s2.matrix.layout(), Layout::ColumnMajor);
        assert_eq!(
            catalog.checkout(id).unwrap().matrix.layout(),
            Layout::ColumnMajor
        );
    }

    #[test]
    fn default_action_applies_to_new_checkouts_only() {
        let catalog = SharedCatalog::new(KernelConfig::default());
        let id = catalog
            .load_column("a", (0..100).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let before = catalog.checkout(id).unwrap();
        catalog
            .set_default_action(
                id,
                TouchAction::Aggregate(crate::operators::aggregate::AggregateKind::Sum),
            )
            .unwrap();
        let after = catalog.checkout(id).unwrap();
        assert_eq!(before.action(), &TouchAction::Scan);
        assert!(matches!(after.action(), TouchAction::Aggregate(_)));
    }

    #[test]
    fn duplicate_names_rejected() {
        let catalog = SharedCatalog::new(KernelConfig::default());
        catalog
            .load_column("a", vec![1, 2, 3], SizeCm::new(2.0, 10.0))
            .unwrap();
        assert!(matches!(
            catalog.load_column("a", vec![4], SizeCm::new(2.0, 10.0)),
            Err(DbTouchError::AlreadyExists(_))
        ));
    }

    #[test]
    fn epoch_advances_on_every_publish_restructures_only_on_rebuilds() {
        let catalog = SharedCatalog::new(KernelConfig::default());
        assert_eq!(catalog.epoch(), 0);
        assert_eq!(catalog.restructure_count(), 0);

        let tid = catalog
            .load_table(two_column_table(100), SizeCm::new(6.0, 10.0))
            .unwrap();
        assert_eq!(catalog.epoch(), 1);
        assert_eq!(catalog.restructure_count(), 0);

        catalog.set_default_action(tid, TouchAction::Tuple).unwrap();
        assert_eq!(catalog.epoch(), 2);
        assert_eq!(catalog.restructure_count(), 0);

        let cid = catalog
            .drag_column_out(tid, "v", SizeCm::new(2.0, 10.0))
            .unwrap();
        assert_eq!(catalog.epoch(), 3);
        assert_eq!(catalog.restructure_count(), 1);

        catalog.drag_column_into(tid, cid).unwrap();
        assert_eq!(catalog.epoch(), 4);
        assert_eq!(catalog.restructure_count(), 2);

        // A failed mutation publishes nothing.
        assert!(catalog
            .drag_column_out(tid, "missing", SizeCm::new(2.0, 10.0))
            .is_err());
        assert_eq!(catalog.epoch(), 4);
    }

    #[test]
    fn refresh_is_lazy_until_the_epoch_moves() {
        let catalog = SharedCatalog::new(KernelConfig::default());
        let id = catalog
            .load_column("a", (0..100).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let mut state = catalog.checkout(id).unwrap();
        assert!(!state.refresh(&catalog).unwrap());

        // An unrelated load moves the epoch but not this object's identity:
        // the session keeps everything, including a private rotation.
        catalog
            .load_table(two_column_table(50), SizeCm::new(6.0, 10.0))
            .unwrap();
        let mut rotated = catalog.checkout(catalog.object_id("t").unwrap()).unwrap();
        rotated.rotate_layout(16).unwrap();
        catalog
            .load_column("b", (0..10).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        assert!(!rotated.refresh(&catalog).unwrap());
        assert_eq!(rotated.matrix.layout(), Layout::RowMajor);
        assert_eq!(rotated.epoch(), catalog.epoch());
        assert!(!state.refresh(&catalog).unwrap());
        assert_eq!(state.epoch(), catalog.epoch());
        assert_eq!(state.restructures_seen(), 0);
    }

    #[test]
    fn refresh_observes_a_restructure_with_cold_caches() {
        let catalog = SharedCatalog::new(KernelConfig::default());
        let tid = catalog
            .load_table(two_column_table(50_000), SizeCm::new(6.0, 10.0))
            .unwrap();
        let mut state = catalog.checkout(tid).unwrap();
        state.set_action(TouchAction::Tuple);
        let view = state.view().clone();
        let trace = GestureSynthesizer::new(60.0).exploratory_slide(&view, 2.0);
        Session::new(&mut state, catalog.config())
            .run(&trace)
            .unwrap();
        assert!(state.cache.stats().resident_rows > 0, "warm regions");

        catalog
            .drag_column_out(tid, "v", SizeCm::new(2.0, 10.0))
            .unwrap();
        // Until refresh, the session keeps its pre-restructure view.
        assert_eq!(state.data().schema().len(), 2);
        assert!(state.refresh(&catalog).unwrap());
        assert_eq!(state.data().schema().len(), 1);
        assert_eq!(state.restructures_seen(), 1);
        assert_eq!(state.epoch(), catalog.epoch());
        // Caches start cold: their row ranges described the old build.
        assert_eq!(
            state.cache.stats(),
            dbtouch_storage::cache::CacheStats::default()
        );
        // Tuple still validates against the single-column table.
        assert_eq!(state.action(), &TouchAction::Tuple);
    }

    #[test]
    fn refresh_falls_back_to_default_action_when_invalidated() {
        let catalog = SharedCatalog::new(KernelConfig::default());
        let table = Table::from_columns(
            "t",
            vec![
                Column::from_i64("id", (0..100).collect()),
                Column::from_f64("v", (0..100).map(|i| i as f64).collect()),
                Column::from_i64("q", (0..100).map(|i| i % 5).collect()),
            ],
        )
        .unwrap();
        let tid = catalog.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        let mut state = catalog.checkout(tid).unwrap();
        state.set_action(TouchAction::GroupBy {
            group_attribute: 0,
            value_attribute: 2,
            kind: crate::operators::aggregate::AggregateKind::Sum,
        });
        catalog
            .drag_column_out(tid, "q", SizeCm::new(2.0, 10.0))
            .unwrap();
        assert!(state.refresh(&catalog).unwrap());
        assert_eq!(state.action(), &TouchAction::Scan);
    }

    #[test]
    fn refresh_never_retargets_an_index_action_across_a_schema_reorder() {
        // A drag-out/drag-in ping-pong re-appends the column at the end of
        // the table: [id, v, q] -> [id, q] -> [id, q, v]. A GroupBy that
        // aggregated attribute 1 ("v") would still *validate* against the
        // reordered schema ("q" is numeric too) but mean different data —
        // it must fall back to the default instead of silently retargeting.
        let catalog = SharedCatalog::new(KernelConfig::default());
        let table = Table::from_columns(
            "t",
            vec![
                Column::from_i64("id", (0..100).collect()),
                Column::from_f64("v", (0..100).map(|i| i as f64).collect()),
                Column::from_i64("q", (0..100).map(|i| i % 5).collect()),
            ],
        )
        .unwrap();
        let tid = catalog.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        let mut state = catalog.checkout(tid).unwrap();
        state.set_action(TouchAction::GroupBy {
            group_attribute: 0,
            value_attribute: 1,
            kind: crate::operators::aggregate::AggregateKind::Sum,
        });
        let cid = catalog
            .drag_column_out(tid, "v", SizeCm::new(2.0, 10.0))
            .unwrap();
        catalog.drag_column_into(tid, cid).unwrap();
        let schema: Vec<String> = catalog
            .data(tid)
            .unwrap()
            .schema()
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        assert_eq!(schema, vec!["id", "q", "v"], "ping-pong reorders");
        assert!(state.refresh(&catalog).unwrap());
        assert_eq!(
            state.action(),
            &TouchAction::Scan,
            "attribute 1 names a different column now: the action must not retarget"
        );

        // A GroupBy whose referenced attributes kept their names survives.
        let mut stable = catalog.checkout(tid).unwrap();
        stable.set_action(TouchAction::GroupBy {
            group_attribute: 0,
            value_attribute: 1,
            kind: crate::operators::aggregate::AggregateKind::Sum,
        });
        let cid = catalog
            .drag_column_out(tid, "v", SizeCm::new(2.0, 10.0))
            .unwrap();
        catalog.drag_column_into(tid, cid).unwrap();
        assert!(stable.refresh(&catalog).unwrap());
        assert!(
            matches!(stable.action(), TouchAction::GroupBy { .. }),
            "id/q kept their positions: the action still means the same thing"
        );
    }

    #[test]
    fn drag_column_into_merges_and_removes_the_standalone() {
        let catalog = SharedCatalog::new(KernelConfig::default());
        let tid = catalog
            .load_table(two_column_table(1_000), SizeCm::new(6.0, 10.0))
            .unwrap();
        let cid = catalog
            .drag_column_out(tid, "v", SizeCm::new(2.0, 10.0))
            .unwrap();
        assert_eq!(catalog.names(), vec!["t".to_string(), "v".to_string()]);

        let mut orphan = catalog.checkout(cid).unwrap();
        catalog.drag_column_into(tid, cid).unwrap();
        // The table got its column back; the standalone object is gone and
        // its id is a permanent tombstone.
        assert_eq!(catalog.names(), vec!["t".to_string()]);
        assert_eq!(catalog.object_count(), 1);
        let data = catalog.data(tid).unwrap();
        let schema: Vec<&str> = data.schema().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(schema, vec!["id", "v"]);
        assert!(catalog.data(cid).is_err());
        assert!(catalog.checkout(cid).is_err());
        // A session still holding the removed object keeps its data but its
        // refresh reports the removal.
        assert_eq!(orphan.row_count(), 1_000);
        assert!(matches!(
            orphan.refresh(&catalog),
            Err(DbTouchError::NotFound(_))
        ));
        // Ids of later loads are fresh, never the tombstone's.
        let next = catalog
            .load_column("x", vec![1, 2, 3], SizeCm::new(2.0, 10.0))
            .unwrap();
        assert!(next.0 > cid.0);
    }

    #[test]
    fn drag_column_into_rejects_bad_sources() {
        let catalog = SharedCatalog::new(KernelConfig::default());
        let tid = catalog
            .load_table(two_column_table(100), SizeCm::new(6.0, 10.0))
            .unwrap();
        let other_table = Table::from_columns(
            "t2",
            vec![
                Column::from_i64("a", (0..100).collect()),
                Column::from_i64("b", (0..100).collect()),
            ],
        )
        .unwrap();
        let t2 = catalog
            .load_table(other_table, SizeCm::new(6.0, 10.0))
            .unwrap();
        // A table is not a standalone column.
        assert!(catalog.drag_column_into(tid, t2).is_err());
        // An object cannot merge into itself.
        assert!(catalog.drag_column_into(tid, tid).is_err());
        // A duplicate column name is rejected.
        let dup = catalog
            .load_column("v", (0..100).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        assert!(matches!(
            catalog.drag_column_into(tid, dup),
            Err(DbTouchError::AlreadyExists(_))
        ));
        // Mismatched lengths are rejected and publish nothing.
        let short = catalog
            .load_column("short", vec![1, 2, 3], SizeCm::new(2.0, 10.0))
            .unwrap();
        let epoch = catalog.epoch();
        assert!(catalog.drag_column_into(tid, short).is_err());
        assert_eq!(catalog.epoch(), epoch);
    }

    #[test]
    fn group_into_table_registers_a_fresh_object() {
        let catalog = SharedCatalog::new(KernelConfig::default());
        let a = catalog
            .load_column("a", (0..50).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let b = catalog
            .load_column("b", (100..150).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let restructures = catalog.restructure_count();
        let t = catalog
            .group_into_table("grouped", &[a, b], SizeCm::new(4.0, 10.0))
            .unwrap();
        // Grouping creates; it does not rebuild the sources.
        assert_eq!(catalog.restructure_count(), restructures);
        assert_eq!(catalog.data(t).unwrap().schema().len(), 2);
        assert_eq!(catalog.object_count(), 3);
        assert!(matches!(
            catalog.group_into_table("grouped", &[a, b], SizeCm::new(4.0, 10.0)),
            Err(DbTouchError::AlreadyExists(_))
        ));
        assert!(catalog
            .group_into_table("empty", &[], SizeCm::new(4.0, 10.0))
            .is_err());
    }

    #[test]
    fn restructure_mints_fresh_identity_but_metadata_edits_keep_it() {
        let catalog = SharedCatalog::new(KernelConfig::default());
        let tid = catalog
            .load_table(two_column_table(100), SizeCm::new(6.0, 10.0))
            .unwrap();
        let original = catalog.data(tid).unwrap().identity();

        // Changing the default action does not change the data: identity (and
        // therefore any cached results) must survive.
        catalog
            .set_default_action(
                tid,
                TouchAction::Aggregate(crate::operators::aggregate::AggregateKind::Sum),
            )
            .unwrap();
        assert_eq!(catalog.data(tid).unwrap().identity(), original);

        // A restructure rebuilds the data: both resulting objects get fresh
        // identities, so stale cached windows can never be served.
        let cid = catalog
            .drag_column_out(tid, "v", SizeCm::new(2.0, 10.0))
            .unwrap();
        let rebuilt = catalog.data(tid).unwrap().identity();
        let standalone = catalog.data(cid).unwrap().identity();
        assert_ne!(rebuilt, original);
        assert_ne!(standalone, original);
        assert_ne!(rebuilt, standalone);
    }

    #[test]
    fn restructure_drops_shared_cache_entries_of_the_old_build() {
        use crate::kernel::TouchAction;
        use dbtouch_gesture::synthesizer::GestureSynthesizer;

        let catalog = SharedCatalog::new(KernelConfig::default());
        let tid = catalog
            .load_table(two_column_table(200_000), SizeCm::new(6.0, 10.0))
            .unwrap();
        let view = catalog.data(tid).unwrap().base_view().clone();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
        let mut state = catalog.checkout(tid).unwrap();
        state.set_action(TouchAction::Summary {
            half_window: Some(5),
            kind: crate::operators::aggregate::AggregateKind::Avg,
        });
        Session::new(&mut state, catalog.config())
            .run(&trace)
            .unwrap();
        let cache = catalog.shared_cache().expect("enabled by default");
        assert!(!cache.is_empty(), "summary run must populate the cache");

        catalog
            .drag_column_out(tid, "v", SizeCm::new(2.0, 10.0))
            .unwrap();
        assert!(
            cache.is_empty(),
            "restructure must drop entries of the old build"
        );
        assert!(cache.stats().invalidated > 0);
    }

    #[test]
    fn concurrent_checkouts_run_identical_sessions() {
        let catalog = Arc::new(SharedCatalog::new(KernelConfig::default()));
        let id = catalog
            .load_column("col", (0..100_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let view = catalog.data(id).unwrap().base_view().clone();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
        let baseline = {
            let mut state = catalog.checkout(id).unwrap();
            Session::new(&mut state, catalog.config())
                .run(&trace)
                .unwrap()
        };
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let catalog = Arc::clone(&catalog);
                let trace = trace.clone();
                std::thread::spawn(move || {
                    let mut state = catalog.checkout(id).unwrap();
                    Session::new(&mut state, catalog.config())
                        .run(&trace)
                        .unwrap()
                })
            })
            .collect();
        for handle in handles {
            let outcome = handle.join().unwrap();
            assert_eq!(outcome.results, baseline.results);
            assert_eq!(
                outcome.stats.entries_returned,
                baseline.stats.entries_returned
            );
            assert_eq!(outcome.stats.rows_touched, baseline.stats.rows_touched);
        }
    }

    #[test]
    fn concurrent_restructures_and_checkouts_converge() {
        // Mutator threads ping-pong columns out of / back into one table
        // while reader threads checkout and refresh continuously. The CAS
        // loop must serialize every restructure (none lost), readers must
        // never observe an inconsistent object, and the table must end with
        // its full schema.
        const MUTATORS: usize = 2;
        const CYCLES: usize = 25;

        let catalog = Arc::new(SharedCatalog::new(KernelConfig::default()));
        let table = Table::from_columns(
            "t",
            vec![
                Column::from_i64("key", (0..512).collect()),
                Column::from_i64("m0", (0..512).collect()),
                Column::from_i64("m1", (0..512).collect()),
            ],
        )
        .unwrap();
        let tid = catalog.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();

        let mutators: Vec<_> = (0..MUTATORS)
            .map(|m| {
                let catalog = Arc::clone(&catalog);
                std::thread::spawn(move || {
                    let column = format!("m{m}");
                    for _ in 0..CYCLES {
                        let cid = catalog
                            .drag_column_out(tid, &column, SizeCm::new(2.0, 10.0))
                            .unwrap();
                        catalog.drag_column_into(tid, cid).unwrap();
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let catalog = Arc::clone(&catalog);
                std::thread::spawn(move || {
                    let mut last_epoch = 0;
                    for _ in 0..400 {
                        let state = catalog.checkout(tid).unwrap();
                        // A checked-out state is always internally consistent:
                        // the view's attribute count matches the schema.
                        assert_eq!(
                            state.view().attribute_count as usize,
                            state.data().schema().len()
                        );
                        assert!(state.epoch() >= last_epoch, "epochs are monotone");
                        last_epoch = state.epoch();
                    }
                })
            })
            .collect();
        for m in mutators {
            m.join().unwrap();
        }
        for r in readers {
            r.join().unwrap();
        }
        // Every cycle is two publishes; none may be lost.
        assert_eq!(catalog.restructure_count(), (MUTATORS * CYCLES * 2) as u64);
        let data = catalog.data(tid).unwrap();
        let schema: Vec<&str> = data.schema().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(schema.len(), 3);
        assert!(schema.contains(&"key"));
        assert!(schema.contains(&"m0"));
        assert!(schema.contains(&"m1"));
    }
}
