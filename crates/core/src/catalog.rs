//! The shared data catalog: immutable loaded data, separated from per-session
//! exploration state.
//!
//! The seed reproduction bundled everything a touch session needs — the dense
//! matrix, sample hierarchies, zone-map indexes, view geometry, region cache
//! and prefetcher — into one mutable `DataObject`, which forced `&mut self`
//! through the whole kernel and limited the system to a single explorer. This
//! module splits that bundle along the concurrency boundary:
//!
//! * [`ObjectData`] — what was *loaded*: the matrix, the per-attribute sample
//!   hierarchies and zone-map indexes, plus the default view geometry and
//!   touch action. Immutable after load, shared across sessions behind `Arc`.
//! * [`ObjectState`] — what a *session* does with it: the session's view
//!   (zoom/rotation), its chosen touch action, its region cache, its
//!   prefetcher, and (after a rotate gesture) its privately rotated copy of
//!   the matrix. Cheap to create, owned by exactly one session.
//! * [`SharedCatalog`] — the `Send + Sync` registry of loaded objects. Many
//!   sessions on many threads [`checkout`](SharedCatalog::checkout) state
//!   from one catalog concurrently; loading new objects takes a write lock.
//!
//! The single-user [`crate::kernel::Kernel`] is now a thin facade: one
//! `SharedCatalog` plus one `ObjectState` per object. `dbtouch-server` runs
//! many sessions against the same catalog from worker threads.

use crate::kernel::{ObjectId, TouchAction};
use dbtouch_gesture::view::View;
use dbtouch_storage::cache::RegionCache;
use dbtouch_storage::column::Column;
use dbtouch_storage::index::ZoneMapIndex;
use dbtouch_storage::layout::Layout;
use dbtouch_storage::matrix::Matrix;
use dbtouch_storage::prefetch::Prefetcher;
use dbtouch_storage::rotation::RotationTask;
use dbtouch_storage::sample::SampleHierarchy;
use dbtouch_storage::shared_cache::{next_object_identity, SharedResultCache};
use dbtouch_storage::table::Table;
use dbtouch_types::{DataType, DbTouchError, KernelConfig, Result, SizeCm};
use std::sync::{Arc, RwLock};

/// The immutable, shareable part of a loaded data object.
///
/// Everything here is fixed at load (or restructure) time. Sessions read it
/// concurrently through `Arc<ObjectData>`; nothing in it ever mutates.
#[derive(Debug, Clone)]
pub struct ObjectData {
    name: String,
    /// Process-unique generation of this immutable build. A restructure
    /// (`drag_column_out`, `group_into_table`) builds fresh `ObjectData` with
    /// a fresh identity, which is what keys (and thereby invalidates) the
    /// shared cross-session result cache. Cloning with unchanged data (e.g.
    /// `set_default_action`) keeps the identity — cached results stay valid.
    identity: u64,
    matrix: Arc<Matrix>,
    hierarchies: Arc<Vec<SampleHierarchy>>,
    indexes: Arc<Vec<Option<ZoneMapIndex>>>,
    base_view: View,
    default_action: TouchAction,
}

impl ObjectData {
    /// The object's catalog name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The identity of this immutable build (see
    /// [`dbtouch_storage::shared_cache::next_object_identity`]).
    pub fn identity(&self) -> u64 {
        self.identity
    }

    /// The loaded matrix (base layout, before any per-session rotation).
    pub fn matrix(&self) -> &Arc<Matrix> {
        &self.matrix
    }

    /// Per-attribute sample hierarchies.
    pub fn hierarchies(&self) -> &[SampleHierarchy] {
        &self.hierarchies
    }

    /// Per-attribute zone-map indexes (numeric attributes only).
    pub fn indexes(&self) -> &[Option<ZoneMapIndex>] {
        &self.indexes
    }

    /// The default view new sessions start from.
    pub fn base_view(&self) -> &View {
        &self.base_view
    }

    /// The default touch action new sessions start from.
    pub fn default_action(&self) -> &TouchAction {
        &self.default_action
    }

    /// Number of tuples.
    pub fn row_count(&self) -> u64 {
        self.matrix.row_count()
    }

    /// The schema as `(name, type)` pairs.
    pub fn schema(&self) -> &[(String, DataType)] {
        self.matrix.schema()
    }
}

/// The mutable, per-session part of exploring one data object.
///
/// Owned by exactly one session; never shared. Holds `Arc` handles into the
/// shared [`ObjectData`], so creating one is cheap (no data copies) — until
/// the session rotates the object's layout, at which point it gets its own
/// rotated matrix without disturbing other sessions.
#[derive(Debug)]
pub struct ObjectState {
    pub(crate) data: Arc<ObjectData>,
    /// The matrix this session reads: the shared one, or a session-private
    /// rotated copy after a rotate gesture.
    pub(crate) matrix: Arc<Matrix>,
    pub(crate) view: View,
    pub(crate) action: TouchAction,
    pub(crate) cache: RegionCache,
    pub(crate) prefetcher: Prefetcher,
    /// Handle to the catalog-wide cross-session result cache, `None` when the
    /// configuration disables it.
    pub(crate) shared_cache: Option<Arc<SharedResultCache>>,
}

impl ObjectState {
    /// The shared data this state explores.
    pub fn data(&self) -> &Arc<ObjectData> {
        &self.data
    }

    /// The session's current view (geometry, orientation, zoom).
    pub fn view(&self) -> &View {
        &self.view
    }

    /// The session's current touch action.
    pub fn action(&self) -> &TouchAction {
        &self.action
    }

    /// Change the session's touch action (validate against
    /// [`ObjectData::schema`] first via [`validate_action`]).
    pub fn set_action(&mut self, action: TouchAction) {
        self.action = action;
    }

    /// Number of tuples visible to this session.
    pub fn row_count(&self) -> u64 {
        self.matrix.row_count()
    }

    /// The sample hierarchy of an attribute. Non-numeric attributes have a
    /// degenerate single-level hierarchy (base data only).
    pub fn hierarchy(&self, attribute: usize) -> Result<&SampleHierarchy> {
        self.data
            .hierarchies
            .get(attribute)
            .ok_or_else(|| DbTouchError::NotFound(format!("attribute {attribute}")))
    }

    /// Flip the physical layout of this session's matrix, converting
    /// `chunk_rows` rows at a time (incremental rotation, Section 2.8). Only
    /// this session sees the rotated copy; the shared catalog is untouched.
    ///
    /// The rotation reads through the shared `Arc<Matrix>` and builds only
    /// the rotated target chunk by chunk — the source is never deep-copied,
    /// so peak memory stays bounded by one extra (target) copy.
    pub(crate) fn rotate_layout(&mut self, chunk_rows: u64) -> Result<()> {
        let task = RotationTask::over(Arc::clone(&self.matrix), chunk_rows);
        self.matrix = Arc::new(task.finish()?);
        self.view = self.view.rotated();
        Ok(())
    }

    /// The shared cross-session result cache, when enabled.
    pub fn shared_cache(&self) -> Option<&Arc<SharedResultCache>> {
        self.shared_cache.as_ref()
    }
}

/// The concurrent registry of loaded data objects.
///
/// `SharedCatalog` is `Send + Sync`: loading takes a brief write lock, and any
/// number of sessions on any threads checkout per-session [`ObjectState`] and
/// read the shared `Arc<ObjectData>` concurrently.
#[derive(Debug)]
pub struct SharedCatalog {
    config: KernelConfig,
    objects: RwLock<Vec<Arc<ObjectData>>>,
    /// The cross-session result cache every checkout of this catalog shares,
    /// `None` when [`KernelConfig::shared_cache_enabled`] is off.
    shared_cache: Option<Arc<SharedResultCache>>,
}

impl SharedCatalog {
    /// Create an empty catalog with the given kernel configuration.
    pub fn new(config: KernelConfig) -> SharedCatalog {
        let shared_cache = config
            .shared_cache_enabled
            .then(|| Arc::new(SharedResultCache::new(config.shared_cache_capacity)));
        SharedCatalog {
            config,
            objects: RwLock::new(Vec::new()),
            shared_cache,
        }
    }

    /// The kernel configuration sessions run under.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// The catalog-wide cross-session result cache, when enabled.
    pub fn shared_cache(&self) -> Option<&Arc<SharedResultCache>> {
        self.shared_cache.as_ref()
    }

    /// Number of loaded objects.
    pub fn object_count(&self) -> usize {
        self.read_objects().len()
    }

    /// The names of all objects, in load order (the paper's "screen": glancing
    /// at it tells users what data exists, no schema knowledge required).
    pub fn names(&self) -> Vec<String> {
        self.read_objects().iter().map(|o| o.name.clone()).collect()
    }

    /// Look up an object id by name.
    pub fn object_id(&self, name: &str) -> Result<ObjectId> {
        self.read_objects()
            .iter()
            .position(|o| o.name == name)
            .map(|i| ObjectId(i as u64))
            .ok_or_else(|| DbTouchError::NotFound(name.to_string()))
    }

    /// The shared data of an object.
    pub fn data(&self, id: ObjectId) -> Result<Arc<ObjectData>> {
        self.read_objects()
            .get(id.0 as usize)
            .cloned()
            .ok_or_else(|| DbTouchError::NotFound(format!("object {}", id.0)))
    }

    /// Create fresh per-session state for an object: the default view and
    /// action, an empty cache and prefetcher, and the shared matrix.
    pub fn checkout(&self, id: ObjectId) -> Result<ObjectState> {
        let data = self.data(id)?;
        let config = &self.config;
        Ok(ObjectState {
            matrix: data.matrix.clone(),
            view: data.base_view.clone(),
            action: data.default_action.clone(),
            cache: if config.cache_enabled {
                RegionCache::new(config.cache_capacity_rows)
            } else {
                RegionCache::disabled()
            },
            prefetcher: if config.prefetch_enabled {
                Prefetcher::new(16)
            } else {
                Prefetcher::disabled()
            },
            shared_cache: self.shared_cache.clone(),
            data,
        })
    }

    /// Load a column of integers as a new data object rendered at `size`.
    pub fn load_column(
        &self,
        name: impl Into<String>,
        values: Vec<i64>,
        size: SizeCm,
    ) -> Result<ObjectId> {
        self.load_column_typed(Column::from_i64(name.into(), values), size)
    }

    /// Load a column of floats as a new data object rendered at `size`.
    pub fn load_column_f64(
        &self,
        name: impl Into<String>,
        values: Vec<f64>,
        size: SizeCm,
    ) -> Result<ObjectId> {
        self.load_column_typed(Column::from_f64(name.into(), values), size)
    }

    /// Load an already-built column as a new data object rendered at `size`.
    pub fn load_column_typed(&self, column: Column, size: SizeCm) -> Result<ObjectId> {
        self.config.validate()?;
        let name = column.name().to_string();
        let tuple_count = column.len();
        let view = View::for_column(name, tuple_count, size)?;
        let matrix = Matrix::from_column(column);
        self.register(matrix, view)
    }

    /// Load a table as a single "fat rectangle" data object rendered at `size`.
    pub fn load_table(&self, table: Table, size: SizeCm) -> Result<ObjectId> {
        self.config.validate()?;
        let view = View::for_table(
            table.name().to_string(),
            table.row_count(),
            table.column_count(),
            size,
        )?;
        let matrix = Matrix::from_table(table);
        self.register(matrix, view)
    }

    /// Change the default touch action new sessions start from. Existing
    /// checked-out states are unaffected (they own their action). Validation
    /// happens under the write lock, against the schema the action will
    /// actually be stored with — a concurrent restructure cannot slip an
    /// invalid default in.
    pub fn set_default_action(&self, id: ObjectId, action: TouchAction) -> Result<()> {
        let mut objects = self.write_objects();
        let slot = objects
            .get_mut(id.0 as usize)
            .ok_or_else(|| DbTouchError::NotFound(format!("object {}", id.0)))?;
        validate_action(&action, slot.matrix.schema())?;
        let mut updated = (**slot).clone();
        updated.default_action = action;
        *slot = Arc::new(updated);
        Ok(())
    }

    /// Drag a column out of a table object into a new standalone column object
    /// (Section 2.8), atomically: the name-clash check, the table restructure
    /// and the new object's registration happen under one write lock, so a
    /// concurrent load cannot leave the table restructured with the dragged
    /// column lost. Sessions holding the old table `Arc` keep reading the old
    /// data; new checkouts see the restructured table.
    pub fn drag_column_out(
        &self,
        table_id: ObjectId,
        column_name: &str,
        size: SizeCm,
    ) -> Result<ObjectId> {
        let mut objects = self.write_objects();
        let obj = objects
            .get(table_id.0 as usize)
            .ok_or_else(|| DbTouchError::NotFound(format!("object {}", table_id.0)))?;
        let columnar = obj.matrix.converted_to(Layout::ColumnMajor)?;
        let mut cols = columnar
            .columns()
            .expect("column-major matrix has columns")
            .to_vec();
        let idx = cols
            .iter()
            .position(|c| c.name() == column_name)
            .ok_or_else(|| DbTouchError::NotFound(format!("column {column_name}")))?;
        let column = cols.remove(idx);
        if cols.is_empty() {
            return Err(DbTouchError::InvalidPlan(
                "cannot drag the last column out of a table".into(),
            ));
        }
        if objects.iter().any(|o| o.name == column_name) {
            return Err(DbTouchError::AlreadyExists(column_name.to_string()));
        }
        // Build both replacement objects before touching the catalog, so any
        // failure leaves it unchanged.
        let table_name = obj.name.clone();
        let old_size = obj.base_view.size();
        let new_table = Table::from_columns(table_name, cols)?;
        let new_view = View::for_table(
            new_table.name().to_string(),
            new_table.row_count(),
            new_table.column_count(),
            old_size,
        )?;
        let rebuilt = self.build_data(Matrix::from_table(new_table), new_view);
        let column_view = View::for_column(column.name().to_string(), column.len(), size)?;
        let standalone = self.build_data(Matrix::from_column(column), column_view);
        // Commit. The rebuilt table carries a fresh identity, so shared-cache
        // entries computed against the old table can never be served for it;
        // eagerly dropping them just frees the memory sooner.
        let old_identity = obj.identity;
        objects[table_id.0 as usize] = Arc::new(rebuilt);
        let id = ObjectId(objects.len() as u64);
        objects.push(Arc::new(standalone));
        // Release the catalog lock before the O(cache-size) sweep: the
        // invalidation is purely a memory optimization, so it must not stall
        // other sessions' checkouts behind the objects write lock.
        drop(objects);
        if let Some(cache) = &self.shared_cache {
            cache.invalidate_object(old_identity);
        }
        Ok(id)
    }

    fn register(&self, matrix: Matrix, view: View) -> Result<ObjectId> {
        // Cheap duplicate check first: building sample hierarchies and indexes
        // is O(rows), so don't pay it for a name that will be rejected. The
        // check is repeated under the write lock for the race where two
        // loaders register the same name concurrently.
        if self.object_id(matrix.name()).is_ok() {
            return Err(DbTouchError::AlreadyExists(matrix.name().to_string()));
        }
        let data = self.build_data(matrix, view);
        let mut objects = self.write_objects();
        if objects.iter().any(|o| o.name == data.name) {
            return Err(DbTouchError::AlreadyExists(data.name.clone()));
        }
        let id = ObjectId(objects.len() as u64);
        objects.push(Arc::new(data));
        Ok(id)
    }

    fn build_data(&self, matrix: Matrix, view: View) -> ObjectData {
        let hierarchies = build_hierarchies(&matrix, &self.config);
        let indexes = build_indexes(&matrix);
        ObjectData {
            name: matrix.name().to_string(),
            identity: next_object_identity(),
            matrix: Arc::new(matrix),
            hierarchies: Arc::new(hierarchies),
            indexes: Arc::new(indexes),
            base_view: view,
            default_action: TouchAction::Scan,
        }
    }

    fn read_objects(&self) -> std::sync::RwLockReadGuard<'_, Vec<Arc<ObjectData>>> {
        self.objects.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_objects(&self) -> std::sync::RwLockWriteGuard<'_, Vec<Arc<ObjectData>>> {
        self.objects.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Validate that `action` is runnable against `schema` (shared by the kernel,
/// the catalog and the server's session workers).
pub fn validate_action(action: &TouchAction, schema: &[(String, DataType)]) -> Result<()> {
    if action.aggregate_kind().is_some() {
        let numeric = schema.iter().any(|(_, dt)| dt.is_numeric());
        if !numeric {
            return Err(DbTouchError::TypeMismatch {
                expected: "numeric column".into(),
                found: "no numeric attribute in object".into(),
            });
        }
    }
    if let TouchAction::GroupBy {
        group_attribute,
        value_attribute,
        ..
    } = action
    {
        let value_type = schema
            .get(*value_attribute)
            .ok_or_else(|| DbTouchError::NotFound(format!("attribute {value_attribute}")))?
            .1;
        if schema.get(*group_attribute).is_none() {
            return Err(DbTouchError::NotFound(format!(
                "attribute {group_attribute}"
            )));
        }
        if !value_type.is_numeric() {
            return Err(DbTouchError::TypeMismatch {
                expected: "numeric value attribute".into(),
                found: value_type.name(),
            });
        }
    }
    Ok(())
}

fn build_hierarchies(matrix: &Matrix, config: &KernelConfig) -> Vec<SampleHierarchy> {
    let levels = config.sample_levels;
    match matrix.columns() {
        Some(cols) => cols
            .iter()
            .map(|c| {
                let depth = if c.data_type().is_numeric() {
                    levels
                } else {
                    1
                };
                SampleHierarchy::build(c.clone(), depth)
            })
            .collect(),
        None => {
            // Row-major load: build degenerate hierarchies from a columnar copy.
            let columnar = matrix
                .converted_to(Layout::ColumnMajor)
                .expect("layout conversion of a valid matrix cannot fail");
            columnar
                .columns()
                .expect("column-major matrix has columns")
                .iter()
                .map(|c| {
                    let depth = if c.data_type().is_numeric() {
                        levels
                    } else {
                        1
                    };
                    SampleHierarchy::build(c.clone(), depth)
                })
                .collect()
        }
    }
}

fn build_indexes(matrix: &Matrix) -> Vec<Option<ZoneMapIndex>> {
    const INDEX_BLOCK_ROWS: u64 = 4096;
    match matrix.columns() {
        Some(cols) => cols
            .iter()
            .map(|c| {
                c.data_type()
                    .is_numeric()
                    .then(|| ZoneMapIndex::build(c, INDEX_BLOCK_ROWS).ok())
                    .flatten()
            })
            .collect(),
        None => vec![None; matrix.column_count()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use dbtouch_gesture::synthesizer::GestureSynthesizer;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn shared_catalog_is_send_and_sync() {
        assert_send_sync::<SharedCatalog>();
        assert_send_sync::<Arc<ObjectData>>();
        assert_send_sync::<ObjectState>();
    }

    #[test]
    fn checkout_shares_data_without_copying() {
        let catalog = SharedCatalog::new(KernelConfig::default());
        let id = catalog
            .load_column("a", (0..10_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let s1 = catalog.checkout(id).unwrap();
        let s2 = catalog.checkout(id).unwrap();
        assert!(Arc::ptr_eq(&s1.matrix, &s2.matrix));
        assert!(Arc::ptr_eq(&s1.data, &s2.data));
        assert_eq!(s1.row_count(), 10_000);
    }

    #[test]
    fn per_session_rotation_does_not_disturb_other_sessions() {
        let catalog = SharedCatalog::new(KernelConfig::default());
        let table = Table::from_columns(
            "t",
            vec![
                Column::from_i64("id", (0..100).collect()),
                Column::from_f64("v", (0..100).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        let id = catalog.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        let mut s1 = catalog.checkout(id).unwrap();
        let s2 = catalog.checkout(id).unwrap();
        s1.rotate_layout(16).unwrap();
        assert_eq!(s1.matrix.layout(), Layout::RowMajor);
        assert_eq!(s2.matrix.layout(), Layout::ColumnMajor);
        assert_eq!(
            catalog.checkout(id).unwrap().matrix.layout(),
            Layout::ColumnMajor
        );
    }

    #[test]
    fn default_action_applies_to_new_checkouts_only() {
        let catalog = SharedCatalog::new(KernelConfig::default());
        let id = catalog
            .load_column("a", (0..100).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let before = catalog.checkout(id).unwrap();
        catalog
            .set_default_action(
                id,
                TouchAction::Aggregate(crate::operators::aggregate::AggregateKind::Sum),
            )
            .unwrap();
        let after = catalog.checkout(id).unwrap();
        assert_eq!(before.action(), &TouchAction::Scan);
        assert!(matches!(after.action(), TouchAction::Aggregate(_)));
    }

    #[test]
    fn duplicate_names_rejected() {
        let catalog = SharedCatalog::new(KernelConfig::default());
        catalog
            .load_column("a", vec![1, 2, 3], SizeCm::new(2.0, 10.0))
            .unwrap();
        assert!(matches!(
            catalog.load_column("a", vec![4], SizeCm::new(2.0, 10.0)),
            Err(DbTouchError::AlreadyExists(_))
        ));
    }

    #[test]
    fn restructure_mints_fresh_identity_but_metadata_edits_keep_it() {
        let catalog = SharedCatalog::new(KernelConfig::default());
        let table = Table::from_columns(
            "t",
            vec![
                Column::from_i64("id", (0..100).collect()),
                Column::from_f64("v", (0..100).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        let tid = catalog.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        let original = catalog.data(tid).unwrap().identity();

        // Changing the default action does not change the data: identity (and
        // therefore any cached results) must survive.
        catalog
            .set_default_action(
                tid,
                TouchAction::Aggregate(crate::operators::aggregate::AggregateKind::Sum),
            )
            .unwrap();
        assert_eq!(catalog.data(tid).unwrap().identity(), original);

        // A restructure rebuilds the data: both resulting objects get fresh
        // identities, so stale cached windows can never be served.
        let cid = catalog
            .drag_column_out(tid, "v", SizeCm::new(2.0, 10.0))
            .unwrap();
        let rebuilt = catalog.data(tid).unwrap().identity();
        let standalone = catalog.data(cid).unwrap().identity();
        assert_ne!(rebuilt, original);
        assert_ne!(standalone, original);
        assert_ne!(rebuilt, standalone);
    }

    #[test]
    fn restructure_drops_shared_cache_entries_of_the_old_build() {
        use crate::kernel::TouchAction;
        use dbtouch_gesture::synthesizer::GestureSynthesizer;

        let catalog = SharedCatalog::new(KernelConfig::default());
        let table = Table::from_columns(
            "t",
            vec![
                Column::from_i64("id", (0..200_000).collect()),
                Column::from_f64("v", (0..200_000).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        let tid = catalog.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        let view = catalog.data(tid).unwrap().base_view().clone();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
        let mut state = catalog.checkout(tid).unwrap();
        state.set_action(TouchAction::Summary {
            half_window: Some(5),
            kind: crate::operators::aggregate::AggregateKind::Avg,
        });
        Session::new(&mut state, catalog.config())
            .run(&trace)
            .unwrap();
        let cache = catalog.shared_cache().expect("enabled by default");
        assert!(!cache.is_empty(), "summary run must populate the cache");

        catalog
            .drag_column_out(tid, "v", SizeCm::new(2.0, 10.0))
            .unwrap();
        assert!(
            cache.is_empty(),
            "restructure must drop entries of the old build"
        );
        assert!(cache.stats().invalidated > 0);
    }

    #[test]
    fn concurrent_checkouts_run_identical_sessions() {
        let catalog = Arc::new(SharedCatalog::new(KernelConfig::default()));
        let id = catalog
            .load_column("col", (0..100_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let view = catalog.data(id).unwrap().base_view().clone();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
        let baseline = {
            let mut state = catalog.checkout(id).unwrap();
            Session::new(&mut state, catalog.config())
                .run(&trace)
                .unwrap()
        };
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let catalog = Arc::clone(&catalog);
                let trace = trace.clone();
                std::thread::spawn(move || {
                    let mut state = catalog.checkout(id).unwrap();
                    Session::new(&mut state, catalog.config())
                        .run(&trace)
                        .unwrap()
                })
            })
            .collect();
        for handle in handles {
            let outcome = handle.join().unwrap();
            assert_eq!(outcome.results, baseline.results);
            assert_eq!(
                outcome.stats.entries_returned,
                baseline.stats.entries_returned
            );
            assert_eq!(outcome.stats.rows_touched, baseline.stats.rows_touched);
        }
    }
}
