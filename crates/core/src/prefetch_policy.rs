//! Prefetching policy: extrapolating the gesture into prefetch requests.
//!
//! Section 2.6 ("Prefetching Data"): when a slide pauses or slows down, dbTouch
//! should extrapolate the gesture progression and fetch the entries it expects
//! the gesture to reach, so they are warm when the gesture resumes or speeds up.
//!
//! The policy consumes the same kinematics estimate the kernel keeps per
//! session and emits row ranges for the storage-level [`Prefetcher`].

use crate::mapping::TouchMapper;
use dbtouch_gesture::kinematics::GestureKinematics;
use dbtouch_gesture::view::View;
use dbtouch_storage::prefetch::Prefetcher;
use dbtouch_types::{KernelConfig, RowRange};

/// Turns gesture kinematics into prefetch requests.
#[derive(Debug, Clone)]
pub struct PrefetchPolicy {
    horizon_rows: u64,
    enabled: bool,
    /// Extrapolation horizon in seconds (how far ahead of the finger we look).
    lookahead_s: f64,
}

impl PrefetchPolicy {
    /// Build the policy from the kernel configuration.
    pub fn new(config: &KernelConfig) -> PrefetchPolicy {
        PrefetchPolicy {
            horizon_rows: config.prefetch_horizon_rows,
            enabled: config.prefetch_enabled,
            lookahead_s: 0.25,
        }
    }

    /// Whether the policy issues prefetches at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Given the current kinematics and the touched row, compute the row range
    /// the gesture is expected to reach next. Returns `None` when prefetching
    /// is disabled, the gesture is not moving, or extrapolation leaves the
    /// object.
    pub fn plan(
        &self,
        view: &View,
        kinematics: &GestureKinematics,
        current_row: u64,
    ) -> Option<RowRange> {
        if !self.enabled || view.tuple_count == 0 {
            return None;
        }
        let predicted = kinematics.extrapolate(self.lookahead_s)?;
        let predicted_row = TouchMapper::row_for_touch(view, predicted).ok()??;
        if predicted_row.0 == current_row {
            return None;
        }
        // Prefetch from the current position towards the predicted position,
        // bounded by the configured horizon.
        let range = if predicted_row.0 > current_row {
            let end = predicted_row
                .0
                .saturating_add(1)
                .min(
                    current_row
                        .saturating_add(self.horizon_rows)
                        .saturating_add(1),
                )
                .min(view.tuple_count);
            RowRange::new(current_row + 1, end)
        } else {
            let start = predicted_row
                .0
                .max(current_row.saturating_sub(self.horizon_rows));
            RowRange::new(start, current_row)
        };
        (!range.is_empty()).then_some(range)
    }

    /// Plan and, if a range was produced, submit it to the storage prefetcher.
    pub fn plan_and_submit(
        &self,
        view: &View,
        kinematics: &GestureKinematics,
        current_row: u64,
        prefetcher: &mut Prefetcher,
    ) -> Option<RowRange> {
        let range = self.plan(view, kinematics, current_row)?;
        prefetcher.prefetch(range);
        Some(range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtouch_gesture::touch::{TouchEvent, TouchPhase};
    use dbtouch_types::{PointCm, SizeCm, Timestamp};

    fn view() -> View {
        View::for_column("c", 1_000_000, SizeCm::new(2.0, 10.0)).unwrap()
    }

    fn moving_kinematics() -> GestureKinematics {
        let mut k = GestureKinematics::default();
        k.observe(&TouchEvent::new(
            PointCm::new(1.0, 2.0),
            Timestamp::from_millis(0),
            TouchPhase::Began,
        ));
        k.observe(&TouchEvent::new(
            PointCm::new(1.0, 2.5),
            Timestamp::from_millis(100),
            TouchPhase::Moved,
        ));
        k // 5 cm/s downward at y = 2.5
    }

    #[test]
    fn plans_forward_range_for_downward_slide() {
        let policy = PrefetchPolicy::new(&KernelConfig::default());
        let k = moving_kinematics();
        let current_row = 250_000; // y=2.5 of 10cm over 1M rows
        let range = policy.plan(&view(), &k, current_row).unwrap();
        assert!(range.start > current_row);
        assert!(range.end > range.start);
        // bounded by the horizon
        assert!(range.len() <= KernelConfig::default().prefetch_horizon_rows + 1);
    }

    #[test]
    fn plans_backward_range_for_upward_slide() {
        let policy = PrefetchPolicy::new(&KernelConfig::default());
        let mut k = GestureKinematics::default();
        k.observe(&TouchEvent::new(
            PointCm::new(1.0, 5.0),
            Timestamp::from_millis(0),
            TouchPhase::Began,
        ));
        k.observe(&TouchEvent::new(
            PointCm::new(1.0, 4.5),
            Timestamp::from_millis(100),
            TouchPhase::Moved,
        ));
        let current_row = 450_000;
        let range = policy.plan(&view(), &k, current_row).unwrap();
        assert!(range.end <= current_row);
        assert!(range.start < current_row);
    }

    #[test]
    fn no_plan_when_disabled_or_stationary() {
        let disabled = PrefetchPolicy::new(&KernelConfig::naive());
        assert!(!disabled.is_enabled());
        assert!(disabled
            .plan(&view(), &moving_kinematics(), 250_000)
            .is_none());

        let policy = PrefetchPolicy::new(&KernelConfig::default());
        let mut still = GestureKinematics::default();
        still.observe(&TouchEvent::new(
            PointCm::new(1.0, 2.0),
            Timestamp::ZERO,
            TouchPhase::Began,
        ));
        // single sample: no velocity -> extrapolates to the same row -> no plan
        assert!(policy.plan(&view(), &still, 200_000).is_none());
    }

    #[test]
    fn no_plan_for_empty_object() {
        let policy = PrefetchPolicy::new(&KernelConfig::default());
        let empty = View::for_column("e", 0, SizeCm::new(2.0, 10.0)).unwrap();
        assert!(policy.plan(&empty, &moving_kinematics(), 0).is_none());
    }

    #[test]
    fn submit_records_request_in_prefetcher() {
        let policy = PrefetchPolicy::new(&KernelConfig::default());
        let mut prefetcher = Prefetcher::new(8);
        let range = policy
            .plan_and_submit(&view(), &moving_kinematics(), 250_000, &mut prefetcher)
            .unwrap();
        assert_eq!(prefetcher.stats().requests, 1);
        assert_eq!(prefetcher.stats().rows_prefetched, range.len());
    }
}
