//! Wait-free snapshot publication: the concurrency primitive behind the
//! epoch-versioned catalog.
//!
//! [`EpochCell`] holds one `Arc<T>` — the *current* snapshot — and supports
//! two operations:
//!
//! * [`load`](EpochCell::load): clone the current `Arc` without ever blocking.
//!   The reader executes a fixed, short sequence of atomic operations — no
//!   lock, no CAS retry loop — so a reader can never be stalled by a slow or
//!   preempted writer. This is what makes `SharedCatalog::checkout` wait-free
//!   while restructures are in flight.
//! * [`publish_if_current`](EpochCell::publish_if_current): install a new
//!   snapshot if and only if the cell still holds the snapshot the writer
//!   based it on — the compare-and-swap step of the catalog's
//!   read-copy-update loop. Writers build successors entirely off-lock and
//!   only contend with each other here.
//!
//! Reclaiming a displaced snapshot is the classic lock-free problem: a reader
//! may have loaded the raw pointer but not yet taken its reference when the
//! writer wants to free it. The cell solves it the way userspace RCU does:
//! readers announce themselves in one of two parity-indexed counters around
//! their (tiny) critical section, and a writer retires a displaced snapshot
//! only after two parity flips each see the drained side reach zero — the
//! grace period. Waiting is done *only* by writers; readers never loop.

use std::fmt;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// A shared cell holding the current `Arc<T>` snapshot, readable without
/// blocking and replaceable by compare-and-swap.
///
/// ```
/// use dbtouch_core::epoch::EpochCell;
/// use std::sync::Arc;
///
/// let cell = EpochCell::new(Arc::new(1u64));
/// let before = cell.load();
/// assert!(cell.publish_if_current(&before, Arc::new(2)));
/// // A publish based on a stale snapshot is rejected:
/// assert!(!cell.publish_if_current(&before, Arc::new(3)));
/// assert_eq!(*cell.load(), 2);
/// ```
pub struct EpochCell<T> {
    /// The current snapshot; the cell owns one strong reference to it,
    /// produced by `Arc::into_raw`.
    current: AtomicPtr<T>,
    /// Which of the two reader counters new readers register in (low bit).
    parity: AtomicUsize,
    /// Readers inside their critical section, per parity side.
    readers: [AtomicUsize; 2],
    /// Serializes grace periods between writers. Readers never touch it.
    retire: Mutex<()>,
}

// The raw pointer field suppresses the auto traits; the cell is a container
// of `Arc<T>`, so it is Send + Sync exactly when `Arc<T>` is.
unsafe impl<T: Send + Sync> Send for EpochCell<T> {}
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

impl<T> EpochCell<T> {
    /// Create a cell holding `initial` as the current snapshot.
    pub fn new(initial: Arc<T>) -> EpochCell<T> {
        EpochCell {
            current: AtomicPtr::new(Arc::into_raw(initial).cast_mut()),
            parity: AtomicUsize::new(0),
            readers: [AtomicUsize::new(0), AtomicUsize::new(0)],
            retire: Mutex::new(()),
        }
    }

    /// Clone the current snapshot. Wait-free: a fixed number of atomic
    /// operations, regardless of concurrent publishes.
    pub fn load(&self) -> Arc<T> {
        let side = self.parity.load(SeqCst) & 1;
        self.readers[side].fetch_add(1, SeqCst);
        let raw = self.current.load(SeqCst).cast_const();
        // SAFETY: `raw` came from `Arc::into_raw` and the allocation is still
        // alive: a writer frees a displaced snapshot only after its grace
        // period, which waits for both reader counters to drain *after* the
        // swap — and this reader registered (SeqCst) before loading `raw`, so
        // either it loaded the post-swap pointer (still owned by the cell) or
        // the retiring writer's wait covers this registration. Incrementing
        // the strong count before `from_raw` leaves the cell's own reference
        // intact.
        let snapshot = unsafe {
            Arc::increment_strong_count(raw);
            Arc::from_raw(raw)
        };
        self.readers[side].fetch_sub(1, SeqCst);
        snapshot
    }

    /// Install `next` as the current snapshot iff the cell still holds
    /// `expected` (pointer identity). Returns `true` on success; on failure
    /// `next` is dropped and the caller should reload and rebuild.
    ///
    /// On success the displaced snapshot is retired after a grace period, so
    /// the call may briefly wait for in-flight readers — readers never wait
    /// for writers.
    pub fn publish_if_current(&self, expected: &Arc<T>, next: Arc<T>) -> bool {
        let expected_raw = Arc::as_ptr(expected).cast_mut();
        let next_raw = Arc::into_raw(next).cast_mut();
        match self
            .current
            .compare_exchange(expected_raw, next_raw, SeqCst, SeqCst)
        {
            Ok(displaced) => {
                self.retire(displaced.cast_const());
                true
            }
            Err(_) => {
                // SAFETY: `next_raw` is the pointer we just produced with
                // `Arc::into_raw` above and it was not installed; reclaim the
                // reference so the rejected snapshot is dropped.
                drop(unsafe { Arc::from_raw(next_raw.cast_const()) });
                false
            }
        }
    }

    /// Wait out a grace period, then release the cell's reference to a
    /// displaced snapshot.
    fn retire(&self, displaced: *const T) {
        let guard = self.retire.lock().unwrap_or_else(|e| e.into_inner());
        // Two flip-and-drain rounds (liburcu's synchronize_rcu): a straggling
        // reader registered in either side before our swap is covered by one
        // of the two rounds; readers arriving during a round register in the
        // *other* side, so each drain terminates.
        for _ in 0..2 {
            let drained = self.parity.fetch_xor(1, SeqCst) & 1;
            let mut spins = 0u32;
            while self.readers[drained].load(SeqCst) != 0 {
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        drop(guard);
        // SAFETY: `displaced` was the cell's owned reference (swapped out by
        // the caller) and the grace period above guarantees no reader still
        // holds the raw pointer without having taken its own reference.
        drop(unsafe { Arc::from_raw(displaced) });
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        let raw = (*self.current.get_mut()).cast_const();
        // SAFETY: exclusive access; this is the cell's own reference.
        drop(unsafe { Arc::from_raw(raw) });
    }
}

impl<T> fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochCell").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Counts drops so leak/double-free bugs show up as wrong counts.
    struct Tracked {
        value: u64,
        drops: Arc<AtomicUsize>,
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.drops.fetch_add(1, SeqCst);
        }
    }

    #[test]
    fn load_returns_current_and_publish_replaces_it() {
        let cell = EpochCell::new(Arc::new(7u64));
        assert_eq!(*cell.load(), 7);
        let current = cell.load();
        assert!(cell.publish_if_current(&current, Arc::new(8)));
        assert_eq!(*cell.load(), 8);
    }

    #[test]
    fn stale_publish_is_rejected_and_reclaimed() {
        let drops = Arc::new(AtomicUsize::new(0));
        let tracked = |value| {
            Arc::new(Tracked {
                value,
                drops: Arc::clone(&drops),
            })
        };
        let cell = EpochCell::new(tracked(0));
        let stale = cell.load();
        assert!(cell.publish_if_current(&stale, tracked(1)));
        // Based on the displaced snapshot: must be rejected and dropped.
        assert!(!cell.publish_if_current(&stale, tracked(2)));
        assert_eq!(cell.load().value, 1);
        drop(stale);
        drop(cell);
        assert_eq!(drops.load(SeqCst), 3, "every snapshot dropped exactly once");
    }

    #[test]
    fn every_snapshot_is_dropped_exactly_once_under_concurrency() {
        const WRITERS: usize = 3;
        const PUBLISHES: usize = 150;
        const READERS: usize = 4;

        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(EpochCell::new(Arc::new(Tracked {
            value: 0,
            drops: Arc::clone(&drops),
        })));
        let writers: Vec<_> = (0..WRITERS)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let drops = Arc::clone(&drops);
                std::thread::spawn(move || {
                    for _ in 0..PUBLISHES {
                        loop {
                            let current = cell.load();
                            let next = Arc::new(Tracked {
                                value: current.value + 1,
                                drops: Arc::clone(&drops),
                            });
                            if cell.publish_if_current(&current, next) {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..4_000 {
                        let snapshot = cell.load();
                        // SeqCst loads of a monotonically growing value can
                        // never appear to go backwards.
                        assert!(snapshot.value >= last);
                        last = snapshot.value;
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        for r in readers {
            r.join().unwrap();
        }
        // The CAS loop makes publishes linearizable: the final value counts
        // every successful publish.
        assert_eq!(cell.load().value as usize, WRITERS * PUBLISHES);
        drop(cell);
        // One initial snapshot + one per publish, all reclaimed.
        assert_eq!(drops.load(SeqCst), WRITERS * PUBLISHES + 1);
    }

    #[test]
    fn readers_see_consistent_snapshots_not_tears() {
        // Each snapshot is a vector whose entries all hold the same value; a
        // reclamation bug (freeing a snapshot a reader still uses) shows up
        // as mixed or garbage entries.
        let cell = Arc::new(EpochCell::new(Arc::new(vec![0u64; 64])));
        let stop = Arc::new(AtomicUsize::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while stop.load(SeqCst) == 0 {
                        let snapshot = cell.load();
                        let first = snapshot[0];
                        assert!(snapshot.iter().all(|&v| v == first));
                    }
                })
            })
            .collect();
        for i in 1..=300u64 {
            loop {
                let current = cell.load();
                if cell.publish_if_current(&current, Arc::new(vec![i; 64])) {
                    break;
                }
            }
        }
        stop.store(1, SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*cell.load(), vec![300u64; 64]);
    }
}
