//! Server configuration.

use std::path::PathBuf;

/// Configuration of the exploration server's worker pool and queues.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of worker threads processing sessions. Each session is pinned
    /// to one worker; a worker multiplexes many sessions.
    pub worker_threads: usize,
    /// Maximum number of in-flight events per session. A session submitting
    /// faster than its worker drains blocks on [`SessionHandle::run_trace`]
    /// (backpressure) instead of queueing without bound.
    ///
    /// [`SessionHandle::run_trace`]: crate::manager::SessionHandle::run_trace
    pub session_queue_depth: usize,
    /// Directory of the persistent catalog. When set,
    /// [`ExplorationServer::open`] opens an existing persisted catalog (or
    /// creates the directory) on startup, and every published catalog epoch
    /// — loads, metadata edits, restructures — is persisted as it happens,
    /// so a restart resumes from the last published epoch. `None` serves a
    /// memory-only catalog.
    ///
    /// [`ExplorationServer::open`]: crate::manager::ExplorationServer::open
    pub catalog_dir: Option<PathBuf>,
    /// Keep every raw [`LatencySample`] in [`SessionReport::latencies`].
    ///
    /// Live serving summarizes per-touch latency into a fixed-memory
    /// log-scale histogram (`SessionReport::latency_hist`), so a long-lived
    /// session's report stays bounded. Benches and debugging sessions that
    /// want exact per-trace samples (exact percentiles, per-trace plots)
    /// opt back into the unbounded vector with this flag.
    ///
    /// [`LatencySample`]: crate::latency::LatencySample
    /// [`SessionReport::latencies`]: crate::report::SessionReport::latencies
    pub record_raw_latency: bool,
}

impl ServerConfig {
    /// `worker_threads` sized to the machine, depth 64, memory-only catalog.
    pub fn auto() -> ServerConfig {
        ServerConfig::default()
    }

    /// A specific worker count with the default queue depth.
    pub fn with_workers(worker_threads: usize) -> ServerConfig {
        ServerConfig {
            worker_threads: worker_threads.max(1),
            ..ServerConfig::default()
        }
    }

    /// Builder-style setter for the persistent catalog directory.
    pub fn with_catalog_dir(mut self, dir: impl Into<PathBuf>) -> ServerConfig {
        self.catalog_dir = Some(dir.into());
        self
    }

    /// Builder-style setter for raw latency-sample retention.
    pub fn with_raw_latency(mut self, record: bool) -> ServerConfig {
        self.record_raw_latency = record;
        self
    }
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServerConfig {
            worker_threads: parallelism.clamp(2, 16),
            session_queue_depth: 64,
            catalog_dir: None,
            record_raw_latency: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.worker_threads >= 2);
        assert!(c.session_queue_depth > 0);
        assert_eq!(ServerConfig::with_workers(0).worker_threads, 1);
        assert_eq!(ServerConfig::with_workers(5).worker_threads, 5);
    }
}
