//! Server configuration.
//!
//! [`ServerConfig`] is the one validated builder every way of bringing up an
//! [`ExplorationServer`] goes through: worker pool and queue knobs, the
//! catalog source (an existing shared catalog, a persistent directory, or a
//! fresh memory-only kernel), and — for the network serving layer in
//! `dbtouch-net` — the listener address, connection limits and the admission
//! control ([`ShedConfig`]) thresholds.
//!
//! [`ExplorationServer`]: crate::manager::ExplorationServer

use dbtouch_core::catalog::SharedCatalog;
use dbtouch_types::{DbTouchError, KernelConfig, Result};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// Admission-control thresholds for the network serving layer.
///
/// Every threshold is read from the live [`metrics_snapshot`] signals — the
/// PR 6 telemetry hub — right before an `OpenSession` or `RunTrace` is
/// admitted; a tripped threshold produces an explicit `Shed` response with a
/// suggested backoff instead of queueing the request without bound. `None`
/// disables the corresponding check.
///
/// [`metrics_snapshot`]: crate::manager::ExplorationServer::metrics_snapshot
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShedConfig {
    /// Shed new sessions once this many are live across all workers
    /// (`sum(worker_loads)`, poisoned workers excluded). `None`: unlimited.
    pub max_live_sessions: Option<u64>,
    /// Shed traffic while the remote executor's backlog
    /// (`remote_exec.backlog`) is at or above this. `None`: unlimited.
    pub max_remote_backlog: Option<u64>,
    /// Shed traffic while the server-wide per-touch p99
    /// (`server.touch_nanos` histogram) exceeds this many nanoseconds —
    /// the paper's interactivity ceiling made an admission signal.
    /// `None`: unlimited.
    pub max_touch_p99_nanos: Option<u64>,
    /// Backoff suggested to shed clients, in milliseconds.
    pub retry_after_ms: u64,
}

impl Default for ShedConfig {
    fn default() -> ShedConfig {
        ShedConfig {
            max_live_sessions: None,
            max_remote_backlog: None,
            max_touch_p99_nanos: None,
            retry_after_ms: 100,
        }
    }
}

/// Configuration of the exploration server: worker pool, queues, catalog
/// source, and the network-serving knobs `dbtouch-net` reads.
///
/// [`ExplorationServer::serve`] is the single entry point consuming this.
///
/// [`ExplorationServer::serve`]: crate::manager::ExplorationServer::serve
#[derive(Clone)]
pub struct ServerConfig {
    /// Number of worker threads processing sessions. Each session is pinned
    /// to one worker; a worker multiplexes many sessions.
    pub worker_threads: usize,
    /// Maximum number of in-flight events per session. A session submitting
    /// faster than its worker drains blocks on [`SessionHandle::run_trace`]
    /// (backpressure) instead of queueing without bound.
    ///
    /// [`SessionHandle::run_trace`]: crate::manager::SessionHandle::run_trace
    pub session_queue_depth: usize,
    /// Kernel configuration used when [`serve`] has to *create* a catalog
    /// (no [`catalog`](Self::catalog) handed in): both for opening
    /// [`catalog_dir`](Self::catalog_dir) and for a fresh memory-only
    /// catalog. Ignored when an existing catalog is supplied.
    ///
    /// [`serve`]: crate::manager::ExplorationServer::serve
    pub kernel: KernelConfig,
    /// An existing shared catalog to serve. Mutually exclusive with
    /// [`catalog_dir`](Self::catalog_dir).
    pub catalog: Option<Arc<SharedCatalog>>,
    /// Directory of the persistent catalog. When set, [`serve`] opens an
    /// existing persisted catalog (or creates the directory) on startup, and
    /// every published catalog epoch — loads, metadata edits, restructures —
    /// is persisted as it happens, so a restart resumes from the last
    /// published epoch. `None` serves a memory-only catalog.
    ///
    /// [`serve`]: crate::manager::ExplorationServer::serve
    pub catalog_dir: Option<PathBuf>,
    /// Keep every raw [`LatencySample`] in [`SessionReport::latencies`].
    ///
    /// Live serving summarizes per-touch latency into a fixed-memory
    /// log-scale histogram (`SessionReport::latency_hist`), so a long-lived
    /// session's report stays bounded. Benches and debugging sessions that
    /// want exact per-trace samples (exact percentiles, per-trace plots)
    /// opt back into the unbounded vector with this flag.
    ///
    /// [`LatencySample`]: crate::latency::LatencySample
    /// [`SessionReport::latencies`]: crate::report::SessionReport::latencies
    pub record_raw_latency: bool,
    /// Address the network layer (`dbtouch-net`) listens on, e.g.
    /// `"127.0.0.1:0"`. The in-process server ignores it; `dbtouch-net`
    /// requires it.
    pub listen_addr: Option<String>,
    /// Maximum simultaneous client connections the network layer serves;
    /// further connections receive a `Shed` frame and are closed.
    pub max_connections: usize,
    /// Bound of the accepted-but-not-yet-dispatched connection queue; an
    /// accept burst beyond it sheds instead of queueing without bound.
    pub accept_backlog: usize,
    /// Admission-control thresholds driven by live telemetry.
    pub shed: ShedConfig,
    /// How long a graceful network shutdown waits for in-flight connections
    /// to drain (flush traces, deliver final reports) before giving up on
    /// the stragglers, in milliseconds.
    pub drain_timeout_ms: u64,
}

impl ServerConfig {
    /// `worker_threads` sized to the machine, depth 64, memory-only catalog.
    pub fn auto() -> ServerConfig {
        ServerConfig::default()
    }

    /// A specific worker count with the default queue depth.
    pub fn with_workers(worker_threads: usize) -> ServerConfig {
        ServerConfig {
            worker_threads: worker_threads.max(1),
            ..ServerConfig::default()
        }
    }

    /// Builder-style setter for the kernel configuration used when a catalog
    /// has to be created.
    pub fn with_kernel(mut self, kernel: KernelConfig) -> ServerConfig {
        self.kernel = kernel;
        self
    }

    /// Builder-style setter: serve an existing shared catalog.
    pub fn with_catalog(mut self, catalog: Arc<SharedCatalog>) -> ServerConfig {
        self.catalog = Some(catalog);
        self
    }

    /// Builder-style setter for the persistent catalog directory.
    pub fn with_catalog_dir(mut self, dir: impl Into<PathBuf>) -> ServerConfig {
        self.catalog_dir = Some(dir.into());
        self
    }

    /// Builder-style setter for raw latency-sample retention.
    pub fn with_raw_latency(mut self, record: bool) -> ServerConfig {
        self.record_raw_latency = record;
        self
    }

    /// Builder-style setter for the network listen address.
    pub fn with_listen_addr(mut self, addr: impl Into<String>) -> ServerConfig {
        self.listen_addr = Some(addr.into());
        self
    }

    /// Builder-style setter for the connection cap.
    pub fn with_max_connections(mut self, max: usize) -> ServerConfig {
        self.max_connections = max;
        self
    }

    /// Builder-style setter for the accept-backlog bound.
    pub fn with_accept_backlog(mut self, backlog: usize) -> ServerConfig {
        self.accept_backlog = backlog;
        self
    }

    /// Builder-style setter for the admission-control thresholds.
    pub fn with_shed(mut self, shed: ShedConfig) -> ServerConfig {
        self.shed = shed;
        self
    }

    /// Builder-style setter for the graceful-drain timeout.
    pub fn with_drain_timeout_ms(mut self, ms: u64) -> ServerConfig {
        self.drain_timeout_ms = ms;
        self
    }

    /// Check the configuration for contradictions and out-of-range values.
    /// [`ExplorationServer::serve`] calls this before spawning anything.
    ///
    /// [`ExplorationServer::serve`]: crate::manager::ExplorationServer::serve
    pub fn validate(&self) -> Result<()> {
        if self.worker_threads == 0 {
            return Err(DbTouchError::InvalidConfig(
                "worker_threads must be at least 1".into(),
            ));
        }
        if self.session_queue_depth == 0 {
            return Err(DbTouchError::InvalidConfig(
                "session_queue_depth must be at least 1".into(),
            ));
        }
        if self.catalog.is_some() && self.catalog_dir.is_some() {
            return Err(DbTouchError::InvalidConfig(
                "catalog and catalog_dir are mutually exclusive: serve an \
                 existing catalog or open a persistent one, not both"
                    .into(),
            ));
        }
        if self.max_connections == 0 {
            return Err(DbTouchError::InvalidConfig(
                "max_connections must be at least 1".into(),
            ));
        }
        if self.accept_backlog == 0 {
            return Err(DbTouchError::InvalidConfig(
                "accept_backlog must be at least 1".into(),
            ));
        }
        if let Some(addr) = &self.listen_addr {
            if addr.is_empty() {
                return Err(DbTouchError::InvalidConfig(
                    "listen_addr must not be empty".into(),
                ));
            }
        }
        if self.shed.max_live_sessions == Some(0) {
            return Err(DbTouchError::InvalidConfig(
                "shed.max_live_sessions of 0 would shed every session; use \
                 None to disable the check"
                    .into(),
            ));
        }
        Ok(())
    }
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServerConfig {
            worker_threads: parallelism.clamp(2, 16),
            session_queue_depth: 64,
            kernel: KernelConfig::default(),
            catalog: None,
            catalog_dir: None,
            record_raw_latency: false,
            listen_addr: None,
            max_connections: 1024,
            accept_backlog: 64,
            shed: ShedConfig::default(),
            drain_timeout_ms: 5_000,
        }
    }
}

// Manual impl: `SharedCatalog` is not `Debug`; show presence, not contents.
impl fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerConfig")
            .field("worker_threads", &self.worker_threads)
            .field("session_queue_depth", &self.session_queue_depth)
            .field(
                "catalog",
                &self.catalog.as_ref().map(|_| "Arc<SharedCatalog>"),
            )
            .field("catalog_dir", &self.catalog_dir)
            .field("record_raw_latency", &self.record_raw_latency)
            .field("listen_addr", &self.listen_addr)
            .field("max_connections", &self.max_connections)
            .field("accept_backlog", &self.accept_backlog)
            .field("shed", &self.shed)
            .field("drain_timeout_ms", &self.drain_timeout_ms)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.worker_threads >= 2);
        assert!(c.session_queue_depth > 0);
        assert!(c.max_connections > 0);
        assert!(c.accept_backlog > 0);
        assert_eq!(ServerConfig::with_workers(0).worker_threads, 1);
        assert_eq!(ServerConfig::with_workers(5).worker_threads, 5);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_contradictions() {
        let both = ServerConfig::default()
            .with_catalog(Arc::new(SharedCatalog::new(KernelConfig::default())))
            .with_catalog_dir("/tmp/x");
        assert!(matches!(
            both.validate(),
            Err(DbTouchError::InvalidConfig(_))
        ));

        let zero_workers = ServerConfig {
            worker_threads: 0,
            ..ServerConfig::default()
        };
        assert!(zero_workers.validate().is_err());

        let zero_depth = ServerConfig {
            session_queue_depth: 0,
            ..ServerConfig::default()
        };
        assert!(zero_depth.validate().is_err());

        assert!(ServerConfig::default()
            .with_max_connections(0)
            .validate()
            .is_err());
        assert!(ServerConfig::default()
            .with_accept_backlog(0)
            .validate()
            .is_err());
        assert!(ServerConfig::default()
            .with_listen_addr("")
            .validate()
            .is_err());
        assert!(ServerConfig::default()
            .with_shed(ShedConfig {
                max_live_sessions: Some(0),
                ..ShedConfig::default()
            })
            .validate()
            .is_err());
    }

    #[test]
    fn builders_compose() {
        let c = ServerConfig::with_workers(3)
            .with_listen_addr("127.0.0.1:0")
            .with_max_connections(7)
            .with_accept_backlog(2)
            .with_drain_timeout_ms(250)
            .with_shed(ShedConfig {
                max_live_sessions: Some(1),
                retry_after_ms: 50,
                ..ShedConfig::default()
            });
        assert_eq!(c.worker_threads, 3);
        assert_eq!(c.listen_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(c.max_connections, 7);
        assert_eq!(c.accept_backlog, 2);
        assert_eq!(c.drain_timeout_ms, 250);
        assert_eq!(c.shed.max_live_sessions, Some(1));
        assert_eq!(c.shed.retry_after_ms, 50);
        assert!(c.validate().is_ok());
        // Debug never touches catalog contents.
        assert!(format!("{c:?}").contains("max_connections"));
    }
}
