//! Per-touch latency accounting for served sessions.
//!
//! The paper's interactive-behaviour requirement (Section 4) — "there should
//! always be a maximum possible wait time for a single touch" — becomes, in a
//! serving context, a tail-latency requirement: the server must know its p99
//! per-touch time under load, not just its throughput.

use dbtouch_obs::HistogramSnapshot;

/// Wall-clock measurement of one processed gesture trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySample {
    /// Wall time the worker spent processing the trace, in nanoseconds.
    pub nanos: u64,
    /// Touch samples in the trace.
    pub touches: u64,
    /// Worst single-touch processing time inside the trace, in nanoseconds
    /// (from the session's own per-touch measurement). This is what the
    /// paper's "maximum possible wait time for a single touch" bounds; the
    /// per-trace mean cannot stand in for it.
    pub max_touch_nanos: u64,
}

impl LatencySample {
    /// Mean per-touch processing time within this trace.
    pub fn per_touch_nanos(&self) -> u64 {
        self.nanos / self.touches.max(1)
    }
}

/// Percentile over an unsorted slice (nearest-rank). Returns 0 when empty.
///
/// Clones and sorts per call — when several percentiles of the same slice
/// are needed, sort once and use [`percentile_sorted`] for each.
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    percentile_sorted(&sorted, p)
}

/// Nearest-rank percentile over an already-sorted slice. Returns 0 when empty.
pub fn percentile_sorted(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Summary of per-touch latency across many traces.
///
/// The percentiles are over each trace's *mean* per-touch time — the
/// distribution of how fast whole gestures were served. `max_nanos` is the
/// true worst single touch across every trace (not the worst mean), so the
/// tail a slow individual touch creates is never averaged away.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of traces measured.
    pub count: usize,
    /// Mean per-touch nanoseconds across traces.
    pub mean_nanos: u64,
    /// Median of per-trace mean per-touch nanoseconds.
    pub p50_nanos: u64,
    /// 90th percentile of per-trace mean per-touch nanoseconds.
    pub p90_nanos: u64,
    /// 99th percentile of per-trace mean per-touch nanoseconds.
    pub p99_nanos: u64,
    /// Worst single-touch nanoseconds observed in any trace.
    pub max_nanos: u64,
}

impl LatencySummary {
    /// Summarize per-touch latencies of a set of trace samples.
    pub fn from_samples(samples: &[LatencySample]) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        let mut per_touch: Vec<u64> = samples.iter().map(LatencySample::per_touch_nanos).collect();
        per_touch.sort_unstable();
        let sum: u64 = per_touch.iter().sum();
        // The worst single touch anywhere; a sample that never recorded one
        // (max_touch_nanos == 0) falls back to its mean.
        let max_nanos = samples
            .iter()
            .map(|s| s.max_touch_nanos.max(s.per_touch_nanos()))
            .max()
            .unwrap_or(0);
        LatencySummary {
            count: per_touch.len(),
            mean_nanos: sum / per_touch.len() as u64,
            p50_nanos: percentile_sorted(&per_touch, 50.0),
            p90_nanos: percentile_sorted(&per_touch, 90.0),
            p99_nanos: percentile_sorted(&per_touch, 99.0),
            max_nanos,
        }
    }

    /// Summarize a per-touch latency histogram (each recorded value one
    /// trace's mean per-touch nanoseconds). `max_touch_nanos` is the worst
    /// single touch tracked alongside the histogram; the larger of it and
    /// the histogram's own max is reported, so a caller that tracked no
    /// per-touch worst still gets the worst per-trace mean.
    ///
    /// Percentiles inherit the histogram's log-scale bucket resolution:
    /// each is an upper bound within 2x of the exact nearest-rank value
    /// (see [`HistogramSnapshot::quantile`]).
    pub fn from_histogram(hist: &HistogramSnapshot, max_touch_nanos: u64) -> LatencySummary {
        if hist.count() == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            count: hist.count() as usize,
            mean_nanos: hist.mean() as u64,
            p50_nanos: hist.quantile(50.0),
            p90_nanos: hist.quantile(90.0),
            p99_nanos: hist.quantile(99.0),
            max_nanos: max_touch_nanos.max(hist.max()),
        }
    }

    /// Merge per-trace samples from several sessions into one summary.
    ///
    /// Streams every sample into one fixed-memory histogram instead of
    /// copying all samples into one vector (sessions can hold arbitrarily
    /// many traces): memory is constant and percentiles carry the
    /// histogram's 2x bucket resolution. The reported max stays exact.
    pub fn merged<'a>(
        per_session: impl IntoIterator<Item = &'a [LatencySample]>,
    ) -> LatencySummary {
        let mut hist = HistogramSnapshot::default();
        let mut worst = 0u64;
        for samples in per_session {
            for sample in samples {
                let mean = sample.per_touch_nanos();
                hist.record(mean);
                worst = worst.max(sample.max_touch_nanos.max(mean));
            }
        }
        LatencySummary::from_histogram(&hist, worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 50.0), 50);
        assert_eq!(percentile(&samples, 99.0), 99);
        assert_eq!(percentile(&samples, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn summary_per_touch() {
        let samples = [
            LatencySample {
                nanos: 1_000,
                touches: 10,
                max_touch_nanos: 400,
            }, // mean 100 ns/touch, worst touch 400
            LatencySample {
                nanos: 9_000,
                touches: 30,
                max_touch_nanos: 5_000,
            }, // mean 300 ns/touch, worst touch 5000
        ];
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean_nanos, 200);
        assert_eq!(s.p50_nanos, 100);
        // max is the worst single touch, not the worst per-trace mean.
        assert_eq!(s.max_nanos, 5_000);
    }

    #[test]
    fn histogram_summary_bounds_the_exact_one() {
        let samples: Vec<LatencySample> = (1..=200u64)
            .map(|i| LatencySample {
                nanos: i * 1_000,
                touches: 1,
                max_touch_nanos: i * 1_000,
            })
            .collect();
        let exact = LatencySummary::from_samples(&samples);
        let merged = LatencySummary::merged([samples.as_slice()]);
        assert_eq!(merged.count, exact.count);
        assert_eq!(merged.max_nanos, exact.max_nanos, "max stays exact");
        for (est, want) in [
            (merged.p50_nanos, exact.p50_nanos),
            (merged.p90_nanos, exact.p90_nanos),
            (merged.p99_nanos, exact.p99_nanos),
        ] {
            assert!(est >= want, "histogram percentile is an upper bound");
            assert!(est < want * 2, "within the 2x log-bucket error bound");
        }
        assert_eq!(
            LatencySummary::merged(std::iter::empty::<&[LatencySample]>()),
            LatencySummary::default()
        );
    }

    #[test]
    fn empty_and_zero_touch_safe() {
        assert_eq!(LatencySummary::from_samples(&[]), LatencySummary::default());
        let z = LatencySample {
            nanos: 5,
            touches: 0,
            max_touch_nanos: 0,
        };
        assert_eq!(z.per_touch_nanos(), 5);
        // A sample without a recorded worst touch falls back to its mean.
        assert_eq!(LatencySummary::from_samples(&[z]).max_nanos, 5);
    }
}
