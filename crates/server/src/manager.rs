//! The session manager: worker threads multiplexing many exploration
//! sessions over one shared catalog.
//!
//! Topology:
//!
//! ```text
//!                    ┌──────────────────────────────┐
//!  SessionHandle ──▶ │ worker 0: sessions {1, 4, …} │──┐
//!  SessionHandle ──▶ │ worker 1: sessions {2, 5, …} │──┼──▶ Arc<SharedCatalog>
//!  SessionHandle ──▶ │ worker 2: sessions {3, 6, …} │──┘      (read-only)
//!                    └──────────────────────────────┘
//! ```
//!
//! * Sessions are pinned at creation to the worker currently serving the
//!   fewest live sessions (round-robin breaks ties); a worker owns the
//!   per-session [`ObjectState`]s outright, so per-touch processing takes
//!   no locks at all — the only shared structure is the catalog's `Arc`'d
//!   immutable data.
//! * Every `SetAction`/`RunTrace` event is a gesture boundary: the session's
//!   state observes the newest catalog epoch first
//!   ([`ObjectState::refresh`]), then the whole trace runs against that one
//!   snapshot. [`SessionReport`] records the epoch each trace ran against
//!   and how many restructures the session observed.
//! * Every session has a bounded event budget ([`ServerConfig::session_queue_depth`]):
//!   a producer that outruns its worker blocks in [`SessionHandle::run_trace`]
//!   until earlier events drain (backpressure), so one runaway explorer cannot
//!   queue unbounded work.
//! * Processing errors (bad trace, unknown object, invalid action) are
//!   recorded in the session's report instead of killing the worker.

use crate::config::ServerConfig;
use crate::latency::LatencySample;
use crate::metrics::{ServerInstruments, ServerMetricsSnapshot};
use crate::report::{SessionId, SessionReport, TraceOutcome};
use dbtouch_core::catalog::{validate_action, ObjectState, SharedCatalog};
use dbtouch_core::kernel::{ObjectId, TouchAction};
use dbtouch_core::remote_exec::{self, CompletionQueue, RefinementApplied, RemoteCompletion};
use dbtouch_core::session::Session;
use dbtouch_gesture::trace::GestureTrace;
use dbtouch_obs::{
    clear_trace_ctx, set_trace_ctx, set_trace_ctx_span, Telemetry, TraceEventKind, WireTraceContext,
};
use dbtouch_types::{DbTouchError, KernelConfig, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One queued event of one session.
enum SessionEvent {
    /// Change the session's touch action for an object.
    SetAction {
        object: ObjectId,
        action: TouchAction,
    },
    /// Run a gesture trace over an object. `wire` carries the client-stamped
    /// trace context when the trace arrived over the network; `enqueued`
    /// marks submission time so the worker can decompose queue wait from
    /// service time.
    RunTrace {
        object: ObjectId,
        trace: GestureTrace,
        wire: Option<WireTraceContext>,
        enqueued: Instant,
    },
    /// Reply with a copy of the session's report so far.
    Snapshot { reply: SyncSender<SessionReport> },
    /// Tear the session down and reply with its final report.
    Close { reply: SyncSender<SessionReport> },
}

/// What travels to a worker.
enum Envelope {
    /// One queued event: the session it belongs to and the gate to release
    /// once the event is processed.
    Event {
        session: SessionId,
        gate: Arc<QueueGate>,
        event: SessionEvent,
    },
    /// Shutdown signal: drain what is queued, wake every blocked producer,
    /// exit. Sent by the server so workers terminate even while session
    /// handles (and their `Sender` clones) are still alive.
    Terminate,
}

struct GateState {
    in_flight: usize,
    closed: bool,
}

/// Counting gate bounding a session's in-flight events (a tiny closable
/// semaphore). `close()` permanently wakes and rejects blocked producers so a
/// worker that terminates — cleanly or by panic — cannot strand them.
struct QueueGate {
    depth: usize,
    state: Mutex<GateState>,
    drained: Condvar,
}

impl QueueGate {
    fn new(depth: usize) -> QueueGate {
        QueueGate {
            depth: depth.max(1),
            state: Mutex::new(GateState {
                in_flight: 0,
                closed: false,
            }),
            drained: Condvar::new(),
        }
    }

    /// Block until the session is below its depth, then take a slot. Returns
    /// `false` (immediately or on wake) once the gate is closed.
    fn acquire(&self) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.closed {
                return false;
            }
            if state.in_flight < self.depth {
                state.in_flight += 1;
                return true;
            }
            state = self.drained.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Return a slot (called by the worker after processing an event).
    fn release(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.in_flight = state.in_flight.saturating_sub(1);
        self.drained.notify_one();
    }

    /// Reject current and future acquirers (worker gone).
    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        self.drained.notify_all();
    }
}

/// A handle to one served exploration session.
///
/// Events submitted through the handle are processed in order by the worker
/// the session is pinned to. [`run_trace`](SessionHandle::run_trace) is
/// asynchronous (fire-and-forget with backpressure);
/// [`snapshot`](SessionHandle::snapshot) and [`close`](SessionHandle::close)
/// are synchronous barriers.
pub struct SessionHandle {
    id: SessionId,
    sender: Sender<Envelope>,
    gate: Arc<QueueGate>,
    closed: bool,
}

impl SessionHandle {
    /// The session's id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    fn submit(&self, event: SessionEvent) -> Result<()> {
        if !self.gate.acquire() {
            return Err(DbTouchError::Internal(
                "exploration server has shut down".into(),
            ));
        }
        self.sender
            .send(Envelope::Event {
                session: self.id,
                gate: Arc::clone(&self.gate),
                event,
            })
            .map_err(|_| {
                self.gate.release();
                DbTouchError::Internal("exploration server has shut down".into())
            })
    }

    /// Choose the touch action subsequent traces over `object` run (this
    /// session only; other sessions keep their own action).
    pub fn set_action(&self, object: ObjectId, action: TouchAction) -> Result<()> {
        self.submit(SessionEvent::SetAction { object, action })
    }

    /// Enqueue a gesture trace. Returns as soon as the event is queued; blocks
    /// only when the session already has `session_queue_depth` events in
    /// flight (backpressure).
    pub fn run_trace(&self, object: ObjectId, trace: GestureTrace) -> Result<()> {
        self.run_trace_traced(object, trace, None)
    }

    /// [`SessionHandle::run_trace`] carrying a wire-propagated trace context:
    /// the worker adopts the client's trace and root-span ids, so the span
    /// tree it retains is addressable by the ids the client stamped.
    pub fn run_trace_traced(
        &self,
        object: ObjectId,
        trace: GestureTrace,
        wire: Option<WireTraceContext>,
    ) -> Result<()> {
        self.submit(SessionEvent::RunTrace {
            object,
            trace,
            wire,
            enqueued: Instant::now(),
        })
    }

    /// Wait for everything submitted so far to finish and return a copy of
    /// the session's report.
    pub fn snapshot(&self) -> Result<SessionReport> {
        let (reply, receive) = sync_channel(1);
        self.submit(SessionEvent::Snapshot { reply })?;
        receive
            .recv()
            .map_err(|_| DbTouchError::Internal("exploration server has shut down".into()))
    }

    /// Wait for everything submitted so far to finish, tear the session down
    /// and return its final report.
    pub fn close(mut self) -> Result<SessionReport> {
        let (reply, receive) = sync_channel(1);
        self.submit(SessionEvent::Close { reply })?;
        self.closed = true;
        receive
            .recv()
            .map_err(|_| DbTouchError::Internal("exploration server has shut down".into()))
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        if !self.closed {
            // Best-effort teardown so a leaked handle does not leave session
            // state resident in its worker for the server's lifetime.
            let (reply, _discard) = sync_channel(1);
            let _ = self.sender.send(Envelope::Event {
                session: self.id,
                gate: Arc::clone(&self.gate),
                event: SessionEvent::Close { reply },
            });
        }
    }
}

struct WorkerHandle {
    sender: Option<Sender<Envelope>>,
    join: Option<JoinHandle<()>>,
    /// Sessions currently pinned to this worker: incremented at
    /// `open_session`, decremented when the worker processes the session's
    /// `Close`. Drives least-loaded placement.
    live_sessions: Arc<AtomicUsize>,
}

/// A concurrent multi-session exploration service over one shared catalog.
///
/// ```
/// use dbtouch_core::catalog::SharedCatalog;
/// use dbtouch_core::kernel::TouchAction;
/// use dbtouch_gesture::synthesizer::GestureSynthesizer;
/// use dbtouch_server::{ExplorationServer, ServerConfig};
/// use dbtouch_types::{KernelConfig, SizeCm};
/// use std::sync::Arc;
///
/// let catalog = Arc::new(SharedCatalog::new(KernelConfig::default()));
/// let object = catalog
///     .load_column("readings", (0..50_000).collect(), SizeCm::new(2.0, 10.0))
///     .unwrap();
/// let view = catalog.data(object).unwrap().base_view().clone();
///
/// let server =
///     ExplorationServer::serve(ServerConfig::with_workers(2).with_catalog(Arc::clone(&catalog)))
///         .unwrap();
/// let session = server.open_session();
/// session.set_action(object, TouchAction::Scan).unwrap();
/// session
///     .run_trace(object, GestureSynthesizer::new(60.0).slide_down(&view, 0.5))
///     .unwrap();
/// let report = session.close().unwrap();
/// assert!(report.total_entries() > 0);
/// assert!(report.errors.is_empty());
/// server.shutdown();
/// ```
pub struct ExplorationServer {
    catalog: Arc<SharedCatalog>,
    workers: Vec<WorkerHandle>,
    queue_depth: usize,
    next_session: AtomicU64,
    next_worker: AtomicUsize,
    instruments: Arc<ServerInstruments>,
}

impl ExplorationServer {
    /// The one entry point: validate `config`, resolve the catalog it names
    /// (an existing [`ServerConfig::catalog`], the persistent
    /// [`ServerConfig::catalog_dir`] opened with [`ServerConfig::kernel`], or
    /// a fresh memory-only catalog) and spawn the worker pool over it.
    ///
    /// This replaces the old `start` (existing catalog) / `open` (persistent
    /// catalog) split — both remain as thin deprecated shims.
    pub fn serve(config: ServerConfig) -> Result<ExplorationServer> {
        config.validate()?;
        let catalog = match (&config.catalog, &config.catalog_dir) {
            (Some(catalog), None) => Arc::clone(catalog),
            (None, Some(dir)) => Arc::new(SharedCatalog::open(dir, config.kernel.clone())?),
            (None, None) => Arc::new(SharedCatalog::new(config.kernel.clone())),
            (Some(_), Some(_)) => unreachable!("validate() rejects catalog + catalog_dir"),
        };
        Ok(ExplorationServer::spawn(catalog, &config))
    }

    /// Spawn the worker pool over `catalog`.
    #[deprecated(
        since = "0.1.0",
        note = "use ExplorationServer::serve(config.with_catalog(catalog))"
    )]
    pub fn start(catalog: Arc<SharedCatalog>, config: ServerConfig) -> ExplorationServer {
        ExplorationServer::spawn(catalog, &config)
    }

    /// Open-or-create the configured catalog and spawn the worker pool over
    /// it.
    #[deprecated(
        since = "0.1.0",
        note = "use ExplorationServer::serve(config.with_kernel(kernel_config))"
    )]
    pub fn open(kernel_config: KernelConfig, config: ServerConfig) -> Result<ExplorationServer> {
        ExplorationServer::serve(config.with_kernel(kernel_config))
    }

    fn spawn(catalog: Arc<SharedCatalog>, config: &ServerConfig) -> ExplorationServer {
        let instruments = Arc::new(ServerInstruments::default());
        catalog
            .telemetry()
            .register(Arc::clone(&instruments) as Arc<dyn dbtouch_obs::MetricSource>);
        let record_raw = config.record_raw_latency;
        let workers = (0..config.worker_threads.max(1))
            .map(|index| {
                let (sender, receiver) = channel();
                let catalog = Arc::clone(&catalog);
                let live_sessions = Arc::new(AtomicUsize::new(0));
                let live = Arc::clone(&live_sessions);
                let instruments = Arc::clone(&instruments);
                let join = std::thread::Builder::new()
                    .name(format!("dbtouch-worker-{index}"))
                    .spawn(move || worker_loop(catalog, receiver, live, instruments, record_raw))
                    .expect("spawn worker thread");
                WorkerHandle {
                    sender: Some(sender),
                    join: Some(join),
                    live_sessions,
                }
            })
            .collect();
        ExplorationServer {
            catalog,
            workers,
            queue_depth: config.session_queue_depth,
            next_session: AtomicU64::new(1),
            next_worker: AtomicUsize::new(0),
            instruments,
        }
    }

    /// The catalog this server serves.
    pub fn catalog(&self) -> &Arc<SharedCatalog> {
        &self.catalog
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Open a new exploration session, pinned to the worker currently
    /// serving the fewest live sessions. Ties are broken round-robin, so
    /// uniform load degenerates to the classic rotation while skewed load
    /// (long-lived sessions piling up on one worker) steers new sessions to
    /// the idle workers — the first concrete step toward session migration.
    pub fn open_session(&self) -> SessionHandle {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        let start = self.next_worker.fetch_add(1, Ordering::Relaxed);
        let count = self.workers.len();
        let worker = (0..count)
            .map(|offset| (start + offset) % count)
            .min_by_key(|&index| self.workers[index].live_sessions.load(Ordering::Relaxed))
            .expect("at least one worker");
        // checked_add leaves a poisoned (usize::MAX) counter of a panicked
        // worker untouched instead of wrapping it back to an attractive 0.
        if let Ok(previous) = self.workers[worker].live_sessions.fetch_update(
            Ordering::Relaxed,
            Ordering::Relaxed,
            |live| live.checked_add(1),
        ) {
            self.instruments
                .peak_worker_load
                .observe(previous as u64 + 1);
        }
        self.instruments.sessions_opened.inc();
        // Poisoned (usize::MAX) counters of dead workers are excluded: they
        // mark a worker as unroutable, not billions of live sessions.
        let live_total: u64 = self
            .workers
            .iter()
            .map(|w| w.live_sessions.load(Ordering::Relaxed))
            .filter(|&l| l != usize::MAX)
            .map(|l| l as u64)
            .sum();
        self.instruments.peak_live_sessions.observe(live_total);
        SessionHandle {
            id,
            sender: self.workers[worker].sender.clone().expect("server running"),
            gate: Arc::new(QueueGate::new(self.queue_depth)),
            closed: false,
        }
    }

    /// Live sessions currently pinned to each worker, in worker order.
    pub fn worker_loads(&self) -> Vec<usize> {
        self.workers
            .iter()
            .map(|w| w.live_sessions.load(Ordering::Relaxed))
            .collect()
    }

    /// A typed point-in-time metrics snapshot: every registered source
    /// (server counters, catalog gauges, pager, caches, remote executor),
    /// the recent trace-event window, and the per-worker loads. Safe to
    /// take mid-run — scraping never blocks serving.
    pub fn metrics_snapshot(&self) -> ServerMetricsSnapshot {
        ServerMetricsSnapshot {
            worker_loads: self.worker_loads(),
            inner: self.catalog.telemetry().snapshot(),
        }
    }

    /// Stop serving and join the workers. Queued-but-unprocessed events are
    /// discarded; session handles still alive get "server has shut down"
    /// errors from further submissions instead of blocking.
    pub fn shutdown(mut self) {
        self.join_workers();
    }

    fn join_workers(&mut self) {
        // An explicit Terminate (rather than relying on channel disconnect)
        // lets workers exit even while session handles still hold Sender
        // clones of their queues.
        for worker in &mut self.workers {
            if let Some(sender) = &worker.sender {
                let _ = sender.send(Envelope::Terminate);
            }
        }
        for worker in &mut self.workers {
            if let Some(join) = worker.join.take() {
                let _ = join.join();
            }
            worker.sender = None;
        }
    }
}

impl Drop for ExplorationServer {
    fn drop(&mut self) {
        self.join_workers();
    }
}

/// Per-session state owned by a worker.
#[derive(Default)]
struct SessionSlot {
    states: HashMap<ObjectId, ObjectState>,
    report: SessionReport,
    /// The one completion queue all of this session's states feed (created
    /// lazily when the session first touches a remote-split object), so the
    /// worker drains a single queue per session at event boundaries.
    remote_queue: Option<Arc<CompletionQueue>>,
    /// In-flight refinement tickets → (index of the trace outcome they
    /// patch, telemetry trace id of the issuing trace).
    outstanding: HashMap<u64, (usize, u64)>,
}

impl SessionSlot {
    /// Checkout-or-reuse the session's state for `object`, applying the
    /// gesture-boundary epoch refresh: an existing state observes the newest
    /// catalog epoch (rebuilding against restructured data, counting it in
    /// `restructures_seen`); a fresh checkout is already at the newest epoch.
    /// A state whose object was removed from the catalog is dropped and the
    /// lookup fails. Remote-split states are pointed at the session's shared
    /// completion queue before they can submit anything.
    fn boundary_state<'a>(
        states: &'a mut HashMap<ObjectId, ObjectState>,
        remote_queue: &mut Option<Arc<CompletionQueue>>,
        catalog: &SharedCatalog,
        object: ObjectId,
        restructures_seen: &mut u64,
    ) -> Result<&'a mut ObjectState> {
        use std::collections::hash_map::Entry;
        let state = match states.entry(object) {
            Entry::Occupied(mut entry) => match entry.get_mut().refresh(catalog) {
                Ok(rebuilt) => {
                    if rebuilt {
                        *restructures_seen += 1;
                    }
                    entry.into_mut()
                }
                Err(e) => {
                    entry.remove();
                    return Err(e);
                }
            },
            Entry::Vacant(entry) => entry.insert(catalog.checkout(object)?),
        };
        if state.remote_tier().is_some() {
            let queue = remote_queue.get_or_insert_with(|| Arc::new(CompletionQueue::new()));
            state.set_remote_queue(Arc::clone(queue));
        }
        Ok(state)
    }

    /// Apply one completion to the trace outcome it refines, recording its
    /// real latency. Completions whose ticket is unknown (their trace
    /// errored before its outcome was recorded) are discarded.
    fn apply_remote(&mut self, completion: RemoteCompletion, telemetry: &Telemetry) {
        let ticket = completion.ticket;
        let Some((trace_index, trace_id)) = self.outstanding.remove(&ticket) else {
            return;
        };
        let latency_nanos = completion.submitted.elapsed().as_nanos() as u64;
        let outcome = &mut self.report.outcomes[trace_index].outcome;
        // Refinements land at later event boundaries, outside their issuing
        // trace's scope: re-stamp its trace id so the lifecycle events of
        // one gesture correlate across the submit/land gap.
        set_trace_ctx(self.report.session_id, trace_id);
        // Link the refinement back to its originating touch span — even when
        // the touch already answered and its tree was retained (marked late).
        let landed = telemetry.now_nanos();
        telemetry.spans().record_late_span(
            self.report.session_id,
            trace_id,
            "refinement",
            landed.saturating_sub(latency_nanos),
            latency_nanos,
            ticket,
        );
        match remote_exec::apply_completion(outcome, completion) {
            Ok(RefinementApplied::Applied { .. }) => {
                telemetry.event(TraceEventKind::RefinementLanded, ticket);
                self.report.refinement_latencies.push(latency_nanos);
            }
            Ok(RefinementApplied::DroppedStaleBuild) => {
                telemetry.event(TraceEventKind::RefinementDropped, ticket);
                self.report.refinement_latencies.push(latency_nanos);
            }
            Ok(RefinementApplied::UnknownTicket) => {}
            Err(e) => self.report.errors.push(format!("refinement {ticket}: {e}")),
        }
        clear_trace_ctx();
    }

    /// Drain the session's completion queue. Between events this is
    /// non-blocking (apply whatever is ready, keep serving); at a barrier
    /// (snapshot/close) it waits until every outstanding refinement landed —
    /// the stall, if any, is charged to `refinement_blocked_nanos`.
    fn drain_remote(&mut self, barrier: bool, telemetry: &Telemetry) {
        if self.remote_queue.is_none() {
            return;
        }
        let queue = Arc::clone(self.remote_queue.as_ref().expect("checked above"));
        for completion in queue.drain_ready() {
            self.apply_remote(completion, telemetry);
        }
        if !barrier || self.outstanding.is_empty() {
            return;
        }
        let stalled = Instant::now();
        while !self.outstanding.is_empty() {
            for completion in queue.wait_ready(Duration::from_millis(20)) {
                self.apply_remote(completion, telemetry);
            }
        }
        self.report.refinement_blocked_nanos += stalled.elapsed().as_nanos() as u64;
    }
}

fn worker_loop(
    catalog: Arc<SharedCatalog>,
    receiver: Receiver<Envelope>,
    live_sessions: Arc<AtomicUsize>,
    instruments: Arc<ServerInstruments>,
    record_raw: bool,
) {
    let mut gates: HashMap<SessionId, Arc<QueueGate>> = HashMap::new();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        serve(
            &catalog,
            &receiver,
            &mut gates,
            &live_sessions,
            &instruments,
            record_raw,
        )
    }));
    // Whether the loop ended by Terminate, channel disconnect or a panic
    // inside per-touch processing: drain what is still queued and close every
    // gate this worker has seen, so no producer stays blocked in
    // `QueueGate::acquire` waiting for a worker that is gone.
    while let Ok(envelope) = receiver.try_recv() {
        if let Envelope::Event { gate, .. } = envelope {
            gate.release();
            gate.close();
        }
    }
    for gate in gates.values() {
        gate.close();
    }
    if let Err(panic) = outcome {
        // A dead worker can never serve another session: poison its load
        // counter so least-loaded placement stops routing new sessions to it
        // (its real count could otherwise look attractively low forever,
        // since nothing will ever process its queued Close events).
        live_sessions.store(usize::MAX, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .unwrap_or("dbtouch-worker")
            .to_string();
        eprintln!("{name}: worker panicked; its sessions are closed: {panic:?}");
    }
}

fn serve(
    catalog: &Arc<SharedCatalog>,
    receiver: &Receiver<Envelope>,
    gates: &mut HashMap<SessionId, Arc<QueueGate>>,
    live_sessions: &AtomicUsize,
    instruments: &ServerInstruments,
    record_raw: bool,
) {
    let config = catalog.config().clone();
    let telemetry = Arc::clone(catalog.telemetry());
    let mut sessions: HashMap<SessionId, SessionSlot> = HashMap::new();
    while let Ok(envelope) = receiver.recv() {
        let Envelope::Event {
            session,
            gate,
            event,
        } = envelope
        else {
            break; // Terminate
        };
        gates.entry(session).or_insert_with(|| Arc::clone(&gate));
        let slot = sessions.entry(session).or_insert_with(|| SessionSlot {
            report: SessionReport {
                session_id: session,
                ..SessionReport::default()
            },
            ..SessionSlot::default()
        });
        // Every event is a boundary: land whatever refinements are ready
        // before processing it (never blocking — overlap is the point).
        slot.drain_remote(false, &telemetry);
        match event {
            SessionEvent::SetAction { object, action } => {
                let report = &mut slot.report;
                let applied = SessionSlot::boundary_state(
                    &mut slot.states,
                    &mut slot.remote_queue,
                    catalog,
                    object,
                    &mut report.restructures_seen,
                )
                .and_then(|state| {
                    // Validate against the schema the action will actually
                    // run under — the state observed the newest epoch above.
                    validate_action(&action, state.data().schema())?;
                    state.set_action(action);
                    Ok(())
                });
                if let Err(e) = applied {
                    instruments.trace_errors.inc();
                    report
                        .errors
                        .push(format!("set_action on object {}: {e}", object.0));
                }
            }
            SessionEvent::RunTrace {
                object,
                trace,
                wire,
                enqueued,
            } => {
                // The whole trace runs under one telemetry trace id: every
                // lifecycle event it emits — touch received, cache hit/miss,
                // page fault, remote submit — carries (session, trace). A
                // wire-propagated context is adopted verbatim so the tree
                // keeps the ids the client stamped.
                let queue_wait_nanos = enqueued.elapsed().as_nanos() as u64;
                let trace_id = match wire {
                    Some(w) => telemetry.adopt_trace(session, w.trace),
                    None => telemetry.begin_trace(session),
                };
                telemetry.event(TraceEventKind::TraceStarted, object.0);
                let spans = telemetry.spans();
                let now = telemetry.now_nanos();
                // Wire traces already opened their root at frame decode
                // (ensure_root is idempotent); in-process traces open it
                // here, backdated to when the event was enqueued.
                spans.ensure_root(
                    session,
                    trace_id,
                    wire.map_or(0, |w| w.root_span),
                    now.saturating_sub(queue_wait_nanos),
                );
                spans.record_span(
                    session,
                    trace_id,
                    0,
                    "queue_wait",
                    now.saturating_sub(queue_wait_nanos),
                    queue_wait_nanos,
                    0,
                );
                let service_span =
                    spans.open_span(session, trace_id, 0, "service", now, trace.len() as u64);
                if service_span != 0 {
                    // Fan-out (morsel helpers) captures this context, so
                    // stolen-segment spans nest under the service span.
                    set_trace_ctx_span(session, trace_id, service_span);
                }
                let report = &mut slot.report;
                match SessionSlot::boundary_state(
                    &mut slot.states,
                    &mut slot.remote_queue,
                    catalog,
                    object,
                    &mut report.restructures_seen,
                ) {
                    Ok(state) => {
                        let started = Instant::now();
                        let epoch = state.epoch();
                        match Session::new(state, &config).run(&trace) {
                            Ok(outcome) => {
                                let sample = LatencySample {
                                    nanos: started.elapsed().as_nanos() as u64,
                                    touches: trace.len() as u64,
                                    max_touch_nanos: outcome.stats.max_touch_nanos,
                                };
                                let mean = sample.per_touch_nanos();
                                report.latency_hist.record(mean);
                                report.max_touch_nanos =
                                    report.max_touch_nanos.max(sample.max_touch_nanos.max(mean));
                                if record_raw {
                                    report.latencies.push(sample);
                                }
                                instruments.record_trace(&outcome.stats, mean);
                                report.epochs.push(epoch);
                                // Refinements of this trace are in flight:
                                // remember which outcome each ticket patches
                                // and keep serving — they land at later
                                // boundaries (or the snapshot/close barrier).
                                let trace_index = report.outcomes.len();
                                for pending in &outcome.pending {
                                    slot.outstanding
                                        .insert(pending.ticket, (trace_index, trace_id));
                                }
                                report.outcomes.push(TraceOutcome { object, outcome });
                            }
                            Err(e) => {
                                instruments.trace_errors.inc();
                                report
                                    .errors
                                    .push(format!("trace over object {}: {e}", object.0))
                            }
                        }
                    }
                    Err(e) => {
                        instruments.trace_errors.inc();
                        report
                            .errors
                            .push(format!("checkout of object {}: {e}", object.0))
                    }
                }
                let end = telemetry.now_nanos();
                spans.close_span(session, trace_id, service_span, end);
                telemetry.event(TraceEventKind::TraceFinished, object.0);
                // Tail/head-sample the finished tree into the retained ring.
                spans.trace_finish(session, trace_id, end);
                telemetry.end_trace();
            }
            SessionEvent::Snapshot { reply } => {
                // A barrier: the snapshot is fully refined.
                slot.drain_remote(true, &telemetry);
                let _ = reply.send(slot.report.clone());
            }
            SessionEvent::Close { reply } => {
                let mut slot = sessions.remove(&session).expect("slot exists");
                // Final barrier: the report handed back is fully refined and
                // digest-stable.
                slot.drain_remote(true, &telemetry);
                instruments.sessions_closed.inc();
                // The handle is consumed by close() (or gone, on the Drop
                // path), so nobody can block on this gate again: drop it from
                // the registry rather than retaining one entry per session
                // ever served.
                gates.remove(&session);
                live_sessions.fetch_sub(1, Ordering::Relaxed);
                let _ = reply.send(slot.report);
            }
        }
        gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::digest_outcomes;
    use dbtouch_core::operators::aggregate::AggregateKind;
    use dbtouch_gesture::synthesizer::GestureSynthesizer;
    use dbtouch_types::{KernelConfig, SizeCm};

    fn catalog_with_column(rows: i64) -> (Arc<SharedCatalog>, ObjectId) {
        let catalog = Arc::new(SharedCatalog::new(KernelConfig::default()));
        let id = catalog
            .load_column("col", (0..rows).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        (catalog, id)
    }

    #[test]
    fn open_serves_a_persistent_catalog_across_restarts() {
        let dir =
            std::env::temp_dir().join(format!("dbtouch-server-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || ServerConfig::with_workers(2).with_catalog_dir(&dir);

        // First service lifetime: create, load, serve, restructure.
        let first = ExplorationServer::serve(config()).unwrap();
        let id = first
            .catalog()
            .load_column("col", (0..50_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let view = first.catalog().data(id).unwrap().base_view().clone();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
        let session = first.open_session();
        session
            .set_action(
                id,
                TouchAction::Summary {
                    half_window: Some(25),
                    kind: AggregateKind::Avg,
                },
            )
            .unwrap();
        session.run_trace(id, trace.clone()).unwrap();
        let before = session.close().unwrap();
        assert!(before.errors.is_empty(), "{:?}", before.errors);
        let epoch = first.catalog().epoch();
        first.shutdown();

        // Second service lifetime: open resumes the persisted epoch and the
        // same trace produces the identical digest from paged storage.
        let second = ExplorationServer::serve(config()).unwrap();
        assert_eq!(second.catalog().epoch(), epoch);
        assert_eq!(
            second.catalog().catalog_dir().as_deref(),
            Some(dir.as_path())
        );
        let id = second.catalog().object_id("col").unwrap();
        let session = second.open_session();
        session
            .set_action(
                id,
                TouchAction::Summary {
                    half_window: Some(25),
                    kind: AggregateKind::Avg,
                },
            )
            .unwrap();
        session.run_trace(id, trace).unwrap();
        let after = session.close().unwrap();
        assert!(after.errors.is_empty(), "{:?}", after.errors);
        assert_eq!(after.result_digest(), before.result_digest());
        assert!(
            second.catalog().pager_stats().unwrap().faults > 0,
            "reopened service must stream pages"
        );
        second.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_session_round_trip() {
        let (catalog, id) = catalog_with_column(100_000);
        let view = catalog.data(id).unwrap().base_view().clone();
        let server = ExplorationServer::serve(
            ServerConfig::with_workers(2).with_catalog(Arc::clone(&catalog)),
        )
        .unwrap();
        let session = server.open_session();
        session
            .run_trace(id, GestureSynthesizer::new(60.0).slide_down(&view, 1.0))
            .unwrap();
        let report = session.close().unwrap();
        assert_eq!(report.traces_run(), 1);
        assert!(report.total_entries() > 0);
        assert!(report.errors.is_empty());
        // Raw samples are off by default; the histogram always records.
        assert!(report.latencies.is_empty());
        assert_eq!(report.latency_summary().count, 1);
        assert!(report.latency_summary().max_nanos > 0);
        server.shutdown();
    }

    #[test]
    fn sessions_are_isolated() {
        let (catalog, id) = catalog_with_column(50_000);
        let view = catalog.data(id).unwrap().base_view().clone();
        let server = ExplorationServer::serve(
            ServerConfig::with_workers(2).with_catalog(Arc::clone(&catalog)),
        )
        .unwrap();
        let scan = server.open_session();
        let agg = server.open_session();
        agg.set_action(id, TouchAction::Aggregate(AggregateKind::Avg))
            .unwrap();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
        scan.run_trace(id, trace.clone()).unwrap();
        agg.run_trace(id, trace).unwrap();
        let scan_report = scan.close().unwrap();
        let agg_report = agg.close().unwrap();
        assert!(scan_report.outcomes[0].outcome.final_aggregate.is_none());
        assert!(agg_report.outcomes[0].outcome.final_aggregate.is_some());
        server.shutdown();
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let (catalog, id) = catalog_with_column(1_000);
        let view = catalog.data(id).unwrap().base_view().clone();
        let server =
            ExplorationServer::serve(ServerConfig::with_workers(1).with_catalog(catalog)).unwrap();
        let session = server.open_session();
        // Unknown object: recorded, session continues.
        session
            .run_trace(
                ObjectId(99),
                GestureSynthesizer::new(60.0).slide_down(&view, 0.2),
            )
            .unwrap();
        // Invalid action for the schema on a valid object.
        session
            .set_action(
                id,
                TouchAction::GroupBy {
                    group_attribute: 0,
                    value_attribute: 9,
                    kind: AggregateKind::Sum,
                },
            )
            .unwrap();
        session
            .run_trace(id, GestureSynthesizer::new(60.0).slide_down(&view, 0.2))
            .unwrap();
        let report = session.close().unwrap();
        assert_eq!(report.errors.len(), 2, "errors: {:?}", report.errors);
        assert_eq!(report.traces_run(), 1); // the valid trace still ran
        server.shutdown();
    }

    #[test]
    fn snapshot_is_a_barrier() {
        let (catalog, id) = catalog_with_column(200_000);
        let view = catalog.data(id).unwrap().base_view().clone();
        let server =
            ExplorationServer::serve(ServerConfig::with_workers(1).with_catalog(catalog)).unwrap();
        let session = server.open_session();
        for _ in 0..5 {
            session
                .run_trace(id, GestureSynthesizer::new(60.0).slide_down(&view, 0.5))
                .unwrap();
        }
        let snapshot = session.snapshot().unwrap();
        assert_eq!(snapshot.traces_run(), 5);
        let report = session.close().unwrap();
        assert_eq!(report.traces_run(), 5);
        server.shutdown();
    }

    #[test]
    fn backpressure_bounds_the_queue() {
        let (catalog, id) = catalog_with_column(500_000);
        let view = catalog.data(id).unwrap().base_view().clone();
        let server = ExplorationServer::serve(ServerConfig {
            worker_threads: 1,
            session_queue_depth: 2,
            ..ServerConfig::default().with_catalog(catalog)
        })
        .unwrap();
        let session = server.open_session();
        // Many more submissions than the depth: finishes only if the worker
        // drains while we block, and every trace must be accounted for.
        for _ in 0..20 {
            session
                .run_trace(id, GestureSynthesizer::new(60.0).slide_down(&view, 0.3))
                .unwrap();
        }
        let report = session.close().unwrap();
        assert_eq!(report.traces_run(), 20);
        server.shutdown();
    }

    #[test]
    fn shutdown_with_live_handle_does_not_hang() {
        let (catalog, id) = catalog_with_column(10_000);
        let view = catalog.data(id).unwrap().base_view().clone();
        let server =
            ExplorationServer::serve(ServerConfig::with_workers(2).with_catalog(catalog)).unwrap();
        let session = server.open_session();
        session
            .run_trace(id, GestureSynthesizer::new(60.0).slide_down(&view, 0.2))
            .unwrap();
        // The handle is still alive (holds a Sender clone): shutdown must
        // still terminate the workers...
        server.shutdown();
        // ...and the orphaned handle must get errors, not block forever.
        let err = session.run_trace(id, GestureSynthesizer::new(60.0).slide_down(&view, 0.2));
        assert!(err.is_err());
        assert!(session.snapshot().is_err());
    }

    #[test]
    fn backpressured_producer_is_released_on_shutdown() {
        let (catalog, id) = catalog_with_column(400_000);
        let view = catalog.data(id).unwrap().base_view().clone();
        let server = ExplorationServer::serve(ServerConfig {
            worker_threads: 1,
            session_queue_depth: 1,
            ..ServerConfig::default().with_catalog(catalog)
        })
        .unwrap();
        let session = server.open_session();
        let producer = std::thread::spawn(move || {
            // Depth 1: this producer spends most of its time blocked in the
            // gate. Once the server shuts down it must get errors instead of
            // hanging; early submissions may succeed. The workload is sized
            // to take far longer than the sleep below, so the shutdown always
            // lands mid-stream.
            let mut errors = 0;
            for _ in 0..400 {
                if session
                    .run_trace(id, GestureSynthesizer::new(60.0).slide_down(&view, 2.0))
                    .is_err()
                {
                    errors += 1;
                }
            }
            drop(session);
            errors
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        server.shutdown();
        let errors = producer.join().expect("producer must terminate");
        assert!(errors > 0, "late submissions should error after shutdown");
    }

    #[test]
    fn sessions_go_to_the_least_loaded_worker() {
        let (catalog, _id) = catalog_with_column(1_000);
        let server =
            ExplorationServer::serve(ServerConfig::with_workers(2).with_catalog(catalog)).unwrap();
        assert_eq!(server.worker_loads(), vec![0, 0]);
        let s1 = server.open_session();
        let s2 = server.open_session();
        assert_eq!(server.worker_loads(), vec![1, 1], "ties rotate round-robin");
        // Free worker 0 (close() is synchronous: the worker has processed the
        // Close — and decremented its load — before it returns).
        s1.close().unwrap();
        assert_eq!(server.worker_loads().iter().sum::<usize>(), 1);
        // The next two sessions must rebalance to [2, 1]+[0, 0]… i.e. end
        // even at 2 total, not pile onto the round-robin cursor's pick.
        let _s3 = server.open_session();
        assert_eq!(server.worker_loads().iter().sum::<usize>(), 2);
        assert_eq!(
            server.worker_loads(),
            vec![1, 1],
            "new session must fill the idle worker, not follow round-robin"
        );
        drop(s2);
        server.shutdown();
    }

    #[test]
    fn skewed_closes_keep_steering_new_sessions_to_idle_workers() {
        let (catalog, _id) = catalog_with_column(1_000);
        let server =
            ExplorationServer::serve(ServerConfig::with_workers(3).with_catalog(catalog)).unwrap();
        // Eight long-lived sessions spread 3/3/2 by the tiebreak rotation.
        let sessions: Vec<_> = (0..8).map(|_| server.open_session()).collect();
        let loads = server.worker_loads();
        assert_eq!(loads.iter().sum::<usize>(), 8);
        assert!(loads.iter().all(|&l| l >= 2));
        for s in sessions {
            s.close().unwrap();
        }
        assert_eq!(server.worker_loads(), vec![0, 0, 0]);
        server.shutdown();
    }

    #[test]
    fn live_sessions_observe_restructures_at_gesture_boundaries() {
        let catalog = Arc::new(SharedCatalog::new(KernelConfig::default()));
        let table = dbtouch_storage::table::Table::from_columns(
            "t",
            vec![
                dbtouch_storage::column::Column::from_i64("id", (0..20_000).collect()),
                dbtouch_storage::column::Column::from_f64(
                    "v",
                    (0..20_000).map(|i| i as f64).collect(),
                ),
            ],
        )
        .unwrap();
        let tid = catalog.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        let view = catalog.data(tid).unwrap().base_view().clone();
        let server = ExplorationServer::serve(
            ServerConfig::with_workers(1).with_catalog(Arc::clone(&catalog)),
        )
        .unwrap();
        let session = server.open_session();
        session.set_action(tid, TouchAction::Tuple).unwrap();
        session
            .run_trace(tid, GestureSynthesizer::new(60.0).slide_down(&view, 0.3))
            .unwrap();
        // Barrier, then restructure: the next trace must observe it.
        let before = session.snapshot().unwrap();
        assert_eq!(before.restructures_seen, 0);
        catalog
            .drag_column_out(tid, "v", SizeCm::new(2.0, 10.0))
            .unwrap();
        session
            .run_trace(tid, GestureSynthesizer::new(60.0).slide_down(&view, 0.3))
            .unwrap();
        let report = session.close().unwrap();
        assert!(report.errors.is_empty(), "errors: {:?}", report.errors);
        assert_eq!(report.restructures_seen, 1);
        assert_eq!(report.epochs.len(), 2);
        assert!(
            report.epochs[1] > report.epochs[0],
            "epochs: {:?}",
            report.epochs
        );
        // First trace saw both columns, second only the remaining one.
        assert_eq!(
            report.outcomes[0].outcome.results.results()[0].values.len(),
            2
        );
        assert_eq!(
            report.outcomes[1].outcome.results.results()[0].values.len(),
            1
        );
        server.shutdown();
    }

    #[test]
    fn removed_objects_error_without_killing_the_session() {
        let catalog = Arc::new(SharedCatalog::new(KernelConfig::default()));
        let table = dbtouch_storage::table::Table::from_columns(
            "t",
            vec![
                dbtouch_storage::column::Column::from_i64("id", (0..5_000).collect()),
                dbtouch_storage::column::Column::from_f64(
                    "v",
                    (0..5_000).map(|i| i as f64).collect(),
                ),
            ],
        )
        .unwrap();
        let tid = catalog.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        let cid = catalog
            .drag_column_out(tid, "v", SizeCm::new(2.0, 10.0))
            .unwrap();
        let column_view = catalog.data(cid).unwrap().base_view().clone();
        let server = ExplorationServer::serve(
            ServerConfig::with_workers(1).with_catalog(Arc::clone(&catalog)),
        )
        .unwrap();
        let session = server.open_session();
        session
            .run_trace(
                cid,
                GestureSynthesizer::new(60.0).slide_down(&column_view, 0.2),
            )
            .unwrap();
        assert!(session.snapshot().unwrap().errors.is_empty());
        // Merge the column back: its object is removed from the catalog.
        catalog.drag_column_into(tid, cid).unwrap();
        session
            .run_trace(
                cid,
                GestureSynthesizer::new(60.0).slide_down(&column_view, 0.2),
            )
            .unwrap();
        // The session keeps serving other objects.
        let table_view = catalog.data(tid).unwrap().base_view().clone();
        session
            .run_trace(
                tid,
                GestureSynthesizer::new(60.0).slide_down(&table_view, 0.2),
            )
            .unwrap();
        let report = session.close().unwrap();
        assert_eq!(report.errors.len(), 1, "errors: {:?}", report.errors);
        assert_eq!(report.traces_run(), 2);
        server.shutdown();
    }

    #[test]
    fn served_remote_sessions_drain_at_barriers_and_match_all_local() {
        use dbtouch_core::kernel::Kernel;
        use dbtouch_types::RemoteSplitConfig;

        let split = RemoteSplitConfig::default()
            .with_local_min_level(11)
            .with_network(5_000, 10_000);
        let remote_catalog = Arc::new(SharedCatalog::new(
            KernelConfig::default()
                .with_sample_levels(12)
                .with_remote_split(Some(split)),
        ));
        let local_catalog = Arc::new(SharedCatalog::new(
            KernelConfig::default().with_sample_levels(12),
        ));
        let rid = remote_catalog
            .load_column("col", (0..200_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let lid = local_catalog
            .load_column("col", (0..200_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let view = local_catalog.data(lid).unwrap().base_view().clone();
        let action = TouchAction::Summary {
            half_window: Some(5),
            kind: AggregateKind::Avg,
        };
        // One slow (remote) trace, one fast (device-local) trace.
        let slow = GestureSynthesizer::new(60.0).slide_down(&view, 3.0);
        let fast = GestureSynthesizer::new(60.0).slide_down(&view, 0.6);

        let server = ExplorationServer::serve(
            ServerConfig::with_workers(1).with_catalog(Arc::clone(&remote_catalog)),
        )
        .unwrap();
        let session = server.open_session();
        session.set_action(rid, action.clone()).unwrap();
        session.run_trace(rid, slow.clone()).unwrap();
        session.run_trace(rid, fast.clone()).unwrap();
        // The snapshot barrier waits for in-flight refinements: the report it
        // returns is fully refined.
        let snapshot = session.snapshot().unwrap();
        assert!(snapshot.errors.is_empty(), "{:?}", snapshot.errors);
        assert_eq!(snapshot.pending_refinements(), 0);
        let progressive = snapshot.total_remote().progressive_requests;
        assert!(progressive > 20, "slow trace must go remote");
        assert_eq!(snapshot.total_refinements_applied(), progressive);
        assert_eq!(
            snapshot.refinement_latencies.len() as u64,
            progressive,
            "every applied refinement records its real latency"
        );
        assert!(snapshot.mean_refinement_latency_nanos() >= 5_000_000);
        assert_eq!(snapshot.total_refinements_dropped(), 0);
        let report = session.close().unwrap();
        server.shutdown();

        // Bit-identical to the all-local sequential replay.
        let mut kernel = Kernel::from_catalog(local_catalog);
        kernel.set_action(lid, action).unwrap();
        let outcomes = [
            TraceOutcome {
                object: lid,
                outcome: kernel.run_trace(lid, &slow).unwrap(),
            },
            TraceOutcome {
                object: lid,
                outcome: kernel.run_trace(lid, &fast).unwrap(),
            },
        ];
        // Digest object ids differ (rid vs lid) only if the ids differ; both
        // catalogs loaded one column, so both are object 0.
        assert_eq!(rid, lid);
        assert_eq!(report.result_digest(), digest_outcomes(outcomes.iter()));
    }

    #[test]
    fn remote_refinements_land_between_events_without_blocking() {
        use dbtouch_types::RemoteSplitConfig;

        // A fast link: refinements become due almost immediately, so the
        // non-blocking boundary drains (not the close barrier) apply most of
        // them while later traces are still being processed.
        let split = RemoteSplitConfig::default()
            .with_local_min_level(11)
            .with_network(100, 0);
        let catalog = Arc::new(SharedCatalog::new(
            KernelConfig::default()
                .with_sample_levels(12)
                .with_remote_split(Some(split)),
        ));
        let id = catalog
            .load_column("col", (0..200_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let view = catalog.data(id).unwrap().base_view().clone();
        let server = ExplorationServer::serve(
            ServerConfig::with_workers(1).with_catalog(Arc::clone(&catalog)),
        )
        .unwrap();
        let session = server.open_session();
        session
            .set_action(
                id,
                TouchAction::Summary {
                    half_window: Some(5),
                    kind: AggregateKind::Avg,
                },
            )
            .unwrap();
        for _ in 0..4 {
            session
                .run_trace(id, GestureSynthesizer::new(60.0).slide_down(&view, 2.8))
                .unwrap();
        }
        let report = session.close().unwrap();
        server.shutdown();
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.pending_refinements(), 0);
        let remote = report.total_remote();
        assert!(remote.progressive_requests > 80);
        assert_eq!(
            report.total_refinements_applied(),
            remote.progressive_requests
        );
        // The worker overlapped nearly all of the simulated wait with real
        // processing: it stalled (if at all) only at the final barrier.
        assert!(
            report.remote_overlap_ratio() > 0.5,
            "overlap ratio {} too low",
            report.remote_overlap_ratio()
        );
        assert_eq!(catalog.remote_executor().unwrap().stats().delivered, {
            let stats = catalog.remote_executor().unwrap().stats();
            stats.submitted
        });
    }

    #[test]
    fn metrics_snapshot_exposes_serving_counters_and_events() {
        let (catalog, id) = catalog_with_column(50_000);
        let view = catalog.data(id).unwrap().base_view().clone();
        let server = ExplorationServer::serve(
            ServerConfig::with_workers(2).with_catalog(Arc::clone(&catalog)),
        )
        .unwrap();
        let s1 = server.open_session();
        let s2 = server.open_session();
        s1.run_trace(id, GestureSynthesizer::new(60.0).slide_down(&view, 0.5))
            .unwrap();
        s1.snapshot().unwrap(); // barrier: the trace has completed

        let metrics = server.metrics_snapshot();
        assert_eq!(metrics.sessions_served(), 2);
        assert!(metrics.peak_live_sessions() >= 2);
        assert!(metrics.scalar("server.peak_worker_load").unwrap() >= 1);
        assert_eq!(metrics.traces_run(), 1);
        assert!(metrics.scalar("server.touches").unwrap() > 0);
        assert!(metrics.scalar("catalog.epoch").is_some());
        assert_eq!(metrics.worker_loads.len(), 2);
        let hist = metrics.histogram("server.touch_nanos").unwrap();
        assert_eq!(hist.count(), 1);

        // The trace's lifecycle is in the event window, stamped with the
        // session and a trace id.
        let started = metrics
            .events()
            .iter()
            .find(|e| e.kind == TraceEventKind::TraceStarted)
            .expect("trace_started event");
        assert_eq!(started.session, Some(s1.id()));
        assert!(started.trace.is_some());
        assert!(metrics
            .events()
            .iter()
            .any(|e| e.kind == TraceEventKind::TraceFinished));

        // Both exposition forms carry the server counters and worker loads.
        let json = metrics.to_json();
        assert!(json.get("worker_loads").is_some());
        assert!(json.get("metrics").unwrap().get("server.traces").is_some());
        let text = metrics.render_text();
        assert!(text.contains("server.traces 1"));
        assert!(text.contains("server.worker_load.0"));

        s1.close().unwrap();
        s2.close().unwrap();
        let after = server.metrics_snapshot();
        assert_eq!(after.scalar("server.sessions_closed"), Some(2));
        // The lifetime total survives the closes; the point-in-time loads
        // are back to zero.
        assert_eq!(after.sessions_served(), 2);
        assert_eq!(after.worker_loads, vec![0, 0]);
        server.shutdown();
    }

    #[test]
    fn morsel_scans_surface_metrics_stamp_traces_and_match_sequential() {
        // Large summary windows over a served catalog with a scan pool: every
        // window fans out over segment morsels, the pool's MetricSource shows
        // up in metrics_snapshot(), helper threads stamp their SegmentScanned
        // events with the issuing session's trace context, and the report
        // digest is bit-identical to the scan_parallelism = 1 run.
        let knobs = |parallelism: usize| KernelConfig {
            touch_budget_micros: 1_000_000,
            ..KernelConfig::default()
                .with_scan_parallelism(parallelism)
                .with_segment_rows(4096)
                .with_adaptive_sampling(false)
                .with_telemetry_hot_sample(1)
        };
        let action = TouchAction::Summary {
            half_window: Some(90_000),
            kind: AggregateKind::Avg,
        };
        let run = |parallelism: usize| {
            let catalog = Arc::new(SharedCatalog::new(knobs(parallelism)));
            let id = catalog
                .load_column("col", (0..200_000).collect(), SizeCm::new(2.0, 10.0))
                .unwrap();
            let view = catalog.data(id).unwrap().base_view().clone();
            let server = ExplorationServer::serve(
                ServerConfig::with_workers(2).with_catalog(Arc::clone(&catalog)),
            )
            .unwrap();
            let session = server.open_session();
            let session_id = session.id();
            session.set_action(id, action.clone()).unwrap();
            session
                .run_trace(id, GestureSynthesizer::new(60.0).slide_down(&view, 1.0))
                .unwrap();
            let report = session.close().unwrap();
            assert!(report.errors.is_empty(), "{:?}", report.errors);
            let metrics = server.metrics_snapshot();
            server.shutdown();
            (report, metrics, session_id)
        };

        let (sequential, no_pool_metrics, _) = run(1);
        let (parallel, metrics, session_id) = run(4);

        // scan_parallelism = 1 runs without a pool: no morsel source at all.
        assert_eq!(no_pool_metrics.scalar("morsel.segments_scanned"), None);
        // Both runs decompose identically and prune interior block-aligned
        // segments through the zone-map index.
        for report in [&sequential, &parallel] {
            let stats = &report.outcomes[0].outcome.stats;
            assert!(stats.segments_scanned > 0, "windows must decompose");
            assert!(stats.pruned_segments > 0, "aligned segments must prune");
            assert!(stats.pruned_segments <= stats.segments_scanned);
        }
        let accounting = |report: &SessionReport| {
            let s = &report.outcomes[0].outcome.stats;
            (
                s.touches,
                s.rows_touched,
                s.bytes_touched,
                s.segments_scanned,
                s.pruned_segments,
            )
        };
        assert_eq!(
            accounting(&sequential),
            accounting(&parallel),
            "per-session accounting is parallelism-invariant"
        );

        // The pool's MetricSource is live in the snapshot.
        let scanned = metrics.scalar("morsel.segments_scanned").unwrap();
        let stats = &parallel.outcomes[0].outcome.stats;
        assert_eq!(scanned, stats.segments_scanned);
        assert_eq!(
            metrics.scalar("morsel.pruned_segments"),
            Some(stats.pruned_segments)
        );
        assert!(
            metrics.scalar("morsel.steals").unwrap() > 0,
            "helpers must claim some morsels"
        );
        assert_eq!(
            metrics.scalar("morsel.queue_depth"),
            Some(0),
            "all batches drained at the barrier"
        );

        // Helper threads re-stamp the submitting session's trace context
        // (mirroring async refinements), so every per-segment event in the
        // window — stolen or not — carries the session and a trace id.
        let segment_events: Vec<_> = metrics
            .events()
            .iter()
            .filter(|e| e.kind == TraceEventKind::SegmentScanned)
            .collect();
        assert!(!segment_events.is_empty(), "hot_sample=1 records segments");
        for event in segment_events {
            assert_eq!(event.session, Some(session_id));
            assert!(event.trace.is_some());
        }

        // The whole report — results, aggregates, accounting — is
        // bit-identical to the sequential run.
        assert_eq!(sequential.result_digest(), parallel.result_digest());
    }

    #[test]
    fn raw_latency_samples_are_opt_in() {
        let (catalog, id) = catalog_with_column(20_000);
        let view = catalog.data(id).unwrap().base_view().clone();
        let server = ExplorationServer::serve(
            ServerConfig::with_workers(1)
                .with_raw_latency(true)
                .with_catalog(Arc::clone(&catalog)),
        )
        .unwrap();
        let session = server.open_session();
        session
            .run_trace(id, GestureSynthesizer::new(60.0).slide_down(&view, 0.3))
            .unwrap();
        let report = session.close().unwrap();
        server.shutdown();
        assert_eq!(report.latencies.len(), 1, "raw samples retained on opt-in");
        assert_eq!(report.latency_hist.count(), 1, "histogram always records");
        // With raw samples present the summary is the exact one.
        let summary = report.latency_summary();
        assert_eq!(summary.count, 1);
        assert_eq!(
            summary.p50_nanos,
            report.latencies[0].per_touch_nanos(),
            "raw path reports exact percentiles"
        );
    }

    #[test]
    fn dropped_handle_tears_session_down() {
        let (catalog, id) = catalog_with_column(10_000);
        let view = catalog.data(id).unwrap().base_view().clone();
        let server =
            ExplorationServer::serve(ServerConfig::with_workers(1).with_catalog(catalog)).unwrap();
        {
            let session = server.open_session();
            session
                .run_trace(id, GestureSynthesizer::new(60.0).slide_down(&view, 0.2))
                .unwrap();
            // dropped without close()
        }
        // A later session on the same worker still works.
        let session = server.open_session();
        session
            .run_trace(id, GestureSynthesizer::new(60.0).slide_down(&view, 0.2))
            .unwrap();
        assert_eq!(session.close().unwrap().traces_run(), 1);
        server.shutdown();
    }
}
