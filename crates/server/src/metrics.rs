//! Server-level telemetry: wait-free serving counters and the typed
//! metrics snapshot [`ExplorationServer::metrics_snapshot`] returns.
//!
//! Workers fold a trace's [`SessionStats`] into the shared
//! [`ServerInstruments`] once per completed trace — not per touch — so the
//! per-touch hot path stays instrumentation-free and the counters stay
//! wait-free (striped relaxed atomics, aggregated only on scrape).
//!
//! [`ExplorationServer::metrics_snapshot`]: crate::manager::ExplorationServer::metrics_snapshot
//! [`SessionStats`]: dbtouch_core::session::SessionStats

use dbtouch_core::session::SessionStats;
use dbtouch_obs::{
    Counter, HistogramSnapshot, LogHistogram, MetricSource, MetricValue, MetricsSnapshot,
    PeakGauge, SpanTree, TraceEvent,
};
use dbtouch_types::json::Json;

/// Lifetime serving counters of one [`ExplorationServer`], registered with
/// the catalog's telemetry hub under the `server.` prefix.
///
/// Everything here is wait-free to record: counters stripe per thread,
/// peaks are a single `fetch_max`, and the latency histogram is a
/// fixed-size array of relaxed atomics.
///
/// [`ExplorationServer`]: crate::manager::ExplorationServer
#[derive(Debug, Default)]
pub(crate) struct ServerInstruments {
    /// Sessions ever opened (satellite of `worker_loads()`: the lifetime
    /// total the point-in-time loads cannot show).
    pub sessions_opened: Counter,
    /// Sessions closed by their worker.
    pub sessions_closed: Counter,
    /// Most live sessions pinned to any single worker at once.
    pub peak_worker_load: PeakGauge,
    /// Most live sessions across all workers at once.
    pub peak_live_sessions: PeakGauge,
    /// Gesture traces completed successfully.
    pub traces: Counter,
    /// Events whose processing errored (recorded in the session report).
    pub trace_errors: Counter,
    /// Touch samples consumed across all completed traces.
    pub touches: Counter,
    /// Result entries returned across all completed traces.
    pub entries: Counter,
    /// Rows read from storage across all completed traces.
    pub rows_touched: Counter,
    /// Per-trace mean per-touch nanoseconds, log-scale buckets.
    pub touch_nanos: LogHistogram,
    /// Worst single-touch nanoseconds observed in any trace.
    pub worst_touch_nanos: PeakGauge,
}

impl ServerInstruments {
    /// Fold one completed trace's statistics in (called once per trace).
    pub fn record_trace(&self, stats: &SessionStats, per_touch_mean_nanos: u64) {
        self.traces.inc();
        self.touches.add(stats.touches);
        self.entries.add(stats.entries_returned);
        self.rows_touched.add(stats.rows_touched);
        self.touch_nanos.record(per_touch_mean_nanos);
        self.worst_touch_nanos
            .observe(stats.max_touch_nanos.max(per_touch_mean_nanos));
    }
}

impl MetricSource for ServerInstruments {
    fn source_name(&self) -> &'static str {
        "server"
    }

    fn collect(&self) -> Vec<(&'static str, MetricValue)> {
        vec![
            (
                "sessions_opened",
                MetricValue::Counter(self.sessions_opened.get()),
            ),
            (
                "sessions_closed",
                MetricValue::Counter(self.sessions_closed.get()),
            ),
            (
                "peak_worker_load",
                MetricValue::Gauge(self.peak_worker_load.get()),
            ),
            (
                "peak_live_sessions",
                MetricValue::Gauge(self.peak_live_sessions.get()),
            ),
            ("traces", MetricValue::Counter(self.traces.get())),
            (
                "trace_errors",
                MetricValue::Counter(self.trace_errors.get()),
            ),
            ("touches", MetricValue::Counter(self.touches.get())),
            ("entries", MetricValue::Counter(self.entries.get())),
            (
                "rows_touched",
                MetricValue::Counter(self.rows_touched.get()),
            ),
            (
                "touch_nanos",
                MetricValue::Histogram(Box::new(self.touch_nanos.snapshot())),
            ),
            (
                "worst_touch_nanos",
                MetricValue::Gauge(self.worst_touch_nanos.get()),
            ),
        ]
    }
}

/// A typed point-in-time view of everything the server and the layers under
/// it expose: the hub's metric snapshot (server counters, catalog gauges,
/// pager/cache/remote sources, recent trace events) plus the per-worker
/// loads only the server itself knows.
///
/// Readable mid-run — taking it never blocks serving (sources are relaxed
/// atomics; the event ring takes short per-shard locks).
#[derive(Debug, Clone)]
pub struct ServerMetricsSnapshot {
    /// Live sessions pinned to each worker at snapshot time, worker order.
    pub worker_loads: Vec<usize>,
    /// The telemetry hub's snapshot: all registered sources and the recent
    /// trace-event window.
    pub inner: MetricsSnapshot,
}

impl ServerMetricsSnapshot {
    /// A scalar metric by full key (e.g. `"server.traces"`,
    /// `"pager.faults"`); `None` for unknown keys and histograms.
    pub fn scalar(&self, key: &str) -> Option<u64> {
        self.inner.scalar(key)
    }

    /// A histogram metric by full key (e.g. `"server.touch_nanos"`).
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        match self.inner.get(key)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Sessions ever opened on this server.
    pub fn sessions_served(&self) -> u64 {
        self.scalar("server.sessions_opened").unwrap_or(0)
    }

    /// Most live sessions observed at once across all workers.
    pub fn peak_live_sessions(&self) -> u64 {
        self.scalar("server.peak_live_sessions").unwrap_or(0)
    }

    /// Gesture traces completed.
    pub fn traces_run(&self) -> u64 {
        self.scalar("server.traces").unwrap_or(0)
    }

    /// The recent gesture-lifecycle trace events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.inner.events
    }

    /// The retained (tail- and head-sampled) span trees, oldest first.
    pub fn traces(&self) -> &[SpanTree] {
        &self.inner.traces
    }

    /// JSON exposition: the hub snapshot plus the server's worker loads.
    pub fn to_json(&self) -> Json {
        let Json::Object(mut fields) = self.inner.to_json() else {
            unreachable!("MetricsSnapshot::to_json returns an object");
        };
        fields.insert(
            "worker_loads".into(),
            Json::Array(
                self.worker_loads
                    .iter()
                    .map(|&l| Json::Number(l as f64))
                    .collect(),
            ),
        );
        Json::Object(fields)
    }

    /// Text exposition: one `key value` line per metric, worker loads last.
    pub fn render_text(&self) -> String {
        let mut out = self.inner.render_text();
        for (worker, load) in self.worker_loads.iter().enumerate() {
            out.push_str(&format!("server.worker_load.{worker} {load}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_fold_and_expose() {
        let instruments = ServerInstruments::default();
        let stats = SessionStats {
            touches: 40,
            entries_returned: 12,
            rows_touched: 300,
            max_touch_nanos: 9_000,
            ..Default::default()
        };
        instruments.record_trace(&stats, 1_500);
        instruments.sessions_opened.inc();
        instruments.peak_live_sessions.observe(3);

        let metrics = instruments.collect();
        let get = |name: &str| {
            metrics
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(get("traces"), MetricValue::Counter(1));
        assert_eq!(get("touches"), MetricValue::Counter(40));
        assert_eq!(get("worst_touch_nanos"), MetricValue::Gauge(9_000));
        assert_eq!(get("peak_live_sessions"), MetricValue::Gauge(3));
        match get("touch_nanos") {
            MetricValue::Histogram(h) => assert_eq!(h.count(), 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
