//! The transport-agnostic client surface.
//!
//! Workload drivers and benches talk to an exploration service through two
//! small traits — [`ExplorationClient`] (open sessions, scrape metrics) and
//! [`ClientSession`] (set actions, run traces, snapshot, close) — so the
//! same driver runs unchanged against:
//!
//! * the in-process [`ExplorationServer`] (this crate implements the traits
//!   directly over [`SessionHandle`]), or
//! * a TCP connection to a remote server (`dbtouch-net`'s `TcpClient`
//!   implements them over the wire protocol).
//!
//! The transport is picked at a single call site; everything downstream is
//! generic. Because `SessionReport`s digest deterministically
//! ([`SessionReport::result_digest`]), a driver can prove the two transports
//! produce bit-identical results.
//!
//! [`ExplorationServer`]: crate::manager::ExplorationServer
//! [`SessionHandle`]: crate::manager::SessionHandle
//! [`SessionReport::result_digest`]: crate::report::SessionReport::result_digest

use crate::manager::{ExplorationServer, SessionHandle};
use crate::report::{SessionId, SessionReport};
use dbtouch_core::kernel::{ObjectId, TouchAction};
use dbtouch_gesture::trace::GestureTrace;
use dbtouch_types::json::Json;
use dbtouch_types::Result;

/// One exploration session, over any transport.
///
/// Methods mirror [`SessionHandle`]: `run_trace` is asynchronous with
/// backpressure (a remote transport surfaces the same backpressure as a
/// delayed acknowledgement), `snapshot` and `close` are barriers returning a
/// fully-drained [`SessionReport`].
///
/// Methods take `&mut self` so connection-oriented implementations can own a
/// socket without interior mutability; the in-process handle simply ignores
/// the exclusivity.
pub trait ClientSession: Send {
    /// The server-assigned session id.
    fn id(&self) -> SessionId;

    /// Choose the touch action subsequent traces over `object` run.
    fn set_action(&mut self, object: ObjectId, action: TouchAction) -> Result<()>;

    /// Submit a gesture trace (backpressured, order-preserving).
    fn run_trace(&mut self, object: ObjectId, trace: GestureTrace) -> Result<()>;

    /// Barrier: wait for everything submitted so far, return a copy of the
    /// session's report.
    fn snapshot(&mut self) -> Result<SessionReport>;

    /// Barrier: tear the session down, return its final report.
    fn close(self) -> Result<SessionReport>
    where
        Self: Sized;
}

/// A connection to an exploration service, over any transport.
pub trait ExplorationClient {
    /// The session type this transport hands out.
    type Session: ClientSession + 'static;

    /// Open a new exploration session. A remote transport may refuse with
    /// [`DbTouchError::Overloaded`] when the server sheds load.
    ///
    /// [`DbTouchError::Overloaded`]: dbtouch_types::DbTouchError::Overloaded
    fn open_session(&self) -> Result<Self::Session>;

    /// The service's live metrics snapshot in JSON exposition form — the
    /// transport-agnostic rendering of
    /// [`ExplorationServer::metrics_snapshot`].
    fn metrics_json(&self) -> Result<Json>;
}

impl ClientSession for SessionHandle {
    fn id(&self) -> SessionId {
        SessionHandle::id(self)
    }

    fn set_action(&mut self, object: ObjectId, action: TouchAction) -> Result<()> {
        SessionHandle::set_action(self, object, action)
    }

    fn run_trace(&mut self, object: ObjectId, trace: GestureTrace) -> Result<()> {
        SessionHandle::run_trace(self, object, trace)
    }

    fn snapshot(&mut self) -> Result<SessionReport> {
        SessionHandle::snapshot(self)
    }

    fn close(self) -> Result<SessionReport> {
        SessionHandle::close(self)
    }
}

impl ExplorationClient for ExplorationServer {
    type Session = SessionHandle;

    fn open_session(&self) -> Result<SessionHandle> {
        Ok(ExplorationServer::open_session(self))
    }

    fn metrics_json(&self) -> Result<Json> {
        Ok(self.metrics_snapshot().to_json())
    }
}

// Deliberately NO blanket `impl ExplorationClient for Arc<C>`: it would
// shadow `Arc<ExplorationServer>`'s deref to the inherent (infallible)
// `open_session`, silently changing every existing caller's return type.
// Shared-server drivers take `&C` and deref the Arc at the call site.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use dbtouch_core::catalog::SharedCatalog;
    use dbtouch_gesture::synthesizer::GestureSynthesizer;
    use dbtouch_types::{KernelConfig, SizeCm};
    use std::sync::Arc;

    /// A driver written once against the traits, independent of transport.
    fn drive<C: ExplorationClient>(client: &C, object: ObjectId) -> SessionReport {
        let mut session = client.open_session().unwrap();
        session.set_action(object, TouchAction::Scan).unwrap();
        session.snapshot().unwrap();
        session.close().unwrap()
    }

    #[test]
    fn in_process_server_implements_the_client_traits() {
        let catalog = Arc::new(SharedCatalog::new(KernelConfig::default()));
        let id = catalog
            .load_column("col", (0..10_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let view = catalog.data(id).unwrap().base_view().clone();
        let server =
            ExplorationServer::serve(ServerConfig::with_workers(1).with_catalog(catalog)).unwrap();

        let mut session = ExplorationClient::open_session(&server).unwrap();
        ClientSession::set_action(&mut session, id, TouchAction::Scan).unwrap();
        ClientSession::run_trace(
            &mut session,
            id,
            GestureSynthesizer::new(60.0).slide_down(&view, 0.3),
        )
        .unwrap();
        let report = ClientSession::close(session).unwrap();
        assert_eq!(report.traces_run(), 1);
        assert!(report.errors.is_empty());

        // The generic driver compiles and runs against the server directly,
        // and through an `Arc` by dereferencing at the call site.
        let report = drive(&server, id);
        assert!(report.errors.is_empty());
        let shared = Arc::new(server);
        let report = drive(&*shared, id);
        assert!(report.errors.is_empty());

        let json = shared.metrics_json().unwrap();
        assert!(json.get("metrics").is_some());
        assert!(json.get("worker_loads").is_some());
    }
}
