//! Session reports: what a served exploration session produced.

use crate::latency::{LatencySample, LatencySummary};
use dbtouch_core::kernel::ObjectId;
use dbtouch_core::remote::RemoteStats;
use dbtouch_core::session::SessionOutcome;
use dbtouch_obs::HistogramSnapshot;

/// Identifier of a served session.
pub type SessionId = u64;

/// The outcome of one gesture trace run inside a served session.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOutcome {
    /// The object the trace explored.
    pub object: ObjectId,
    /// The per-touch results and statistics the session produced.
    pub outcome: SessionOutcome,
}

/// Everything a session produced: trace outcomes in submission order, wall
/// clock latency samples, the catalog epochs the session observed, and any
/// per-event errors (a bad trace or unknown object records an error instead
/// of killing the session).
#[derive(Debug, Clone, Default)]
pub struct SessionReport {
    /// The session this report describes.
    pub session_id: SessionId,
    /// One entry per completed `run_trace`, in submission order.
    pub outcomes: Vec<TraceOutcome>,
    /// Raw wall-clock samples, one per completed `run_trace` — populated
    /// only when [`ServerConfig::record_raw_latency`] is on. Live serving
    /// keeps per-touch latency in the fixed-memory
    /// [`latency_hist`](Self::latency_hist) instead, so a long-lived
    /// session's report does not grow with every trace.
    ///
    /// [`ServerConfig::record_raw_latency`]: crate::config::ServerConfig::record_raw_latency
    pub latencies: Vec<LatencySample>,
    /// Log-scale histogram of per-trace mean per-touch nanoseconds — always
    /// populated, one recorded value per completed trace. Percentiles read
    /// from it are upper bounds within 2x (log2 buckets).
    pub latency_hist: HistogramSnapshot,
    /// Worst single-touch processing time observed in any trace,
    /// nanoseconds (the paper's "maximum possible wait time for a single
    /// touch"). Tracked exactly alongside the histogram.
    pub max_touch_nanos: u64,
    /// The catalog epoch each completed trace ran against, parallel to
    /// `outcomes`. A trace observes the newest epoch at its gesture boundary
    /// and keeps it for the whole trace, so within a session this sequence is
    /// non-decreasing. Excluded from [`result_digest`](Self::result_digest):
    /// epochs depend on restructure timing, results must not.
    pub epochs: Vec<u64>,
    /// How many times a gesture-boundary refresh observed a restructure of an
    /// object this session explores (its state was rebuilt against new data).
    pub restructures_seen: u64,
    /// Real (wall-clock) latency of each remote refinement applied to this
    /// session, submit → applied, in nanoseconds and application order.
    /// Excluded from [`result_digest`](Self::result_digest): latencies vary
    /// run to run, results must not.
    pub refinement_latencies: Vec<u64>,
    /// Wall-clock nanoseconds the worker stalled at this session's drain
    /// barriers (snapshot/close) waiting for in-flight refinements. The
    /// smaller this is relative to the simulated remote wait, the better the
    /// overlap — see [`remote_overlap_ratio`](Self::remote_overlap_ratio).
    pub refinement_blocked_nanos: u64,
    /// Errors encountered while processing events, in order.
    pub errors: Vec<String>,
}

impl SessionReport {
    /// Number of traces that completed.
    pub fn traces_run(&self) -> usize {
        self.outcomes.len()
    }

    /// The newest catalog epoch this session observed (0 before any trace).
    pub fn last_epoch(&self) -> u64 {
        self.epochs.last().copied().unwrap_or(0)
    }

    /// Total touch samples consumed across all traces.
    pub fn total_touches(&self) -> u64 {
        self.outcomes.iter().map(|t| t.outcome.stats.touches).sum()
    }

    /// Total result entries returned across all traces.
    pub fn total_entries(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|t| t.outcome.stats.entries_returned)
            .sum()
    }

    /// Total rows read from storage across all traces.
    pub fn total_rows_touched(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|t| t.outcome.stats.rows_touched)
            .sum()
    }

    /// Summary windows this session answered from the shared cross-session
    /// result cache.
    pub fn total_shared_cache_hits(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|t| t.outcome.stats.shared_cache_hits)
            .sum()
    }

    /// Summary windows this session had to compute from storage.
    pub fn total_shared_cache_misses(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|t| t.outcome.stats.shared_cache_misses)
            .sum()
    }

    /// Window aggregates this session inserted into the shared cache.
    pub fn total_shared_cache_inserts(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|t| t.outcome.stats.shared_cache_inserts)
            .sum()
    }

    /// Shared-cache hit rate of this session in `[0, 1]` (0 when the session
    /// never consulted it).
    pub fn shared_cache_hit_rate(&self) -> f64 {
        let hits = self.total_shared_cache_hits();
        let total = hits + self.total_shared_cache_misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Per-touch latency summary of this session: exact when raw samples
    /// were retained ([`ServerConfig::record_raw_latency`]), histogram-backed
    /// (percentiles within 2x) otherwise.
    ///
    /// [`ServerConfig::record_raw_latency`]: crate::config::ServerConfig::record_raw_latency
    pub fn latency_summary(&self) -> LatencySummary {
        if self.latencies.is_empty() {
            LatencySummary::from_histogram(&self.latency_hist, self.max_touch_nanos)
        } else {
            LatencySummary::from_samples(&self.latencies)
        }
    }

    /// Latency summary across several sessions' reports, merged from their
    /// fixed-memory histograms (no per-sample copying).
    pub fn merged_latency_summary<'a>(
        reports: impl IntoIterator<Item = &'a SessionReport>,
    ) -> LatencySummary {
        let mut hist = HistogramSnapshot::default();
        let mut worst = 0u64;
        for report in reports {
            hist.merge(&report.latency_hist);
            worst = worst.max(report.max_touch_nanos);
        }
        LatencySummary::from_histogram(&hist, worst)
    }

    /// Device/cloud traffic accumulated across all traces (saturating).
    pub fn total_remote(&self) -> RemoteStats {
        let mut total = RemoteStats::default();
        for t in &self.outcomes {
            total.absorb(&t.outcome.stats.remote);
        }
        total
    }

    /// Refinements applied to this session's outcomes.
    pub fn total_refinements_applied(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|t| t.outcome.stats.remote_refinements_applied)
            .sum()
    }

    /// Refinements dropped because their object was rebuilt first.
    pub fn total_refinements_dropped(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|t| t.outcome.stats.remote_refinements_dropped)
            .sum()
    }

    /// Refinements still in flight (0 after a close or snapshot barrier).
    pub fn pending_refinements(&self) -> usize {
        self.outcomes.iter().map(|t| t.outcome.pending.len()).sum()
    }

    /// Mean real refinement latency in nanoseconds (0 when none landed).
    pub fn mean_refinement_latency_nanos(&self) -> u64 {
        let n = self.refinement_latencies.len() as u64;
        self.refinement_latencies
            .iter()
            .sum::<u64>()
            .checked_div(n)
            .unwrap_or(0)
    }

    /// How much of the simulated remote wait was hidden behind useful work,
    /// in `[0, 1]`: `1 -` (time actually stalled — inline blocking fetches
    /// plus drain barriers) `/` (total simulated remote wait). A session with
    /// no remote traffic reports 1.0 (nothing to hide); a blocking-mode
    /// session reports ~0.0 (every simulated microsecond stalled the
    /// worker).
    pub fn remote_overlap_ratio(&self) -> f64 {
        let waited = self.total_remote().remote_wait_micros;
        if waited == 0 {
            return 1.0;
        }
        let inline_blocked: u64 = self
            .outcomes
            .iter()
            .map(|t| t.outcome.stats.remote_blocked_micros)
            .fold(0, u64::saturating_add);
        let blocked = inline_blocked.saturating_add(self.refinement_blocked_nanos / 1_000);
        (1.0 - blocked as f64 / waited as f64).clamp(0.0, 1.0)
    }

    /// Order-sensitive digest of the *deterministic* part of the outcomes
    /// (results, rows, aggregates — not wall-clock timings). Two runs of the
    /// same traces against the same catalog produce the same digest, whether
    /// they ran sequentially in a [`dbtouch_core::kernel::Kernel`] or
    /// concurrently through the server.
    pub fn result_digest(&self) -> u64 {
        digest_outcomes(self.outcomes.iter())
    }
}

/// FNV-1a digest over the deterministic fields of trace outcomes. Wall-clock
/// statistics (`compute_nanos`, `max_touch_nanos`) are excluded: they vary
/// run to run; everything the user *sees* is included.
pub fn digest_outcomes<'a>(outcomes: impl Iterator<Item = &'a TraceOutcome>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    for t in outcomes {
        mix(&t.object.0.to_le_bytes());
        let s = &t.outcome.stats;
        for v in [
            s.touches,
            s.gesture_events,
            s.entries_returned,
            s.rows_touched,
            s.bytes_touched,
            s.duplicate_touches,
            s.index_skips,
        ] {
            mix(&v.to_le_bytes());
        }
        for r in t.outcome.results.results() {
            mix(&r.row.0.to_le_bytes());
            mix(format!("{:?}", r.values).as_bytes());
        }
        if let Some(a) = t.outcome.final_aggregate {
            mix(&a.to_bits().to_le_bytes());
        }
        for (group, value) in &t.outcome.final_groups {
            mix(format!("{group:?}").as_bytes());
            mix(&value.to_bits().to_le_bytes());
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive_and_stable() {
        let a = TraceOutcome {
            object: ObjectId(0),
            outcome: SessionOutcome::default(),
        };
        let mut b = TraceOutcome {
            object: ObjectId(1),
            outcome: SessionOutcome::default(),
        };
        b.outcome.stats.entries_returned = 3;
        let d1 = digest_outcomes([a.clone(), b.clone()].iter());
        let d2 = digest_outcomes([a.clone(), b.clone()].iter());
        let d3 = digest_outcomes([b, a].iter());
        assert_eq!(d1, d2);
        assert_ne!(d1, d3);
    }

    #[test]
    fn report_totals_sum_over_outcomes() {
        let mut report = SessionReport::default();
        for entries in [2u64, 5] {
            let mut outcome = SessionOutcome::default();
            outcome.stats.entries_returned = entries;
            outcome.stats.touches = entries * 10;
            outcome.stats.rows_touched = entries * 3;
            outcome.stats.shared_cache_hits = entries;
            outcome.stats.shared_cache_misses = 1;
            outcome.stats.shared_cache_inserts = 1;
            report.outcomes.push(TraceOutcome {
                object: ObjectId(0),
                outcome,
            });
        }
        assert_eq!(report.traces_run(), 2);
        assert_eq!(report.total_entries(), 7);
        assert_eq!(report.total_touches(), 70);
        assert_eq!(report.total_rows_touched(), 21);
        assert_eq!(report.total_shared_cache_hits(), 7);
        assert_eq!(report.total_shared_cache_misses(), 2);
        assert_eq!(report.total_shared_cache_inserts(), 2);
        assert!((report.shared_cache_hit_rate() - 7.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_has_zero_hit_rate() {
        let report = SessionReport::default();
        assert_eq!(report.shared_cache_hit_rate(), 0.0);
        assert_eq!(report.total_shared_cache_hits(), 0);
        assert_eq!(report.last_epoch(), 0);
        assert_eq!(report.restructures_seen, 0);
    }

    #[test]
    fn epochs_do_not_perturb_the_digest() {
        let outcome = TraceOutcome {
            object: ObjectId(0),
            outcome: SessionOutcome::default(),
        };
        let mut a = SessionReport::default();
        a.outcomes.push(outcome.clone());
        a.epochs.push(3);
        let mut b = SessionReport::default();
        b.outcomes.push(outcome);
        b.epochs.push(9);
        b.restructures_seen = 2;
        assert_eq!(a.result_digest(), b.result_digest());
        assert_eq!(a.last_epoch(), 3);
        assert_eq!(b.last_epoch(), 9);
    }
}
