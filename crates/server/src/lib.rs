//! # dbtouch-server
//!
//! A concurrent multi-session exploration service over a shared dbTouch
//! catalog.
//!
//! dbTouch (CIDR 2013) frames data exploration as continuous gesture
//! *sessions*. The kernel in `dbtouch-core` serves one explorer; this crate
//! turns the reproduction into the skeleton of a serving system: many
//! simultaneous explorers, each running independent gesture sessions against
//! one immutable, shared data catalog.
//!
//! The design follows the standard idiom of concurrent columnar engines:
//! loaded data is immutable and shared (`Arc<ObjectData>` inside
//! [`dbtouch_core::catalog::SharedCatalog`]); everything mutable — view
//! geometry, touch action, region cache, prefetcher, result stream — is
//! per-session state checked out per explorer. Because sessions share nothing
//! mutable, per-touch processing takes no locks and concurrent results are
//! bit-identical to a sequential run of the same traces. The one shared
//! mutable structure is the optional cross-session result cache
//! ([`dbtouch_storage::shared_cache::SharedResultCache`]), which is
//! result-transparent: a hit returns the exact tuple a recomputation would,
//! so the bit-identical guarantee holds with it on or off.
//!
//! The catalog itself is epoch-versioned
//! ([`dbtouch_core::catalog::CatalogSnapshot`]): checkouts are wait-free and
//! restructures publish new snapshots by compare-and-swap. Workers treat
//! every submitted event as a gesture boundary — the session's state observes
//! the newest epoch right before a trace runs, then keeps that one snapshot
//! for the whole trace, so live restructures are atomic from every session's
//! point of view.
//!
//! * [`ExplorationServer`] — owns N worker threads; sessions are pinned at
//!   creation to the least-loaded worker (round-robin tiebreak); each worker
//!   multiplexes its sessions' event queues.
//! * [`SessionHandle`] — submit gesture traces with backpressure (bounded
//!   per-session in-flight events), change actions, snapshot, close.
//! * [`SessionReport`] — trace outcomes in submission order, the catalog
//!   epoch each trace ran against, restructures observed, error log, and
//!   wall-clock [`LatencySample`]s for throughput/tail-latency reporting.

pub mod client;
pub mod config;
pub mod latency;
pub mod manager;
pub mod metrics;
pub mod report;

pub use client::{ClientSession, ExplorationClient};
pub use config::{ServerConfig, ShedConfig};
pub use latency::{LatencySample, LatencySummary};
pub use manager::{ExplorationServer, SessionHandle};
pub use metrics::ServerMetricsSnapshot;
pub use report::{digest_outcomes, SessionId, SessionReport, TraceOutcome};
