//! Criterion benches for the Figure 4 reproduction: the per-gesture cost of an
//! interactive-summaries session as the gesture speed (Figure 4a) and the
//! object size (Figure 4b) vary.
//!
//! These measure the kernel-side cost of reacting to an entire synthesized
//! gesture; the entry counts themselves are produced by the `fig4a`/`fig4b`
//! binaries and recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbtouch_bench::figures::{run_figure4a, run_figure4b, FigureConfig};

fn bench_config() -> FigureConfig {
    FigureConfig {
        rows: 1_000_000,
        ..FigureConfig::default()
    }
}

fn bench_fig4a(c: &mut Criterion) {
    let config = bench_config();
    let mut group = c.benchmark_group("fig4a_gesture_speed");
    group.sample_size(10);
    for secs in [0.5, 1.0, 2.0, 4.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{secs}s")),
            &secs,
            |b, &secs| {
                b.iter(|| run_figure4a(&config, &[secs]).expect("fig4a"));
            },
        );
    }
    group.finish();
}

fn bench_fig4b(c: &mut Criterion) {
    let config = bench_config();
    let mut group = c.benchmark_group("fig4b_object_size");
    group.sample_size(10);
    for doublings in [0u32, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{doublings}_doublings")),
            &doublings,
            |b, &doublings| {
                b.iter(|| run_figure4b(&config, doublings).expect("fig4b"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig4a, bench_fig4b);
criterion_main!(benches);
