//! Criterion benches for the ablation studies A1–A6 and the exploration
//! contest, measuring the end-to-end cost of each experiment at a reduced,
//! bench-friendly scale. The full-scale numbers reported in EXPERIMENTS.md come
//! from the `ablations` and `contest` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use dbtouch_bench::ablations;
use dbtouch_bench::contest::{run_contest, ContestScenario};

const ROWS: u64 = 400_000;

fn bench_ablation_samples(c: &mut Criterion) {
    c.bench_function("a1_sample_hierarchy", |b| {
        b.iter(|| ablations::ablation_samples(ROWS).expect("a1"));
    });
}

fn bench_ablation_prefetch(c: &mut Criterion) {
    c.bench_function("a2_prefetching", |b| {
        b.iter(|| ablations::ablation_prefetch(ROWS).expect("a2"));
    });
}

fn bench_ablation_cache(c: &mut Criterion) {
    c.bench_function("a3_caching", |b| {
        b.iter(|| ablations::ablation_cache(ROWS).expect("a3"));
    });
}

fn bench_ablation_join(c: &mut Criterion) {
    c.bench_function("a4_nonblocking_join", |b| {
        b.iter(|| ablations::ablation_join(50_000).expect("a4"));
    });
}

fn bench_ablation_rotation(c: &mut Criterion) {
    c.bench_function("a5_incremental_rotation", |b| {
        b.iter(|| ablations::ablation_rotation(100_000, 10_000).expect("a5"));
    });
}

fn bench_ablation_budget(c: &mut Criterion) {
    c.bench_function("a6_response_budget", |b| {
        b.iter(|| ablations::ablation_budget(ROWS, 80_000, 200).expect("a6"));
    });
}

fn bench_contest(c: &mut Criterion) {
    let mut group = c.benchmark_group("contest");
    group.sample_size(10);
    group.bench_function("dbtouch_vs_sql_200k", |b| {
        b.iter(|| run_contest(ContestScenario::Contest, 200_000, 7, 0.02).expect("contest"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ablation_samples,
    bench_ablation_prefetch,
    bench_ablation_cache,
    bench_ablation_join,
    bench_ablation_rotation,
    bench_ablation_budget,
    bench_contest
);
criterion_main!(benches);
