//! Micro-benchmarks of the kernel's per-touch building blocks.
//!
//! The interactive-behaviour requirement of Section 4 — "there should always be
//! a maximum possible wait time for a single touch" — makes the cost of the
//! per-touch path the central performance number of a dbTouch kernel. These
//! benches measure each stage of that path in isolation: mapping a touch to a
//! tuple identifier, computing one interactive summary (as a function of the
//! window size), probing the zone-map index, looking up the region cache, and
//! one full end-to-end touch through the session machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbtouch_core::kernel::{Kernel, TouchAction};
use dbtouch_core::mapping::TouchMapper;
use dbtouch_core::operators::aggregate::AggregateKind;
use dbtouch_core::operators::summary::InteractiveSummary;
use dbtouch_gesture::synthesizer::GestureSynthesizer;
use dbtouch_gesture::view::View;
use dbtouch_storage::cache::RegionCache;
use dbtouch_storage::column::Column;
use dbtouch_storage::index::ZoneMapIndex;
use dbtouch_types::{KernelConfig, PointCm, RowId, RowRange, SizeCm};
use std::hint::black_box;

const ROWS: u64 = 10_000_000;

fn bench_touch_mapping(c: &mut Criterion) {
    let view = View::for_column("c", ROWS, SizeCm::new(2.0, 10.0)).unwrap();
    c.bench_function("touch_to_rowid_rule_of_three", |b| {
        let mut y = 0.0f64;
        b.iter(|| {
            y = (y + 0.37) % 10.0;
            black_box(TouchMapper::row_for_touch(&view, PointCm::new(1.0, y)).unwrap())
        });
    });
}

fn bench_interactive_summary(c: &mut Criterion) {
    let column = Column::from_i64("c", (0..1_000_000).collect());
    let mut group = c.benchmark_group("interactive_summary_window");
    for k in [5u64, 50, 500, 5_000] {
        let summary = InteractiveSummary::new(k, AggregateKind::Avg);
        group.bench_with_input(BenchmarkId::from_parameter(format!("k={k}")), &k, |b, _| {
            let mut center = 0u64;
            b.iter(|| {
                center = (center + 77_777) % 1_000_000;
                black_box(summary.summarize(&column, RowId(center)).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_zone_map_probe(c: &mut Criterion) {
    let column = Column::from_i64("c", (0..1_000_000).collect());
    let index = ZoneMapIndex::build(&column, 4096).unwrap();
    c.bench_function("zone_map_row_probe", |b| {
        let mut row = 0u64;
        b.iter(|| {
            row = (row + 99_991) % 1_000_000;
            black_box(index.row_block_may_match(row, 990_000.0, f64::INFINITY))
        });
    });
}

fn bench_region_cache(c: &mut Criterion) {
    let mut cache = RegionCache::new(1 << 20);
    for i in 0..64u64 {
        cache.insert(RowRange::new(i * 10_000, i * 10_000 + 2_000));
    }
    c.bench_function("region_cache_lookup", |b| {
        let mut row = 0u64;
        b.iter(|| {
            row = (row + 37_337) % 640_000;
            black_box(cache.lookup(RowId(row)))
        });
    });
}

fn bench_end_to_end_touch(c: &mut Criterion) {
    // Cost of one full gesture sample through the session machinery, amortized
    // over a one-second slide.
    let mut kernel = Kernel::new(KernelConfig::figure4());
    let id = kernel
        .load_column("c", (0..1_000_000).collect(), SizeCm::new(2.0, 10.0))
        .unwrap();
    kernel
        .set_action(
            id,
            TouchAction::Summary {
                half_window: Some(5),
                kind: AggregateKind::Avg,
            },
        )
        .unwrap();
    let view = kernel.view(id).unwrap();
    let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
    let touches = trace.len() as u64;
    let mut group = c.benchmark_group("session");
    group.throughput(criterion::Throughput::Elements(touches));
    group.bench_function("per_touch_summary_session", |b| {
        b.iter(|| black_box(kernel.run_trace(id, &trace).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_touch_mapping,
    bench_interactive_summary,
    bench_zone_map_probe,
    bench_region_cache,
    bench_end_to_end_touch
);
criterion_main!(benches);
