//! Concurrency benchmark: aggregate touch throughput and per-touch tail
//! latency as a function of simultaneous session count.
//!
//! Every point of the sweep drives K seeded explorers concurrently through
//! `dbtouch-server` over one shared catalog, then replays the identical plans
//! sequentially through the single-user kernel and checks the result digests
//! match — the throughput numbers are only meaningful if the concurrent
//! execution is computing the same answers.

use dbtouch_server::ServerConfig;
use dbtouch_types::{KernelConfig, Result};
use dbtouch_workload::concurrent::{
    plan_explorers, run_concurrent, run_sequential, scenario_catalog,
};
use dbtouch_workload::Scenario;

/// One measured point of the concurrency sweep.
#[derive(Debug, Clone)]
pub struct ConcurrencyPoint {
    /// Simultaneous sessions driven.
    pub sessions: usize,
    /// Worker threads serving them.
    pub workers: usize,
    /// Total touch samples processed.
    pub total_touches: u64,
    /// Total result entries returned.
    pub total_entries: u64,
    /// Aggregate throughput: touches per second of wall time.
    pub touches_per_sec: f64,
    /// Median of per-trace mean per-touch time, microseconds.
    pub p50_touch_micros: f64,
    /// 99th percentile of per-trace mean per-touch time, microseconds.
    pub p99_touch_micros: f64,
    /// Worst single-touch time observed in any trace, microseconds.
    pub worst_touch_micros: f64,
    /// Wall time of the whole concurrent run, milliseconds.
    pub wall_millis: f64,
    /// Whether every session's results matched the sequential replay.
    pub matches_sequential: bool,
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct ConcurrencyReport {
    /// Rows in the shared scenario column.
    pub rows: u64,
    /// Gesture traces each session performs.
    pub traces_per_session: usize,
    /// Measured points, in session-count order.
    pub points: Vec<ConcurrencyPoint>,
}

/// Run the sweep: for each session count, K concurrent explorers over one
/// sky-survey catalog, verified against the sequential replay.
pub fn run_concurrency_sweep(
    rows: usize,
    session_counts: &[usize],
    traces_per_session: usize,
) -> Result<ConcurrencyReport> {
    let scenario = Scenario::sky_survey(rows, 17);
    let (catalog, object) = scenario_catalog(&scenario, KernelConfig::default())?;
    let mut points = Vec::with_capacity(session_counts.len());
    for &sessions in session_counts {
        let plans = plan_explorers(&catalog, object, sessions, traces_per_session, 1234)?;
        let server_config = ServerConfig::default();
        let workers = server_config.worker_threads;
        let concurrent = run_concurrent(&catalog, object, &plans, server_config)?;
        let sequential = run_sequential(&catalog, object, &plans)?;
        let latency = concurrent.latency_summary();
        points.push(ConcurrencyPoint {
            sessions,
            workers,
            total_touches: concurrent.total_touches(),
            total_entries: concurrent.total_entries(),
            touches_per_sec: concurrent.touches_per_sec(),
            p50_touch_micros: latency.p50_nanos as f64 / 1e3,
            p99_touch_micros: latency.p99_nanos as f64 / 1e3,
            worst_touch_micros: latency.max_nanos as f64 / 1e3,
            wall_millis: concurrent.wall_nanos as f64 / 1e6,
            matches_sequential: concurrent.digests() == sequential
                && concurrent.errors().is_empty(),
        });
    }
    Ok(ConcurrencyReport {
        rows: rows as u64,
        traces_per_session,
        points,
    })
}

impl ConcurrencyReport {
    /// Render the sweep as an aligned text table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "concurrency sweep — {} rows, {} traces/session\n",
            self.rows, self.traces_per_session
        ));
        // p50/p99 are percentiles of per-trace MEAN per-touch time; "worst"
        // is the slowest single touch observed anywhere (the paper's
        // maximum-wait-per-touch bound).
        out.push_str(
            "sessions  workers     touches   touches/s   p50 us/touch   p99 us/touch   worst us   wall ms   identical\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:>8}  {:>7}  {:>10}  {:>10.0}  {:>13.2}  {:>13.2}  {:>9.2}  {:>8.1}  {}\n",
                p.sessions,
                p.workers,
                p.total_touches,
                p.touches_per_sec,
                p.p50_touch_micros,
                p.p99_touch_micros,
                p.worst_touch_micros,
                p.wall_millis,
                if p.matches_sequential { "yes" } else { "NO" },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_stays_deterministic() {
        let report = run_concurrency_sweep(20_000, &[1, 4], 2).unwrap();
        assert_eq!(report.points.len(), 2);
        for point in &report.points {
            assert!(point.matches_sequential, "point {point:?}");
            assert!(point.total_touches > 0);
            assert!(point.touches_per_sec > 0.0);
        }
        assert!(report.table().contains("sessions"));
    }
}
