//! Trace overhead benchmark: proves causal span tracing is effectively free
//! on the serving hot path.
//!
//! Drives the identical seeded hot-object workload through the exploration
//! server with span tracing enabled and disabled (telemetry stays on in both
//! configurations, so the delta isolates the span subsystem): one untimed
//! warmup, then `trials` interleaved pairs whose in-pair order alternates
//! every trial, keeping each configuration's best throughput. Asserts the
//! foundational invariant along the way: tracing observes, it never steers —
//! result digests must be bit-identical with spans on or off, in every trial.

use dbtouch_server::ServerConfig;
use dbtouch_types::{DbTouchError, KernelConfig, Result};
use dbtouch_workload::concurrent::{plan_hot_object, run_concurrent, scenario_catalog};
use dbtouch_workload::Scenario;

/// The measured comparison of one workload with span tracing on vs. off.
#[derive(Debug, Clone)]
pub struct TraceOverheadReport {
    /// Rows in the hot object.
    pub rows: u64,
    /// Simultaneous sessions driven.
    pub sessions: usize,
    /// Gesture traces each session performs.
    pub traces_per_session: usize,
    /// Interleaved trials run per configuration (best kept).
    pub trials: usize,
    /// Touch samples processed per run (identical for both configurations).
    pub total_touches: u64,
    /// Best throughput with tracing disabled, touches/s.
    pub touches_per_sec_off: f64,
    /// Best throughput with tracing enabled, touches/s.
    pub touches_per_sec_on: f64,
    /// Result digests identical across every trial of both configurations.
    pub digests_identical: bool,
    /// Traces the span store finished in the enabled best trial.
    pub traces_finished: u64,
    /// Span trees retained by the sampler in the enabled best trial.
    pub trees_retained: usize,
}

impl TraceOverheadReport {
    /// Throughput lost to span tracing, percent of the disabled throughput.
    /// Negative when the traced run measured faster (noise).
    pub fn overhead_percent(&self) -> f64 {
        if self.touches_per_sec_off == 0.0 {
            return 0.0;
        }
        (1.0 - self.touches_per_sec_on / self.touches_per_sec_off) * 100.0
    }

    /// Whether the run proves tracing cheap: identical results and an
    /// overhead below `max_overhead_percent`.
    pub fn passed(&self, max_overhead_percent: f64) -> bool {
        self.digests_identical && self.overhead_percent() < max_overhead_percent
    }

    /// Render the comparison as text lines.
    pub fn table(&self) -> String {
        format!(
            "trace overhead — {} rows, {} sessions x {} traces, best of {} trials\n\
             touches/run          {}\n\
             touches/s  off       {:.0}\n\
             touches/s  on        {:.0}\n\
             overhead             {:+.2}%\n\
             digests identical    {}\n\
             traces finished      {}\n\
             trees retained       {}\n",
            self.rows,
            self.sessions,
            self.traces_per_session,
            self.trials,
            self.total_touches,
            self.touches_per_sec_off,
            self.touches_per_sec_on,
            self.overhead_percent(),
            self.digests_identical,
            self.traces_finished,
            self.trees_retained,
        )
    }
}

/// One timed run of the workload under `config`. Returns
/// `(touches_per_sec, total_touches, digests, traces_finished, trees)`.
fn one_run(
    scenario: &Scenario,
    config: KernelConfig,
    sessions: usize,
    traces_per_session: usize,
) -> Result<(f64, u64, Vec<u64>, u64, usize)> {
    // A fresh catalog per run: a warm shared cache or buffer pool from a
    // previous run must not flatter either configuration.
    let (catalog, object) = scenario_catalog(scenario, config)?;
    let plans = plan_hot_object(&catalog, object, sessions, traces_per_session, 99)?;
    let run = run_concurrent(&catalog, object, &plans, ServerConfig::default())?;
    if let Some(error) = run.errors().first() {
        return Err(DbTouchError::Internal(format!(
            "trace overhead run errored: {error}"
        )));
    }
    let snapshot = catalog.telemetry().snapshot();
    Ok((
        run.touches_per_sec(),
        run.total_touches(),
        run.digests(),
        snapshot.scalar("obs.traces_finished").unwrap_or(0),
        snapshot.traces.len(),
    ))
}

/// Run the comparison: one untimed warmup, then `trials` interleaved off/on
/// pairs over the identical seeded workload, alternating the in-pair order
/// every trial and keeping each configuration's best throughput.
pub fn run_trace_overhead(
    rows: usize,
    sessions: usize,
    traces_per_session: usize,
    trials: usize,
) -> Result<TraceOverheadReport> {
    let scenario = Scenario::sky_survey(rows, 17);
    let trials = trials.max(1);
    let mut best_off = 0.0f64;
    let mut best_on = 0.0f64;
    let mut total_touches = 0;
    let mut digests: Option<Vec<u64>> = None;
    let mut digests_identical = true;
    let mut traces_finished = 0;
    let mut trees_retained = 0;
    // Untimed warmup: faults in the binary, warms the allocator and branch
    // predictors so the first timed run doesn't penalize whichever
    // configuration happens to go first.
    one_run(
        &scenario,
        KernelConfig::default().with_tracing(false),
        sessions,
        traces_per_session,
    )?;
    for trial in 0..trials {
        let off_config = KernelConfig::default().with_tracing(false);
        let on_config = KernelConfig::default().with_tracing(true);
        // Alternate which configuration runs first so residual cache warmth
        // from the preceding run flatters each side equally often.
        let (tps_off, touches, digests_off, (tps_on, _, digests_on, finished, trees)) =
            if trial % 2 == 0 {
                let off = one_run(&scenario, off_config, sessions, traces_per_session)?;
                let on = one_run(&scenario, on_config, sessions, traces_per_session)?;
                (off.0, off.1, off.2, on)
            } else {
                let on = one_run(&scenario, on_config, sessions, traces_per_session)?;
                let off = one_run(&scenario, off_config, sessions, traces_per_session)?;
                (off.0, off.1, off.2, on)
            };
        total_touches = touches;
        digests_identical &= digests_off == digests_on;
        match &digests {
            Some(expected) => digests_identical &= *expected == digests_off,
            None => digests = Some(digests_off),
        }
        if tps_off > best_off {
            best_off = tps_off;
        }
        if tps_on > best_on {
            best_on = tps_on;
            traces_finished = finished;
            trees_retained = trees;
        }
    }
    Ok(TraceOverheadReport {
        rows: rows as u64,
        sessions,
        traces_per_session,
        trials,
        total_touches,
        touches_per_sec_off: best_off,
        touches_per_sec_on: best_on,
        digests_identical,
        traces_finished,
        trees_retained,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_scale_run_is_transparent() {
        let report = run_trace_overhead(20_000, 2, 2, 1).unwrap();
        assert!(report.digests_identical, "tracing must not steer results");
        assert!(report.total_touches > 0);
        assert!(report.touches_per_sec_on > 0.0);
        assert!(
            report.traces_finished > 0,
            "the enabled span store must have finished traces"
        );
        let text = report.table();
        assert!(text.contains("digests identical    true"));
    }
}
