//! Compression benchmark: scan throughput and bytes on disk, Raw vs
//! auto-encoded page spans, on low- and high-cardinality columns.
//!
//! Each point persists one integer column into a fresh on-disk catalog,
//! drops the writer, reopens the directory (so every read faults pages
//! through the buffer pool) and replays the same seeded segment-sweep plan a
//! single served session at a time. The encoded and raw runs of one scenario
//! share the plan, so the only things allowed to differ are the wall clock,
//! the page count and the buffer-pool traffic — the digests must match bit
//! for bit ([`dbtouch_storage::encoding`] keeps integer kernels in exact
//! `i128` whatever the page representation).
//!
//! The low-cardinality column is the monitoring signal coarsened to a few
//! severity bands ([`Scenario::signal_column_banded`]): long constant runs,
//! the shape RLE/dictionary pages exist for. The high-cardinality column is
//! the full-resolution milli-unit signal, which the packer must decline
//! (auto-encoding falls back to raw pages, costing nothing but the probe).

use dbtouch_core::catalog::SharedCatalog;
use dbtouch_server::ServerConfig;
use dbtouch_storage::column::Column;
use dbtouch_types::{DbTouchError, Result, SizeCm};
use dbtouch_workload::concurrent::{plan_segment_sweep, run_concurrent, segment_sweep_config};
use dbtouch_workload::Scenario;
use std::path::Path;
use std::sync::Arc;

/// One measured (scenario × encoding) point.
#[derive(Debug, Clone)]
pub struct CompressionPoint {
    /// Data shape: `"low_cardinality"` or `"high_cardinality"`.
    pub scenario: &'static str,
    /// Whether auto-encoding was enabled when the column was persisted.
    pub encoded: bool,
    /// Size of the store's `pages.dat` after the persist.
    pub disk_bytes: u64,
    /// RLE pages the persist wrote (0 when raw or nothing packed).
    pub rle_pages: u64,
    /// Dictionary pages the persist wrote.
    pub dict_pages: u64,
    /// Total touch samples processed by the replay.
    pub total_touches: u64,
    /// Throughput: touches per second of wall time.
    pub touches_per_sec: f64,
    /// Wall time of the replay in seconds.
    pub wall_secs: f64,
    /// Page reads that faulted from disk during the replay.
    pub pool_faults: u64,
    /// Whole RLE runs aggregated with one multiply during the replay.
    pub run_skips: u64,
    /// The session's result digest.
    pub digest: u64,
    /// Digest equals the raw run of the same scenario and the replay was
    /// error-free.
    pub verified: bool,
}

/// The full Raw-vs-encoded sweep.
#[derive(Debug, Clone)]
pub struct CompressionReport {
    /// Rows in each scanned column.
    pub rows: u64,
    /// Gesture traces the session performs per point.
    pub traces: usize,
    /// Summary half-window in rows.
    pub half_window: u64,
    /// Points in sweep order (raw before encoded within each scenario).
    pub points: Vec<CompressionPoint>,
}

/// The two swept data shapes.
const SCENARIOS: [(&str, bool); 2] = [("low_cardinality", true), ("high_cardinality", false)];

fn scenario_column(scenario: &Scenario, low_cardinality: bool) -> Column {
    if low_cardinality {
        scenario.signal_column_banded(6)
    } else {
        scenario.signal_column_i64()
    }
}

fn pages_file_bytes(dir: &Path) -> Result<u64> {
    let path = dir.join("pages.dat");
    Ok(std::fs::metadata(&path)
        .map_err(|e| DbTouchError::Io(format!("stat {}: {e}", path.display())))?
        .len())
}

/// Run the sweep: for each data shape, persist the column raw and
/// auto-encoded into fresh stores, reopen each and replay the identical
/// seeded plan (raw first — it is the digest baseline).
pub fn run_compression_sweep(rows: usize, traces: usize) -> Result<CompressionReport> {
    let scenario = Scenario::monitoring_stream(rows, 17);
    let half_window = (rows as u64 / 4).max(1);
    // Unaligned to zone-map blocks, as in the segment_scan bench: aligned
    // segments would be answered from the index without touching pages.
    let segment_rows = 50_000;
    let base =
        std::env::temp_dir().join(format!("dbtouch-bench-compression-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let mut points = Vec::with_capacity(SCENARIOS.len() * 2);
    for (name, low_cardinality) in SCENARIOS {
        let column = scenario_column(&scenario, low_cardinality);
        let mut plan = None;
        let mut baseline_digest = None;
        for encoded in [false, true] {
            let config = segment_sweep_config(1, segment_rows).with_encoding(encoded);
            let dir = base.join(format!("{name}-{encoded}"));
            let (rle_pages, dict_pages) = {
                let writer = SharedCatalog::open(&dir, config.clone())?;
                writer.load_column_typed(column.clone(), SizeCm::new(2.0, 12.0))?;
                let metrics = writer.telemetry().snapshot();
                (
                    metrics.scalar("encoding.rle_pages").unwrap_or(0),
                    metrics.scalar("encoding.dict_pages").unwrap_or(0),
                )
            };
            let disk_bytes = pages_file_bytes(&dir)?;

            let catalog = Arc::new(SharedCatalog::open(&dir, config)?);
            let id = catalog.object_id(column.name())?;
            let plan = match &plan {
                Some(p) => p,
                None => plan.insert(plan_segment_sweep(&catalog, id, traces, half_window, 99)?),
            };
            let run = run_concurrent(
                &catalog,
                id,
                std::slice::from_ref(plan),
                ServerConfig::with_workers(1).with_raw_latency(true),
            )?;
            let session = &run.sessions[0];
            let digest = session.result_digest();
            let baseline = *baseline_digest.get_or_insert(digest);
            let metrics = catalog.telemetry().snapshot();
            points.push(CompressionPoint {
                scenario: name,
                encoded,
                disk_bytes,
                rle_pages,
                dict_pages,
                total_touches: run.total_touches(),
                touches_per_sec: run.touches_per_sec(),
                wall_secs: run.wall_nanos as f64 / 1e9,
                pool_faults: catalog.pager_stats().map(|s| s.faults).unwrap_or(0),
                run_skips: metrics.scalar("encoding.run_skips").unwrap_or(0),
                digest,
                verified: digest == baseline && run.errors().is_empty(),
            });
        }
    }
    let _ = std::fs::remove_dir_all(&base);
    Ok(CompressionReport {
        rows: rows as u64,
        traces,
        half_window,
        points,
    })
}

impl CompressionReport {
    /// The measured point for one scenario × encoding setting.
    pub fn point(&self, scenario: &str, encoded: bool) -> Option<&CompressionPoint> {
        self.points
            .iter()
            .find(|p| p.scenario == scenario && p.encoded == encoded)
    }

    /// On-disk shrink of the encoded store vs the raw store for one scenario
    /// (`raw_bytes / encoded_bytes`; > 1 means the encoded store is smaller).
    pub fn disk_shrink(&self, scenario: &str) -> Option<f64> {
        let raw = self.point(scenario, false)?;
        let enc = self.point(scenario, true).filter(|p| p.disk_bytes > 0)?;
        Some(raw.disk_bytes as f64 / enc.disk_bytes as f64)
    }

    /// Throughput of the encoded replay relative to the raw replay for one
    /// scenario (> 1 means the encoded scan is faster).
    pub fn speedup(&self, scenario: &str) -> Option<f64> {
        let raw = self
            .point(scenario, false)
            .filter(|p| p.touches_per_sec > 0.0)?;
        let enc = self.point(scenario, true)?;
        Some(enc.touches_per_sec / raw.touches_per_sec)
    }

    /// Render the sweep as an aligned text table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "compression sweep — {} rows, half-window {}, {} traces/point\n",
            self.rows, self.half_window, self.traces
        ));
        out.push_str(
            "scenario          encoded   disk bytes    rle   dict    touches   touches/s    wall s     faults   run skips   identical\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:<16}  {:>7}  {:>11}  {:>5}  {:>5}  {:>9}  {:>10.0}  {:>8.2}  {:>9}  {:>10}  {}\n",
                p.scenario,
                if p.encoded { "auto" } else { "raw" },
                p.disk_bytes,
                p.rle_pages,
                p.dict_pages,
                p.total_touches,
                p.touches_per_sec,
                p.wall_secs,
                p.pool_faults,
                p.run_skips,
                if p.verified { "yes" } else { "NO" },
            ));
        }
        for (name, _) in SCENARIOS {
            if let (Some(shrink), Some(speedup)) = (self.disk_shrink(name), self.speedup(name)) {
                out.push_str(&format!(
                    "{name}: {shrink:.2}x smaller on disk, {speedup:.2}x the raw throughput\n"
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_verifies_digests_and_shrinks_low_cardinality_storage() {
        let report = run_compression_sweep(400_000, 2).unwrap();
        assert_eq!(report.points.len(), 4);
        for point in &report.points {
            assert!(point.verified, "point {point:?}");
            assert!(point.total_touches > 0);
            assert!(point.disk_bytes > 0);
        }
        // Low-cardinality data must pack at least 2x smaller (the packer only
        // accepts factors that at least halve the page count) and must
        // actually exercise the run fast path on replay.
        let shrink = report.disk_shrink("low_cardinality").unwrap();
        assert!(shrink >= 2.0, "low-cardinality shrink only {shrink:.2}x");
        let enc = report.point("low_cardinality", true).unwrap();
        assert!(enc.rle_pages + enc.dict_pages > 0);
        assert!(enc.run_skips > 0 || enc.dict_pages > 0);
        let raw = report.point("low_cardinality", false).unwrap();
        assert!(
            enc.pool_faults < raw.pool_faults,
            "packed replays fault fewer pages"
        );
        // High-cardinality data must decline packing: same bytes, raw pages.
        let enc_hi = report.point("high_cardinality", true).unwrap();
        let raw_hi = report.point("high_cardinality", false).unwrap();
        assert_eq!(enc_hi.disk_bytes, raw_hi.disk_bytes);
        assert_eq!(enc_hi.rle_pages + enc_hi.dict_pages, 0);
    }
}
