//! Parameter sweeps around the Figure 4 setup.
//!
//! The paper fixes the interactive-summary size ("10 data entries for each
//! summary") and the touch hardware (iPad 1). These sweeps vary the two
//! parameters the paper holds constant, to document how sensitive the headline
//! behaviour is to them:
//!
//! * [`sweep_summary_window`] — half-window `k` from 0 (point reads) to large
//!   windows: entries returned stay constant (they depend on touch input, not
//!   on `k`) while rows touched grow linearly with `k`.
//! * [`sweep_touch_rate`] — the device's touch sampling rate: entries returned
//!   grow roughly linearly with the rate until the touch-resolution limit of
//!   the object is reached.

use crate::figures::FigureConfig;
use dbtouch_core::kernel::{Kernel, TouchAction};
use dbtouch_core::operators::aggregate::AggregateKind;
use dbtouch_gesture::synthesizer::GestureSynthesizer;
use dbtouch_types::{KernelConfig, Result, SizeCm};
use serde::{Deserialize, Serialize};

/// One point of a parameter sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter value (half-window `k`, or touch rate in Hz).
    pub parameter: f64,
    /// Entries returned by a fixed 2-second top-to-bottom slide.
    pub entries_returned: u64,
    /// Rows read from storage during that slide.
    pub rows_touched: u64,
    /// Mean per-touch processing cost in nanoseconds.
    pub mean_touch_nanos: u64,
}

/// A completed sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// "summary_window" or "touch_rate".
    pub sweep: String,
    /// Data size used.
    pub rows: u64,
    /// The measured points.
    pub points: Vec<SweepPoint>,
}

fn run_slide(
    rows: u64,
    touch_rate_hz: f64,
    half_window: u64,
    slide_seconds: f64,
) -> Result<SweepPoint> {
    let config = KernelConfig::figure4().with_touch_sample_rate(touch_rate_hz);
    let mut kernel = Kernel::new(config);
    let id = kernel.load_column("sweep", (0..rows as i64).collect(), SizeCm::new(2.0, 10.0))?;
    kernel.set_action(
        id,
        TouchAction::Summary {
            half_window: Some(half_window),
            kind: AggregateKind::Avg,
        },
    )?;
    let view = kernel.view(id)?;
    let trace = GestureSynthesizer::new(touch_rate_hz).slide_down(&view, slide_seconds);
    let outcome = kernel.run_trace(id, &trace)?;
    Ok(SweepPoint {
        parameter: 0.0,
        entries_returned: outcome.stats.entries_returned,
        rows_touched: outcome.stats.rows_touched,
        mean_touch_nanos: outcome.stats.mean_touch_nanos(),
    })
}

/// Sweep the interactive-summary half-window `k` at a fixed 60 Hz, 2 s slide.
pub fn sweep_summary_window(rows: u64, half_windows: &[u64]) -> Result<SweepReport> {
    let ks: Vec<u64> = if half_windows.is_empty() {
        vec![0, 1, 2, 5, 10, 25, 50, 100]
    } else {
        half_windows.to_vec()
    };
    let mut points = Vec::with_capacity(ks.len());
    for &k in &ks {
        let mut p = run_slide(rows, 60.0, k, 2.0)?;
        p.parameter = k as f64;
        points.push(p);
    }
    Ok(SweepReport {
        sweep: "summary_window".to_string(),
        rows,
        points,
    })
}

/// Sweep the device touch sampling rate at a fixed `k = 5`, 2 s slide.
pub fn sweep_touch_rate(rows: u64, rates_hz: &[f64]) -> Result<SweepReport> {
    let rates: Vec<f64> = if rates_hz.is_empty() {
        vec![15.0, 30.0, 60.0, 120.0, 240.0]
    } else {
        rates_hz.to_vec()
    };
    let mut points = Vec::with_capacity(rates.len());
    for &hz in &rates {
        let mut p = run_slide(rows, hz, 5, 2.0)?;
        p.parameter = hz;
        points.push(p);
    }
    Ok(SweepReport {
        sweep: "touch_rate".to_string(),
        rows,
        points,
    })
}

/// Render a sweep as a plain-text table.
pub fn render_sweep(report: &SweepReport) -> String {
    let param_label = if report.sweep == "summary_window" {
        "half-window k"
    } else {
        "touch rate (Hz)"
    };
    let rows: Vec<Vec<String>> = report
        .points
        .iter()
        .map(|p| {
            vec![
                crate::report::fmt_f64(p.parameter, 1),
                p.entries_returned.to_string(),
                crate::report::fmt_count(p.rows_touched),
                crate::report::fmt_count(p.mean_touch_nanos),
            ]
        })
        .collect();
    format!(
        "sweep: {} ({} rows, 2s slide)\n{}",
        report.sweep,
        crate::report::fmt_count(report.rows),
        crate::report::render_table(
            &[
                param_label,
                "# entries returned",
                "rows touched",
                "mean ns/touch"
            ],
            &rows,
        )
    )
}

/// Keep `FigureConfig` in the module's public API surface so sweep users can
/// reuse the figure defaults when picking data sizes.
pub fn default_rows() -> u64 {
    FigureConfig::default().rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_window_sweep_scales_rows_not_entries() {
        let report = sweep_summary_window(200_000, &[0, 5, 50]).unwrap();
        assert_eq!(report.points.len(), 3);
        let entries: Vec<u64> = report.points.iter().map(|p| p.entries_returned).collect();
        // entries are driven by touch input, not by k (within a small tolerance)
        assert!(entries.iter().max().unwrap() - entries.iter().min().unwrap() <= 2);
        // rows touched grow with k
        assert!(report.points[2].rows_touched > 5 * report.points[0].rows_touched);
    }

    #[test]
    fn touch_rate_sweep_scales_entries() {
        let report = sweep_touch_rate(200_000, &[15.0, 60.0]).unwrap();
        assert!(report.points[1].entries_returned > 3 * report.points[0].entries_returned);
    }

    #[test]
    fn sweep_rendering() {
        let report = sweep_summary_window(50_000, &[0, 5]).unwrap();
        let text = render_sweep(&report);
        assert!(text.contains("half-window k"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn default_rows_matches_figure_config() {
        assert_eq!(default_rows(), 10_000_000);
    }
}
