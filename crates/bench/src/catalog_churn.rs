//! Catalog-churn benchmark: checkout and touch performance while mutator
//! threads continuously restructure the catalog.
//!
//! Before the epoch-versioned catalog, every checkout shared one
//! `RwLock` with the restructure path, so a single `drag_column_out` — an
//! O(rows) rebuild performed under the write lock — stalled every session's
//! checkout behind it. Snapshots make the checkout path wait-free and move
//! the rebuild off-lock; this sweep quantifies that: for each session count
//! and mutator count it drives K seeded explorers (plus one dedicated
//! checkout-hammering thread) while M mutators ping-pong columns out of and
//! back into a churn table, reporting touch throughput, per-touch p50/p99,
//! and checkout-path p50/p99.
//!
//! Every point is verified: explorer digests must be bit-identical to the
//! churn-free sequential replay (restructures of unrelated objects must
//! never change answers), identical for a given explorer across every
//! session and mutator count, and the catalog epoch must advance
//! monotonically by at least the restructures performed.

use dbtouch_server::latency::percentile_sorted;
use dbtouch_server::ServerConfig;
use dbtouch_types::{KernelConfig, Result};
use dbtouch_workload::churn::{churn_catalog, run_concurrent_with_churn};
use dbtouch_workload::concurrent::{plan_explorers, run_sequential};
use dbtouch_workload::Scenario;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One measured point of the churn sweep.
#[derive(Debug, Clone)]
pub struct CatalogChurnPoint {
    /// Simultaneous explorer sessions driven.
    pub sessions: usize,
    /// Mutator threads restructuring the churn table.
    pub mutators: usize,
    /// Total touch samples processed.
    pub total_touches: u64,
    /// Aggregate throughput: touches per second of wall time.
    pub touches_per_sec: f64,
    /// Median of per-trace mean per-touch time, microseconds.
    pub p50_touch_micros: f64,
    /// 99th percentile of per-trace mean per-touch time, microseconds.
    pub p99_touch_micros: f64,
    /// Checkouts per second sustained by the dedicated checkout thread.
    pub checkouts_per_sec: f64,
    /// Median checkout latency, nanoseconds.
    pub checkout_p50_nanos: u64,
    /// 99th-percentile checkout latency, nanoseconds.
    pub checkout_p99_nanos: u64,
    /// Restructures the mutators performed during the run.
    pub restructures: u64,
    /// Catalog epoch before the run.
    pub first_epoch: u64,
    /// Catalog epoch after the run.
    pub final_epoch: u64,
    /// Whether digests matched the churn-free sequential replay (and the
    /// same explorer's digest at every other point), with no errors and a
    /// monotone epoch.
    pub verified: bool,
}

/// The full churn sweep.
#[derive(Debug, Clone)]
pub struct CatalogChurnReport {
    /// Rows in the explored signal column.
    pub rows: u64,
    /// Rows per churn-table column (the size of each restructure rebuild).
    pub churn_rows: u64,
    /// Gesture traces each session performs.
    pub traces_per_session: usize,
    /// Measured points, session-major then mutator-count order.
    pub points: Vec<CatalogChurnPoint>,
}

/// Run the sweep: for each `(sessions, mutators)` pair, K concurrent
/// explorers over the signal column while M mutators churn, verified against
/// the churn-free sequential replay.
pub fn run_catalog_churn_sweep(
    rows: usize,
    session_counts: &[usize],
    mutator_counts: &[usize],
    traces_per_session: usize,
) -> Result<CatalogChurnReport> {
    let scenario = Scenario::sky_survey(rows, 17);
    let churn_rows = (rows / 4).clamp(1_024, 65_536);
    let mut points = Vec::with_capacity(session_counts.len() * mutator_counts.len());
    // A given explorer's plan is a pure function of its index and the seed,
    // so its digest must be identical at every point of the sweep — whether
    // 1 or 32 sessions run, with churn on or off.
    let mut expected_digests: Vec<u64> = Vec::new();
    for &sessions in session_counts {
        for &mutators in mutator_counts {
            // Fresh catalog per point: churn must never warm a later point.
            let (catalog, signal, churn) =
                churn_catalog(&scenario, KernelConfig::default(), churn_rows)?;
            let plans = plan_explorers(&catalog, signal, sessions, traces_per_session, 1234)?;

            // A dedicated thread hammers the checkout path for the duration
            // of the run — the operation the old RwLock serialized against
            // restructures. Latency is sampled 1-in-16 to bound memory.
            let stop = Arc::new(AtomicBool::new(false));
            let sampler = {
                let catalog = Arc::clone(&catalog);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || -> (u64, Vec<u64>, u64) {
                    let mut count = 0u64;
                    let mut samples = Vec::new();
                    let started = Instant::now();
                    while !stop.load(Ordering::Relaxed) {
                        if count.is_multiple_of(16) {
                            let t = Instant::now();
                            let state = catalog.checkout(signal);
                            samples.push(t.elapsed().as_nanos() as u64);
                            drop(state);
                        } else {
                            drop(catalog.checkout(signal));
                        }
                        count += 1;
                    }
                    (count, samples, started.elapsed().as_nanos() as u64)
                })
            };
            let outcome = run_concurrent_with_churn(
                &catalog,
                signal,
                &plans,
                ServerConfig::default(),
                churn,
                mutators,
            );
            stop.store(true, Ordering::Relaxed);
            let (checkouts, mut samples, sampler_nanos) =
                sampler.join().expect("checkout sampler must not panic");
            let outcome = outcome?;

            let sequential = run_sequential(&catalog, signal, &plans)?;
            let digests = outcome.run.digests();
            let mut verified = digests == sequential
                && outcome.run.errors().is_empty()
                && outcome.mutator_errors.is_empty()
                && outcome.final_epoch >= outcome.first_epoch + outcome.restructures;
            for (i, &digest) in digests.iter().enumerate() {
                match expected_digests.get(i) {
                    Some(&expected) => verified &= digest == expected,
                    None => expected_digests.push(digest),
                }
            }

            let latency = outcome.run.latency_summary();
            // Sort once, read both percentiles from the sorted slice.
            samples.sort_unstable();
            points.push(CatalogChurnPoint {
                sessions,
                mutators,
                total_touches: outcome.run.total_touches(),
                touches_per_sec: outcome.run.touches_per_sec(),
                p50_touch_micros: latency.p50_nanos as f64 / 1e3,
                p99_touch_micros: latency.p99_nanos as f64 / 1e3,
                checkouts_per_sec: checkouts as f64 / (sampler_nanos.max(1) as f64 / 1e9),
                checkout_p50_nanos: percentile_sorted(&samples, 50.0),
                checkout_p99_nanos: percentile_sorted(&samples, 99.0),
                restructures: outcome.restructures,
                first_epoch: outcome.first_epoch,
                final_epoch: outcome.final_epoch,
                verified,
            });
        }
    }
    Ok(CatalogChurnReport {
        rows: rows as u64,
        churn_rows: churn_rows as u64,
        traces_per_session,
        points,
    })
}

impl CatalogChurnReport {
    /// Render the sweep as an aligned text table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "catalog churn sweep — {} signal rows, {} churn rows/column, {} traces/session\n",
            self.rows, self.churn_rows, self.traces_per_session
        ));
        out.push_str(
            "sessions  mutators     touches   touches/s   p50 us/touch   p99 us/touch   checkouts/s   co p50 ns   co p99 ns   restructures    epochs   identical\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:>8}  {:>8}  {:>10}  {:>10.0}  {:>13.2}  {:>13.2}  {:>12.0}  {:>10}  {:>10}  {:>12}  {:>3}->{:<4}  {}\n",
                p.sessions,
                p.mutators,
                p.total_touches,
                p.touches_per_sec,
                p.p50_touch_micros,
                p.p99_touch_micros,
                p.checkouts_per_sec,
                p.checkout_p50_nanos,
                p.checkout_p99_nanos,
                p.restructures,
                p.first_epoch,
                p.final_epoch,
                if p.verified { "yes" } else { "NO" },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_verifies_and_epochs_advance_under_churn() {
        let report = run_catalog_churn_sweep(20_000, &[1, 4], &[0, 2], 2).unwrap();
        assert_eq!(report.points.len(), 4);
        for point in &report.points {
            assert!(point.verified, "point {point:?}");
            assert!(point.total_touches > 0);
            assert!(point.touches_per_sec > 0.0);
            assert!(point.checkouts_per_sec > 0.0);
            assert!(point.final_epoch >= point.first_epoch);
            if point.mutators == 0 {
                assert_eq!(point.restructures, 0);
                assert_eq!(point.final_epoch, point.first_epoch);
            } else {
                assert!(point.restructures >= 2);
                assert!(point.final_epoch > point.first_epoch);
            }
        }
        assert!(report.table().contains("restructures"));
    }
}
