//! # dbtouch-bench
//!
//! The experiment harness: code that regenerates every figure of the paper's
//! evaluation (Section 3), the Appendix A exploration contest, and the ablation
//! studies for the design choices called out in DESIGN.md.
//!
//! Each experiment is a plain function returning a serializable report, so it
//! can be driven three ways:
//!
//! * the `fig4a`, `fig4b`, `contest` and `ablations` binaries print the same
//!   rows/series the paper reports (see EXPERIMENTS.md),
//! * the Criterion benches in `benches/` measure the underlying per-touch and
//!   per-query costs,
//! * the integration tests run reduced-scale versions to keep CI fast.

pub mod ablations;
pub mod cache_effectiveness;
pub mod catalog_churn;
pub mod cold_start;
pub mod compression;
pub mod concurrency;
pub mod contest;
pub mod figures;
pub mod net_throughput;
pub mod remote_overlap;
pub mod report;
pub mod segment_scan;
pub mod sweeps;
pub mod telemetry_overhead;
pub mod trace_overhead;

pub use cache_effectiveness::{
    run_cache_effectiveness_sweep, CacheEffectivenessPoint, CacheEffectivenessReport,
};
pub use catalog_churn::{run_catalog_churn_sweep, CatalogChurnPoint, CatalogChurnReport};
pub use cold_start::{run_cold_start_sweep, ColdStartPoint, ColdStartReport};
pub use compression::{run_compression_sweep, CompressionPoint, CompressionReport};
pub use concurrency::{run_concurrency_sweep, ConcurrencyPoint, ConcurrencyReport};
pub use contest::{run_contest, ContestReport};
pub use figures::{run_figure4a, run_figure4b, Figure4Point, Figure4Report, FigureConfig};
pub use net_throughput::{run_net_throughput_sweep, NetThroughputPoint, NetThroughputReport};
pub use remote_overlap::{run_remote_overlap_sweep, RemoteOverlapPoint, RemoteOverlapReport};
pub use segment_scan::{run_segment_scan_sweep, SegmentScanPoint, SegmentScanReport};
pub use sweeps::{sweep_summary_window, sweep_touch_rate, SweepPoint, SweepReport};
pub use telemetry_overhead::{run_telemetry_overhead, TelemetryOverheadReport};
pub use trace_overhead::{run_trace_overhead, TraceOverheadReport};
