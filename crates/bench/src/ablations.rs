//! Ablation studies for the design choices the paper calls out.
//!
//! The paper's own evaluation is limited to Figure 4; Section 2.6–2.9 and
//! Section 4, however, argue for a set of mechanisms (sample-based storage,
//! prefetching, caching, non-blocking joins, incremental layout rotation, a
//! per-touch response budget). Each function here isolates one of those
//! mechanisms and measures the quantity it is supposed to improve, with the
//! mechanism switched on and off. DESIGN.md maps these to experiment ids
//! A1–A6.

use dbtouch_core::kernel::{Kernel, TouchAction};
use dbtouch_core::operators::aggregate::AggregateKind;
use dbtouch_core::operators::join::{BlockingHashJoin, JoinSide, SymmetricHashJoin};
use dbtouch_gesture::synthesizer::GestureSynthesizer;
use dbtouch_storage::column::Column;
use dbtouch_storage::matrix::Matrix;
use dbtouch_storage::rotation::RotationTask;
use dbtouch_storage::table::Table;
use dbtouch_types::{KernelConfig, Result, RowId, SizeCm, Value};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// A1 — sample-based storage (Section 2.6, "Sample-based Storage").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplesAblation {
    /// Entries returned with adaptive sample selection.
    pub adaptive_entries: u64,
    /// Entries returned when always reading base data.
    pub naive_entries: u64,
    /// Bytes of the array the adaptive run actually reads from (its working
    /// set: the dominant sample level).
    pub adaptive_working_set_bytes: u64,
    /// Bytes of the base array the naive run reads from.
    pub naive_working_set_bytes: u64,
    /// Wall-clock nanoseconds of the adaptive session.
    pub adaptive_wall_nanos: u64,
    /// Wall-clock nanoseconds of the naive session.
    pub naive_wall_nanos: u64,
}

/// Run ablation A1 on a column of `rows` integers with a ~1.5s slide.
pub fn ablation_samples(rows: u64) -> Result<SamplesAblation> {
    let run = |config: KernelConfig| -> Result<(u64, u64, u64)> {
        let mut kernel = Kernel::new(config);
        let id = kernel.load_column("a1", (0..rows as i64).collect(), SizeCm::new(2.0, 10.0))?;
        kernel.set_action(
            id,
            TouchAction::Summary {
                half_window: Some(5),
                kind: AggregateKind::Avg,
            },
        )?;
        let view = kernel.view(id)?;
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.5);
        let started = Instant::now();
        let outcome = kernel.run_trace(id, &trace)?;
        let wall = started.elapsed().as_nanos() as u64;
        let dominant = outcome
            .stats
            .sample_level_usage
            .iter()
            .max_by_key(|(_, c)| **c)
            .map(|(l, _)| *l)
            .unwrap_or(0);
        // Working set: the size of the array actually served from.
        let working_set = rows / (1 << dominant) * 8;
        Ok((outcome.stats.entries_returned, working_set, wall))
    };
    let (adaptive_entries, adaptive_ws, adaptive_wall) = run(KernelConfig::default())?;
    let (naive_entries, naive_ws, naive_wall) =
        run(KernelConfig::default().with_adaptive_sampling(false))?;
    Ok(SamplesAblation {
        adaptive_entries,
        naive_entries,
        adaptive_working_set_bytes: adaptive_ws,
        naive_working_set_bytes: naive_ws,
        adaptive_wall_nanos: adaptive_wall,
        naive_wall_nanos: naive_wall,
    })
}

/// A2 — prefetching (Section 2.6, "Prefetching Data").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefetchAblation {
    /// Prefetch requests issued when enabled.
    pub prefetches_issued: u64,
    /// Fraction of touched rows served warm (prefetched) when enabled.
    pub warm_fraction_with: f64,
    /// Fraction of touched rows served warm when disabled (always cold).
    pub warm_fraction_without: f64,
    /// Simulated memory-access nanoseconds with prefetching.
    pub access_nanos_with: u64,
    /// Simulated memory-access nanoseconds without prefetching.
    pub access_nanos_without: u64,
}

/// Run ablation A2: an exploratory slide (pause, backtrack, resume) with and
/// without the gesture-extrapolation prefetcher.
pub fn ablation_prefetch(rows: u64) -> Result<PrefetchAblation> {
    let run = |config: KernelConfig| -> Result<(u64, f64, u64)> {
        let mut kernel = Kernel::new(config);
        let id = kernel.load_column("a2", (0..rows as i64).collect(), SizeCm::new(2.0, 10.0))?;
        kernel.set_action(id, TouchAction::Scan)?;
        let view = kernel.view(id)?;
        let trace = GestureSynthesizer::new(60.0).exploratory_slide(&view, 4.0);
        let outcome = kernel.run_trace(id, &trace)?;
        let (_, prefetch_stats) = kernel.object_stats(id)?;
        Ok((
            outcome.stats.prefetches_issued,
            prefetch_stats.hit_rate(),
            outcome.stats.simulated_access_nanos,
        ))
    };
    let (issued, warm_with, nanos_with) = run(KernelConfig::default())?;
    let (_, warm_without, nanos_without) = run(KernelConfig::default().with_prefetch(false))?;
    Ok(PrefetchAblation {
        prefetches_issued: issued,
        warm_fraction_with: warm_with,
        warm_fraction_without: warm_without,
        access_nanos_with: nanos_with,
        access_nanos_without: nanos_without,
    })
}

/// A3 — caching (Section 2.6, "Caching Data").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheAblation {
    /// Cache hit rate on the second pass over the same region, cache enabled.
    pub second_pass_hit_rate_with: f64,
    /// Cache hit rate on the second pass, cache disabled.
    pub second_pass_hit_rate_without: f64,
    /// Cache hits observed during the second pass with the cache enabled.
    pub second_pass_hits: u64,
}

/// Run ablation A3: slide over a region, then re-examine the same region.
pub fn ablation_cache(rows: u64) -> Result<CacheAblation> {
    let run = |config: KernelConfig| -> Result<(f64, u64)> {
        let mut kernel = Kernel::new(config);
        let id = kernel.load_column("a3", (0..rows as i64).collect(), SizeCm::new(2.0, 10.0))?;
        kernel.set_action(id, TouchAction::Scan)?;
        let view = kernel.view(id)?;
        let mut synthesizer = GestureSynthesizer::new(60.0);
        // First pass over the middle region, then a second pass over the same region.
        let first = synthesizer.slide(&view, 0.4, 0.6, 1.0);
        kernel.run_trace(id, &first)?;
        let second = synthesizer.slide(&view, 0.4, 0.6, 1.0);
        let outcome = kernel.run_trace(id, &second)?;
        let total = outcome.stats.cache_hits + outcome.stats.cache_misses;
        let rate = if total == 0 {
            0.0
        } else {
            outcome.stats.cache_hits as f64 / total as f64
        };
        Ok((rate, outcome.stats.cache_hits))
    };
    let (with, hits) = run(KernelConfig::default())?;
    let (without, _) = run(KernelConfig::default().with_cache(false))?;
    Ok(CacheAblation {
        second_pass_hit_rate_with: with,
        second_pass_hit_rate_without: without,
        second_pass_hits: hits,
    })
}

/// A4 — non-blocking joins (Section 2.9, "Joins").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JoinAblation {
    /// Rows consumed before the symmetric join produced its first match.
    pub symmetric_rows_to_first_match: u64,
    /// Rows consumed before the blocking join produced its first match (it
    /// must finish building its entire left side first).
    pub blocking_rows_to_first_match: u64,
    /// Total matches produced by both strategies (must agree).
    pub total_matches: u64,
    /// Wall-clock nanoseconds for the symmetric join.
    pub symmetric_wall_nanos: u64,
    /// Wall-clock nanoseconds for the blocking join.
    pub blocking_wall_nanos: u64,
}

/// Run ablation A4: the same interleaved stream of touched rows through a
/// symmetric hash join and a classical build-then-probe hash join.
pub fn ablation_join(rows_per_side: u64) -> Result<JoinAblation> {
    // Keys overlap on every 16th row so matches are sparse but present early.
    let left: Vec<(RowId, Value)> = (0..rows_per_side)
        .map(|i| {
            (
                RowId(i),
                Value::Int((i % (rows_per_side / 16).max(1)) as i64),
            )
        })
        .collect();
    let right: Vec<(RowId, Value)> = (0..rows_per_side)
        .map(|i| {
            (
                RowId(i),
                Value::Int((i % (rows_per_side / 16).max(1)) as i64),
            )
        })
        .collect();

    // Symmetric: the gesture interleaves both sides touch by touch.
    let started = Instant::now();
    let mut symmetric = SymmetricHashJoin::new();
    let mut sym_first = 0u64;
    let mut consumed = 0u64;
    let mut sym_total = 0u64;
    for i in 0..rows_per_side as usize {
        for (side, row) in [(JoinSide::Left, &left[i]), (JoinSide::Right, &right[i])] {
            consumed += 1;
            let matches = symmetric.push(side, row.0, row.1.clone());
            if !matches.is_empty() && sym_first == 0 {
                sym_first = consumed;
            }
            sym_total += matches.len() as u64;
        }
    }
    let symmetric_wall = started.elapsed().as_nanos() as u64;

    // Blocking: the entire left side must be consumed before probing begins.
    let started = Instant::now();
    let mut blocking = BlockingHashJoin::new();
    let mut consumed = 0u64;
    for (row, key) in &left {
        consumed += 1;
        blocking.build_row(*row, key.clone());
    }
    blocking.finish_build();
    let mut blk_first = 0u64;
    let mut blk_total = 0u64;
    for (row, key) in &right {
        consumed += 1;
        let matches = blocking.probe(*row, key.clone());
        if !matches.is_empty() && blk_first == 0 {
            blk_first = consumed;
        }
        blk_total += matches.len() as u64;
    }
    let blocking_wall = started.elapsed().as_nanos() as u64;

    debug_assert_eq!(sym_total, blk_total);
    Ok(JoinAblation {
        symmetric_rows_to_first_match: sym_first,
        blocking_rows_to_first_match: blk_first,
        total_matches: sym_total,
        symmetric_wall_nanos: symmetric_wall,
        blocking_wall_nanos: blocking_wall,
    })
}

/// A5 — incremental rotation (Section 2.8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RotationAblation {
    /// Nanoseconds until the object is first queryable in the new layout with
    /// eager (all-at-once) rotation: the full conversion time.
    pub eager_first_queryable_nanos: u64,
    /// Nanoseconds until the object is first queryable (first chunk converted)
    /// with incremental rotation.
    pub incremental_first_queryable_nanos: u64,
    /// Total nanoseconds for the incremental rotation to finish.
    pub incremental_total_nanos: u64,
    /// Rows converted per incremental step.
    pub chunk_rows: u64,
}

/// Run ablation A5 on a two-column table of `rows` rows.
pub fn ablation_rotation(rows: u64, chunk_rows: u64) -> Result<RotationAblation> {
    let table = Table::from_columns(
        "a5",
        vec![
            Column::from_i64("id", (0..rows as i64).collect()),
            Column::from_f64("v", (0..rows).map(|i| i as f64).collect()),
        ],
    )?;
    let matrix = Matrix::from_table(table);

    // Eager: first queryable only when the whole conversion is done.
    let started = Instant::now();
    let task = RotationTask::new(matrix.clone(), rows.max(1));
    let _rotated = task.finish()?;
    let eager = started.elapsed().as_nanos() as u64;

    // Incremental: queryable after the first chunk; total includes all chunks.
    let started = Instant::now();
    let mut task = RotationTask::new(matrix, chunk_rows.max(1));
    task.step()?;
    let first_chunk = started.elapsed().as_nanos() as u64;
    // The partially rotated object is queryable right now.
    let _ = task.get(RowId(0), 0)?;
    while !task.is_complete() {
        task.step()?;
    }
    let total = started.elapsed().as_nanos() as u64;

    Ok(RotationAblation {
        eager_first_queryable_nanos: eager,
        incremental_first_queryable_nanos: first_chunk,
        incremental_total_nanos: total,
        chunk_rows: chunk_rows.max(1),
    })
}

/// A6 — per-touch response budget (Section 4, "Interactive Behavior").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetAblation {
    /// Maximum rows aggregated for a single touch with the budget enabled.
    pub max_rows_per_touch_with: u64,
    /// Maximum rows aggregated for a single touch without a budget.
    pub max_rows_per_touch_without: u64,
    /// Refinement steps executed with the budget enabled.
    pub refinements_with: u64,
    /// Entries returned with the budget enabled.
    pub entries_with: u64,
    /// Entries returned without a budget.
    pub entries_without: u64,
}

/// Run ablation A6: interactive summaries with an oversized half-window so a
/// full window cannot fit the per-touch budget of `budget_micros`
/// microseconds; the comparison run has no budget at all.
pub fn ablation_budget(rows: u64, half_window: u64, budget_micros: u64) -> Result<BudgetAblation> {
    let run = |budget_micros: u64| -> Result<(u64, u64, u64)> {
        let mut config = KernelConfig::default().with_adaptive_sampling(false);
        config.touch_budget_micros = budget_micros;
        let mut kernel = Kernel::new(config);
        let id = kernel.load_column("a6", (0..rows as i64).collect(), SizeCm::new(2.0, 10.0))?;
        kernel.set_action(
            id,
            TouchAction::Summary {
                half_window: Some(half_window),
                kind: AggregateKind::Avg,
            },
        )?;
        let view = kernel.view(id)?;
        // An exploratory slide includes pauses, giving the budgeted kernel idle
        // time to pay down refinement debt.
        let trace = GestureSynthesizer::new(60.0).exploratory_slide(&view, 2.0);
        let outcome = kernel.run_trace(id, &trace)?;
        let max_rows_per_touch = if outcome.stats.entries_returned == 0 {
            0
        } else {
            // rows_touched / entries is the average; for the unlimited run every
            // touch aggregates the full window so the average equals the max.
            outcome.stats.rows_touched / outcome.stats.entries_returned.max(1)
        };
        Ok((
            max_rows_per_touch,
            outcome.stats.refinements,
            outcome.stats.entries_returned,
        ))
    };
    let (with_max, refinements, entries_with) = run(budget_micros.max(1))?;
    let (without_max, _, entries_without) = run(u64::MAX)?;
    Ok(BudgetAblation {
        max_rows_per_touch_with: with_max,
        max_rows_per_touch_without: without_max,
        refinements_with: refinements,
        entries_with,
        entries_without,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_samples_shrink_working_set() {
        let r = ablation_samples(400_000).unwrap();
        assert!(r.adaptive_working_set_bytes * 8 <= r.naive_working_set_bytes);
        // both runs deliver a comparable number of entries
        let ratio = r.adaptive_entries as f64 / r.naive_entries.max(1) as f64;
        assert!(ratio > 0.8 && ratio < 1.2, "ratio {ratio}");
    }

    #[test]
    fn a2_prefetching_warms_accesses() {
        let r = ablation_prefetch(400_000).unwrap();
        assert!(r.prefetches_issued > 0);
        assert!(r.warm_fraction_with > r.warm_fraction_without);
        assert_eq!(r.warm_fraction_without, 0.0);
        assert!(r.access_nanos_with < r.access_nanos_without);
    }

    #[test]
    fn a3_cache_hits_on_reexamination() {
        let r = ablation_cache(200_000).unwrap();
        assert!(
            r.second_pass_hit_rate_with > 0.5,
            "hit rate {}",
            r.second_pass_hit_rate_with
        );
        assert_eq!(r.second_pass_hit_rate_without, 0.0);
        assert!(r.second_pass_hits > 0);
    }

    #[test]
    fn a4_symmetric_join_produces_results_earlier() {
        let r = ablation_join(10_000).unwrap();
        assert!(r.symmetric_rows_to_first_match < 100);
        assert!(r.blocking_rows_to_first_match > 10_000);
        assert!(r.total_matches > 0);
    }

    #[test]
    fn a5_incremental_rotation_queryable_sooner() {
        let r = ablation_rotation(200_000, 10_000).unwrap();
        assert!(
            r.incremental_first_queryable_nanos * 2 < r.eager_first_queryable_nanos,
            "incremental {} vs eager {}",
            r.incremental_first_queryable_nanos,
            r.eager_first_queryable_nanos
        );
        assert!(r.incremental_total_nanos >= r.incremental_first_queryable_nanos);
    }

    #[test]
    fn a6_budget_caps_per_touch_work() {
        let r = ablation_budget(500_000, 100_000, 200).unwrap();
        assert!(
            r.max_rows_per_touch_with < r.max_rows_per_touch_without,
            "with {} without {}",
            r.max_rows_per_touch_with,
            r.max_rows_per_touch_without
        );
        assert!(r.entries_with > 0);
        assert!(r.entries_without > 0);
    }
}
