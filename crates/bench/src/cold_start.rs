//! Cold-start benchmark: reopening a persisted catalog and exploring it
//! through buffer pools smaller than the dataset.
//!
//! The persistent backend's claim is that `SharedCatalog::open` is *lazy*:
//! no row is read at open, pages fault through the buffer pool on first
//! touch, and a catalog larger than the pool (or than RAM) streams under
//! exploration with memory bounded by `pool_pages * page_size`. This sweep
//! measures exactly that boundary:
//!
//! * **open latency** — recover the manifest and rebuild the object table
//!   (no row data),
//! * **open→first-touch latency** — the first probe trace, paying the first
//!   page faults,
//! * **steady touches/s** — the full seeded trace mix streaming through the
//!   pool, with fault/hit/eviction counts from the pager,
//!
//! at pool sizes of 100%, 50% and 10% of the dataset's pages. Every point is
//! verified: the digest of the whole trace sequence against the reopened
//! catalog must be bit-identical to the same sequence against the in-memory
//! catalog the directory was persisted from.

use crate::report::{fmt_count, fmt_f64, render_table};
use dbtouch_core::catalog::SharedCatalog;
use dbtouch_core::kernel::{Kernel, TouchAction};
use dbtouch_core::operators::aggregate::AggregateKind;
use dbtouch_gesture::synthesizer::GestureSynthesizer;
use dbtouch_gesture::trace::GestureTrace;
use dbtouch_server::{digest_outcomes, TraceOutcome};
use dbtouch_types::{DbTouchError, KernelConfig, Result, SizeCm};
use dbtouch_workload::Scenario;
use std::sync::Arc;
use std::time::Instant;

/// One measured pool size.
#[derive(Debug, Clone)]
pub struct ColdStartPoint {
    /// Pool size as a fraction of the dataset's pages.
    pub pool_fraction: f64,
    /// Pool capacity in pages.
    pub pool_pages: usize,
    /// `SharedCatalog::open` latency, microseconds.
    pub open_micros: u64,
    /// Latency of the first (probe) trace after open — the cold-fault path —
    /// microseconds.
    pub first_touch_micros: u64,
    /// Touch samples processed by the steady trace mix.
    pub touches: u64,
    /// Steady-state throughput, touches per second.
    pub touches_per_sec: f64,
    /// Pages faulted from disk across the whole run.
    pub faults: u64,
    /// Page reads served by the pool.
    pub pool_hits: u64,
    /// Pages evicted to respect the pool bound.
    pub evictions: u64,
    /// Whether the full-run digest matched the in-memory baseline.
    pub verified: bool,
}

/// The cold-start sweep.
#[derive(Debug, Clone)]
pub struct ColdStartReport {
    /// Rows of the persisted scenario column.
    pub rows: u64,
    /// Pages the dataset occupies on disk (page file size / page size).
    pub dataset_pages: u64,
    /// Traces in the steady mix (excluding the probe).
    pub traces: usize,
    /// Measured points, largest pool first.
    pub points: Vec<ColdStartPoint>,
}

impl ColdStartReport {
    /// Render the sweep as an aligned text table.
    pub fn table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.0}%", p.pool_fraction * 100.0),
                    fmt_count(p.pool_pages as u64),
                    fmt_count(p.open_micros),
                    fmt_count(p.first_touch_micros),
                    fmt_f64(p.touches_per_sec, 0),
                    fmt_count(p.faults),
                    fmt_count(p.pool_hits),
                    fmt_count(p.evictions),
                    if p.verified { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect();
        format!(
            "cold start: {} rows persisted as {} pages, {} steady traces\n{}",
            fmt_count(self.rows),
            fmt_count(self.dataset_pages),
            self.traces,
            render_table(
                &[
                    "pool",
                    "pages",
                    "open_us",
                    "first_touch_us",
                    "touches/s",
                    "faults",
                    "pool_hits",
                    "evictions",
                    "verified",
                ],
                &rows,
            )
        )
    }
}

/// The deterministic trace mix: one short probe (the "first touch"), then an
/// alternation of plain and exploratory slides over the whole object.
fn plan_traces(view: &dbtouch_gesture::view::View, traces: usize) -> Vec<GestureTrace> {
    let mut synthesizer = GestureSynthesizer::new(60.0);
    let mut out = Vec::with_capacity(traces + 1);
    out.push(synthesizer.slide_down(view, 0.1));
    for i in 0..traces {
        if i % 2 == 0 {
            out.push(synthesizer.slide_down(view, 1.0));
        } else {
            out.push(synthesizer.exploratory_slide(view, 2.0));
        }
    }
    out
}

fn run_all(
    catalog: &Arc<SharedCatalog>,
    object: dbtouch_core::kernel::ObjectId,
    traces: &[GestureTrace],
) -> Result<u64> {
    let mut kernel = Kernel::from_catalog(Arc::clone(catalog));
    kernel.set_action(
        object,
        TouchAction::Summary {
            half_window: Some(500),
            kind: AggregateKind::Avg,
        },
    )?;
    let mut outcomes = Vec::with_capacity(traces.len());
    for trace in traces {
        outcomes.push(TraceOutcome {
            object,
            outcome: kernel.run_trace(object, trace)?,
        });
    }
    Ok(digest_outcomes(outcomes.iter()))
}

/// Run the sweep: persist a seeded catalog once, then for each pool fraction
/// reopen it cold and measure open, first-touch and steady throughput.
pub fn run_cold_start_sweep(
    rows: usize,
    fractions: &[f64],
    traces: usize,
) -> Result<ColdStartReport> {
    let scenario = Scenario::sky_survey(rows, 29);
    // Adaptive sampling steers slides onto the (tiny) coarse sample levels,
    // which is the right default for interactivity but would let this bench
    // serve everything from a handful of pages. The point here is the
    // streaming boundary, so every touch reads base data through the pool.
    let config = KernelConfig::default().with_adaptive_sampling(false);
    let catalog = Arc::new(SharedCatalog::new(config.clone()));
    let object = catalog.load_column_typed(scenario.signal_column(), SizeCm::new(2.0, 12.0))?;
    let view = catalog.data(object)?.base_view().clone();
    let plan = plan_traces(&view, traces);
    let baseline = run_all(&catalog, object, &plan)?;

    let dir = std::env::temp_dir().join(format!("dbtouch-cold-start-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    catalog.persist_to(&dir)?;
    let page_file = std::fs::metadata(dir.join(dbtouch_storage::persist::PAGES_FILE))
        .map_err(|e| DbTouchError::Io(format!("stat page file: {e}")))?;
    let dataset_pages = page_file.len() / config.page_size_bytes as u64;
    drop(catalog);

    let mut points = Vec::with_capacity(fractions.len());
    for &fraction in fractions {
        let pool_pages = ((dataset_pages as f64 * fraction).ceil() as usize).max(8);
        let config = config.clone().with_buffer_pool_pages(pool_pages);

        let opened_at = Instant::now();
        let reopened = Arc::new(SharedCatalog::open(&dir, config)?);
        let open_micros = opened_at.elapsed().as_micros() as u64;
        let object = reopened.object_id(&scenario.name)?;

        let probe_at = Instant::now();
        let probe_digest = run_all(&reopened, object, &plan[..1])?;
        let first_touch_micros = probe_at.elapsed().as_micros() as u64;

        let steady_at = Instant::now();
        let steady_digest = run_all(&reopened, object, &plan)?;
        let steady_nanos = steady_at.elapsed().as_nanos().max(1) as u64;
        let touches: u64 = plan.iter().map(|t| t.len() as u64).sum();
        let stats = reopened
            .pager_stats()
            .ok_or_else(|| DbTouchError::Internal("reopened catalog has no pager".into()))?;

        // The digest of the full sequence is order-sensitive; the probe runs
        // as its own kernel session in both runs, so probe and steady are
        // each comparable to the in-memory baseline of the same traces.
        let baseline_probe = run_probe_baseline(&scenario, &plan[..1])?;
        points.push(ColdStartPoint {
            pool_fraction: fraction,
            pool_pages,
            open_micros,
            first_touch_micros,
            touches,
            touches_per_sec: touches as f64 / (steady_nanos as f64 / 1e9),
            faults: stats.faults,
            pool_hits: stats.pool_hits,
            evictions: stats.evictions,
            verified: steady_digest == baseline && probe_digest == baseline_probe,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(ColdStartReport {
        rows: rows as u64,
        dataset_pages,
        traces,
        points,
    })
}

/// Baseline digest of the probe trace against a fresh in-memory catalog of
/// the same scenario (cached across points by recomputation — cheap).
fn run_probe_baseline(scenario: &Scenario, probe: &[GestureTrace]) -> Result<u64> {
    let catalog = Arc::new(SharedCatalog::new(
        KernelConfig::default().with_adaptive_sampling(false),
    ));
    let object = catalog.load_column_typed(scenario.signal_column(), SizeCm::new(2.0, 12.0))?;
    run_all(&catalog, object, probe)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_verified_at_small_pools() {
        let report = run_cold_start_sweep(20_000, &[1.0, 0.1], 2).unwrap();
        assert_eq!(report.points.len(), 2);
        for point in &report.points {
            assert!(point.verified, "digest diverged at {point:?}");
            assert!(point.touches_per_sec > 0.0);
            assert!(point.faults > 0, "cold open must fault pages");
        }
        // The 10% pool cannot hold the dataset: it must evict.
        let small = &report.points[1];
        assert!((small.pool_pages as u64) < report.dataset_pages);
        assert!(small.evictions > 0, "{small:?}");
        assert!(!report.table().is_empty());
    }
}
