//! Segment-scan benchmark: touches/s and per-touch latency vs
//! `scan_parallelism` on one large object.
//!
//! A single served session slides over a multi-million-row integer column
//! with summary windows wide enough that every touch decomposes into many
//! segment morsels (see `dbtouch_core::morsel`). The same seeded plan runs
//! once per `scan_parallelism` setting; the only thing that may change is
//! the wall clock. Every point is digest-verified against the
//! `scan_parallelism = 1` baseline — the segment kernel's merge is exact, so
//! parallel digests must equal the sequential ones bit for bit.
//!
//! `segment_rows` is deliberately *not* aligned to the zone-map block size:
//! aligned segments are answered from the index without touching data, which
//! is the fast path explorers want but would make this bench measure index
//! lookups instead of scan fan-out. Unaligned segments are always scanned.

use dbtouch_core::catalog::SharedCatalog;
use dbtouch_server::ServerConfig;
use dbtouch_types::{Result, SizeCm};
use dbtouch_workload::concurrent::{plan_segment_sweep, run_concurrent, segment_sweep_config};
use dbtouch_workload::Scenario;
use std::sync::Arc;

/// One measured `scan_parallelism` setting.
#[derive(Debug, Clone)]
pub struct SegmentScanPoint {
    /// The `KernelConfig::scan_parallelism` this point ran at.
    pub scan_parallelism: usize,
    /// Total touch samples processed.
    pub total_touches: u64,
    /// Throughput: touches per second of wall time.
    pub touches_per_sec: f64,
    /// Wall time of the run in seconds.
    pub wall_secs: f64,
    /// Median per-trace mean per-touch latency, microseconds.
    pub p50_touch_micros: f64,
    /// 99th-percentile per-trace mean per-touch latency, microseconds.
    pub p99_touch_micros: f64,
    /// Segments executed by the kernel (scanned or index-answered).
    pub segments_scanned: u64,
    /// Segments answered from zone-map block stats without reading data.
    pub pruned_segments: u64,
    /// Morsels claimed by pool helper threads (0 on the sequential path).
    pub steals: u64,
    /// The session's result digest.
    pub digest: u64,
    /// Digest equals the `scan_parallelism = 1` baseline and the run was
    /// error-free.
    pub verified: bool,
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct SegmentScanReport {
    /// Rows in the scanned integer column.
    pub rows: u64,
    /// Rows per segment morsel (unaligned to zone blocks; see module doc).
    pub segment_rows: u64,
    /// Summary half-window in rows: each touch aggregates up to
    /// `2 * half_window + 1` rows.
    pub half_window: u64,
    /// Gesture traces the session performs per point.
    pub traces: usize,
    /// One point per swept `scan_parallelism`, in sweep order.
    pub points: Vec<SegmentScanPoint>,
}

/// Run the sweep: the same seeded single-session plan at every
/// `scan_parallelism` in `parallelisms` (sweep 1 first — it is the digest
/// baseline the other points verify against).
pub fn run_segment_scan_sweep(
    rows: usize,
    parallelisms: &[usize],
    traces: usize,
) -> Result<SegmentScanReport> {
    let scenario = Scenario::monitoring_stream(rows, 17);
    // Wide windows (half the object at the center touch) over many unaligned
    // segments: the per-touch work a scan pool can actually split.
    let half_window = (rows as u64 / 4).max(1);
    let segment_rows = 50_000;

    let mut points = Vec::with_capacity(parallelisms.len());
    let mut plan = None;
    let mut baseline_digest = None;
    for &scan_parallelism in parallelisms {
        let catalog = Arc::new(SharedCatalog::new(segment_sweep_config(
            scan_parallelism,
            segment_rows,
        )));
        let id = catalog.load_column_typed(scenario.signal_column_i64(), SizeCm::new(2.0, 12.0))?;
        // Plan once: the seeded traces depend only on the (identical) view.
        let plan = match &plan {
            Some(p) => p,
            None => plan.insert(plan_segment_sweep(&catalog, id, traces, half_window, 99)?),
        };
        let run = run_concurrent(
            &catalog,
            id,
            std::slice::from_ref(plan),
            ServerConfig::with_workers(1).with_raw_latency(true),
        )?;
        let session = &run.sessions[0];
        let digest = session.result_digest();
        let baseline = *baseline_digest.get_or_insert(digest);
        let latency = run.latency_summary();
        let (mut segments_scanned, mut pruned_segments) = (0u64, 0u64);
        for outcome in &session.outcomes {
            segments_scanned += outcome.outcome.stats.segments_scanned;
            pruned_segments += outcome.outcome.stats.pruned_segments;
        }
        let steals = catalog
            .telemetry()
            .snapshot()
            .scalar("morsel.steals")
            .unwrap_or(0);
        points.push(SegmentScanPoint {
            scan_parallelism,
            total_touches: run.total_touches(),
            touches_per_sec: run.touches_per_sec(),
            wall_secs: run.wall_nanos as f64 / 1e9,
            p50_touch_micros: latency.p50_nanos as f64 / 1e3,
            p99_touch_micros: latency.p99_nanos as f64 / 1e3,
            segments_scanned,
            pruned_segments,
            steals,
            digest,
            verified: digest == baseline && run.errors().is_empty(),
        });
    }
    Ok(SegmentScanReport {
        rows: rows as u64,
        segment_rows,
        half_window,
        traces,
        points,
    })
}

impl SegmentScanReport {
    /// The measured point at `scan_parallelism`, if the sweep ran it.
    pub fn point(&self, scan_parallelism: usize) -> Option<&SegmentScanPoint> {
        self.points
            .iter()
            .find(|p| p.scan_parallelism == scan_parallelism)
    }

    /// Throughput speedup of each parallel point over `scan_parallelism = 1`,
    /// as `(scan_parallelism, speedup)`.
    pub fn speedups(&self) -> Vec<(usize, f64)> {
        let Some(baseline) = self.point(1).filter(|p| p.touches_per_sec > 0.0) else {
            return Vec::new();
        };
        self.points
            .iter()
            .filter(|p| p.scan_parallelism > 1)
            .map(|p| {
                (
                    p.scan_parallelism,
                    p.touches_per_sec / baseline.touches_per_sec,
                )
            })
            .collect()
    }

    /// Render the sweep as an aligned text table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "segment scan sweep — {} rows, segment_rows {}, half-window {}, {} traces/point\n",
            self.rows, self.segment_rows, self.half_window, self.traces
        ));
        out.push_str(
            "parallelism    touches   touches/s    wall s   p50 us/touch   p99 us/touch     segments   pruned     steals   identical\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:>11}  {:>9}  {:>10.0}  {:>8.2}  {:>13.1}  {:>13.1}  {:>11}  {:>7}  {:>9}  {}\n",
                p.scan_parallelism,
                p.total_touches,
                p.touches_per_sec,
                p.wall_secs,
                p.p50_touch_micros,
                p.p99_touch_micros,
                p.segments_scanned,
                p.pruned_segments,
                p.steals,
                if p.verified { "yes" } else { "NO" },
            ));
        }
        for (parallelism, speedup) in self.speedups() {
            out.push_str(&format!(
                "parallelism {parallelism}: {speedup:.2}x the sequential throughput\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_digest_identical_and_counts_segments() {
        let report = run_segment_scan_sweep(120_000, &[1, 2, 4], 2).unwrap();
        assert_eq!(report.points.len(), 3);
        let baseline = report.point(1).unwrap();
        assert_eq!(baseline.steals, 0, "no pool at parallelism 1");
        for point in &report.points {
            assert!(point.verified, "point {point:?}");
            assert!(point.total_touches > 0);
            assert!(
                point.segments_scanned > point.total_touches,
                "wide windows must decompose into several segments per touch"
            );
            assert_eq!(point.digest, baseline.digest);
            // Unaligned segment_rows: nothing can be index-answered, every
            // segment does real scan work.
            assert_eq!(point.pruned_segments, 0);
            // Identical decomposition at every parallelism.
            assert_eq!(point.segments_scanned, baseline.segments_scanned);
        }
        assert_eq!(report.speedups().len(), 2);
    }
}
