//! Shared-result-cache effectiveness benchmark.
//!
//! Drives the skewed hot-object workload (every session runs the identical
//! summary plan over one object — the "room of analysts" case) through the
//! exploration server twice per session count: once with the shared
//! cross-session result cache disabled and once with it enabled. Reports
//! touches/s and p50/p99 per-touch latency for both configurations plus the
//! cache hit rate, and verifies the cache is result-transparent: the
//! cache-on digests must equal both the cache-off digests and the
//! sequential replay, for every session count.

use dbtouch_server::ServerConfig;
use dbtouch_types::{KernelConfig, Result};
use dbtouch_workload::concurrent::{
    plan_hot_object, run_concurrent, run_sequential, scenario_catalog,
};
use dbtouch_workload::Scenario;

/// One measured point: the same workload with the shared cache off vs. on.
#[derive(Debug, Clone)]
pub struct CacheEffectivenessPoint {
    /// Simultaneous sessions driven.
    pub sessions: usize,
    /// Total touch samples processed (identical for both configurations).
    pub total_touches: u64,
    /// Throughput with the shared cache disabled, touches/s.
    pub touches_per_sec_off: f64,
    /// Throughput with the shared cache enabled, touches/s.
    pub touches_per_sec_on: f64,
    /// p50 of per-trace mean per-touch time, cache off, microseconds.
    pub p50_micros_off: f64,
    /// p50 of per-trace mean per-touch time, cache on, microseconds.
    pub p50_micros_on: f64,
    /// p99 of per-trace mean per-touch time, cache off, microseconds.
    pub p99_micros_off: f64,
    /// p99 of per-trace mean per-touch time, cache on, microseconds.
    pub p99_micros_on: f64,
    /// Shared-cache hits across all sessions (cache-on run).
    pub shared_hits: u64,
    /// Shared-cache misses across all sessions (cache-on run).
    pub shared_misses: u64,
    /// Shared-cache hit rate of the cache-on run in `[0, 1]`.
    pub hit_rate: f64,
    /// Whether cache-on, cache-off and the sequential replay all produced
    /// bit-identical result digests.
    pub result_transparent: bool,
}

impl CacheEffectivenessPoint {
    /// Throughput ratio on/off (>1 means the cache helped).
    pub fn speedup(&self) -> f64 {
        if self.touches_per_sec_off == 0.0 {
            0.0
        } else {
            self.touches_per_sec_on / self.touches_per_sec_off
        }
    }
}

/// The full cache-effectiveness sweep.
#[derive(Debug, Clone)]
pub struct CacheEffectivenessReport {
    /// Rows in the hot object.
    pub rows: u64,
    /// Gesture traces each session performs.
    pub traces_per_session: usize,
    /// Measured points, in session-count order.
    pub points: Vec<CacheEffectivenessPoint>,
}

/// Run the sweep: for each session count, the identical hot-object plans with
/// the shared cache off and on, both verified against the sequential replay.
pub fn run_cache_effectiveness_sweep(
    rows: usize,
    session_counts: &[usize],
    traces_per_session: usize,
) -> Result<CacheEffectivenessReport> {
    let scenario = Scenario::sky_survey(rows, 17);
    let mut points = Vec::with_capacity(session_counts.len());
    for &sessions in session_counts {
        // Fresh catalogs per point so a previous point's warm cache cannot
        // flatter a later measurement. Same scenario + seeds → identical data
        // and plans in both configurations.
        let (catalog_off, object_off) =
            scenario_catalog(&scenario, KernelConfig::default().with_shared_cache(false))?;
        let (catalog_on, object_on) =
            scenario_catalog(&scenario, KernelConfig::default().with_shared_cache(true))?;
        let plans_off =
            plan_hot_object(&catalog_off, object_off, sessions, traces_per_session, 99)?;
        let plans_on = plan_hot_object(&catalog_on, object_on, sessions, traces_per_session, 99)?;

        let off = run_concurrent(
            &catalog_off,
            object_off,
            &plans_off,
            ServerConfig::default(),
        )?;
        let on = run_concurrent(&catalog_on, object_on, &plans_on, ServerConfig::default())?;
        let sequential = run_sequential(&catalog_on, object_on, &plans_on)?;

        let latency_off = off.latency_summary();
        let latency_on = on.latency_summary();
        points.push(CacheEffectivenessPoint {
            sessions,
            total_touches: on.total_touches(),
            touches_per_sec_off: off.touches_per_sec(),
            touches_per_sec_on: on.touches_per_sec(),
            p50_micros_off: latency_off.p50_nanos as f64 / 1e3,
            p50_micros_on: latency_on.p50_nanos as f64 / 1e3,
            p99_micros_off: latency_off.p99_nanos as f64 / 1e3,
            p99_micros_on: latency_on.p99_nanos as f64 / 1e3,
            shared_hits: on.total_shared_cache_hits(),
            shared_misses: on.total_shared_cache_misses(),
            hit_rate: on.shared_cache_hit_rate(),
            result_transparent: on.digests() == off.digests()
                && on.digests() == sequential
                && on.errors().is_empty()
                && off.errors().is_empty(),
        });
    }
    Ok(CacheEffectivenessReport {
        rows: rows as u64,
        traces_per_session,
        points,
    })
}

impl CacheEffectivenessReport {
    /// Render the sweep as an aligned text table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cache effectiveness sweep — {} rows, {} traces/session, hot-object workload\n",
            self.rows, self.traces_per_session
        ));
        out.push_str(
            "sessions     touches   touches/s off    touches/s on   speedup   p50 off   p50 on   p99 off   p99 on   hit rate   identical\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:>8}  {:>10}  {:>14.0}  {:>14.0}  {:>8.2}  {:>8.2}  {:>7.2}  {:>8.2}  {:>7.2}  {:>9.3}  {}\n",
                p.sessions,
                p.total_touches,
                p.touches_per_sec_off,
                p.touches_per_sec_on,
                p.speedup(),
                p.p50_micros_off,
                p.p50_micros_on,
                p.p99_micros_off,
                p.p99_micros_on,
                p.hit_rate,
                if p.result_transparent { "yes" } else { "NO" },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_transparent_and_hits_on_hot_objects() {
        let report = run_cache_effectiveness_sweep(20_000, &[1, 4], 4).unwrap();
        assert_eq!(report.points.len(), 2);
        for point in &report.points {
            assert!(point.result_transparent, "point {point:?}");
            assert!(point.total_touches > 0);
            assert!(point.shared_hits > 0, "hot workload must hit: {point:?}");
            assert!(point.hit_rate > 0.0);
            assert!(point.touches_per_sec_off > 0.0);
            assert!(point.touches_per_sec_on > 0.0);
        }
        assert!(report.table().contains("hit rate"));
    }
}
