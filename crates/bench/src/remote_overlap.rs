//! Remote-overlap benchmark: overlapped vs. blocking device/cloud fetches.
//!
//! The device/cloud scenario (see `dbtouch_workload::remote`) drives K
//! concurrent summary explorers whose slow slides need sample levels the
//! device does not hold. Three configurations run the *same* plans:
//!
//! * `all_local` — no split, the ground truth and the throughput ceiling;
//! * `blocking` — every fine-level window stalls its session inline for the
//!   simulated round trip (what a naive remote integration does);
//! * `overlapped` — fine-level windows answer provisionally from the
//!   coarsest device level and refine asynchronously through the remote
//!   executor while the worker keeps processing touches.
//!
//! Every point is verified: session digests must be bit-identical to the
//! all-local sequential replay (the drained refinements reconstruct the
//! exact all-local results), reports must be fully drained, and the
//! overlapped mode must beat blocking on touches/s — the paper's "use local
//! data to feed partial answers, while in the mean time more fine-grained
//! answers are produced and delivered by the server", measured.

use dbtouch_server::ServerConfig;
use dbtouch_types::Result;
use dbtouch_workload::concurrent::{run_concurrent, run_sequential};
use dbtouch_workload::remote::{device_cloud_catalog, plan_device_cloud, RemoteMode};
use dbtouch_workload::Scenario;

/// One measured configuration at one session count.
#[derive(Debug, Clone)]
pub struct RemoteOverlapPoint {
    /// Simultaneous explorer sessions driven.
    pub sessions: usize,
    /// Which tier configuration ran (`all_local`, `blocking`, `overlapped`).
    pub mode: &'static str,
    /// Total touch samples processed.
    pub total_touches: u64,
    /// Aggregate throughput: touches per second of wall time.
    pub touches_per_sec: f64,
    /// Wall time of the run in seconds.
    pub wall_secs: f64,
    /// Progressive (coarse-now, refine-later) requests across all sessions.
    pub progressive_requests: u64,
    /// Inline blocking remote requests across all sessions.
    pub remote_requests: u64,
    /// Rows shipped from the simulated server.
    pub rows_shipped: u64,
    /// Simulated microseconds spent on the server link.
    pub remote_wait_micros: u64,
    /// Mean real submit→applied refinement latency, milliseconds (0 when no
    /// refinements ran).
    pub mean_refinement_latency_ms: f64,
    /// Mean per-session overlap ratio: the fraction of the simulated remote
    /// wait hidden behind useful work (1.0 = fully hidden).
    pub overlap_ratio: f64,
    /// Digests bit-identical to the all-local sequential replay, no errors,
    /// every refinement drained.
    pub verified: bool,
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct RemoteOverlapReport {
    /// Rows in the explored signal column.
    pub rows: u64,
    /// Gesture traces each session performs (even = slow/remote, odd =
    /// fast/local).
    pub traces_per_session: usize,
    /// Measured points: for each session count, one point per mode.
    pub points: Vec<RemoteOverlapPoint>,
}

/// Run the sweep at the default WAN model (40ms round trip): for each
/// session count, the same seeded plans under all three configurations,
/// digest-verified against the all-local sequential replay.
pub fn run_remote_overlap_sweep(
    rows: usize,
    session_counts: &[usize],
    traces_per_session: usize,
) -> Result<RemoteOverlapReport> {
    let scenario = Scenario::sky_survey(rows, 23);
    let mut points = Vec::with_capacity(session_counts.len() * 3);
    for &sessions in session_counts {
        // Ground truth: the all-local sequential replay of these plans.
        let (local_catalog, object) = device_cloud_catalog(&scenario, RemoteMode::AllLocal, None)?;
        let plans = plan_device_cloud(&local_catalog, object, sessions, traces_per_session, 4242)?;
        let expected = run_sequential(&local_catalog, object, &plans)?;

        for mode in [
            RemoteMode::AllLocal,
            RemoteMode::Blocking,
            RemoteMode::Overlapped,
        ] {
            let (catalog, id) = device_cloud_catalog(&scenario, mode, None)?;
            // Enough workers that blocking-mode sleeps measure the fetch
            // discipline, not worker starvation (sleeping workers idle).
            let run = run_concurrent(&catalog, id, &plans, ServerConfig::with_workers(16))?;
            let digests = run.digests();
            let drained: usize = run.sessions.iter().map(|s| s.pending_refinements()).sum();
            let verified = digests == expected && run.errors().is_empty() && drained == 0;

            let mut progressive = 0u64;
            let mut remote_requests = 0u64;
            let mut rows_shipped = 0u64;
            let mut remote_wait = 0u64;
            let mut latencies = 0u64;
            let mut latency_count = 0u64;
            let mut overlap_sum = 0.0;
            for session in &run.sessions {
                let remote = session.total_remote();
                progressive = progressive.saturating_add(remote.progressive_requests);
                remote_requests = remote_requests.saturating_add(remote.remote_requests);
                rows_shipped = rows_shipped.saturating_add(remote.rows_shipped);
                remote_wait = remote_wait.saturating_add(remote.remote_wait_micros);
                latencies =
                    latencies.saturating_add(session.refinement_latencies.iter().sum::<u64>());
                latency_count += session.refinement_latencies.len() as u64;
                overlap_sum += session.remote_overlap_ratio();
            }
            points.push(RemoteOverlapPoint {
                sessions,
                mode: mode.label(),
                total_touches: run.total_touches(),
                touches_per_sec: run.touches_per_sec(),
                wall_secs: run.wall_nanos as f64 / 1e9,
                progressive_requests: progressive,
                remote_requests,
                rows_shipped,
                remote_wait_micros: remote_wait,
                mean_refinement_latency_ms: if latency_count == 0 {
                    0.0
                } else {
                    latencies as f64 / latency_count as f64 / 1e6
                },
                overlap_ratio: overlap_sum / run.sessions.len().max(1) as f64,
                verified,
            });
        }
    }
    Ok(RemoteOverlapReport {
        rows: rows as u64,
        traces_per_session,
        points,
    })
}

impl RemoteOverlapReport {
    /// The measured point of `(sessions, mode)`, if the sweep ran it.
    pub fn point(&self, sessions: usize, mode: &str) -> Option<&RemoteOverlapPoint> {
        self.points
            .iter()
            .find(|p| p.sessions == sessions && p.mode == mode)
    }

    /// Overlapped speedup over blocking at each session count, as
    /// `(sessions, overlapped_touches_per_sec / blocking_touches_per_sec)`.
    pub fn speedups(&self) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .filter(|p| p.mode == "overlapped")
            .filter_map(|p| {
                let blocking = self.point(p.sessions, "blocking")?;
                (blocking.touches_per_sec > 0.0)
                    .then(|| (p.sessions, p.touches_per_sec / blocking.touches_per_sec))
            })
            .collect()
    }

    /// Render the sweep as an aligned text table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "remote overlap sweep — {} rows, {} traces/session, default WAN (40ms RTT)\n",
            self.rows, self.traces_per_session
        ));
        out.push_str(
            "sessions  mode          touches   touches/s    wall s   progressive   blocking-req   rows shipped   sim wait s   refine ms   overlap   identical\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:>8}  {:<10}  {:>9}  {:>10.0}  {:>8.2}  {:>11}  {:>13}  {:>13}  {:>11.2}  {:>9.1}  {:>8.2}  {}\n",
                p.sessions,
                p.mode,
                p.total_touches,
                p.touches_per_sec,
                p.wall_secs,
                p.progressive_requests,
                p.remote_requests,
                p.rows_shipped,
                p.remote_wait_micros as f64 / 1e6,
                p.mean_refinement_latency_ms,
                p.overlap_ratio,
                if p.verified { "yes" } else { "NO" },
            ));
        }
        for (sessions, speedup) in self.speedups() {
            out.push_str(&format!(
                "{sessions:>8} sessions: overlapped sustains {speedup:.1}x the blocking throughput\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_verifies_and_overlap_beats_blocking() {
        let report = run_remote_overlap_sweep(60_000, &[1, 2], 1).unwrap();
        assert_eq!(report.points.len(), 6);
        for point in &report.points {
            assert!(point.verified, "point {point:?}");
            assert!(point.total_touches > 0);
            match point.mode {
                "all_local" => {
                    assert_eq!(point.progressive_requests + point.remote_requests, 0);
                    assert_eq!(point.rows_shipped, 0);
                }
                "blocking" => {
                    assert!(point.remote_requests > 0);
                    assert_eq!(point.progressive_requests, 0);
                    assert!(point.overlap_ratio < 0.05, "blocking hides nothing");
                }
                "overlapped" => {
                    assert!(point.progressive_requests > 0);
                    assert_eq!(point.remote_requests, 0);
                    assert!(point.mean_refinement_latency_ms >= 40.0);
                }
                other => panic!("unexpected mode {other}"),
            }
        }
        let speedups = report.speedups();
        assert_eq!(speedups.len(), 2);
        for (sessions, speedup) in speedups {
            assert!(
                speedup > 2.0,
                "{sessions} sessions: overlapped only {speedup:.2}x faster than blocking"
            );
        }
    }
}
