//! Figure 4(a) and Figure 4(b) reproduction.
//!
//! Paper setup (Section 3, "Evaluation"): a vertical rectangle object
//! representing a column of 10^7 integer values, 10 centimetres tall. The query
//! is interactive summaries with an average aggregation and ~10 data entries per
//! summary.
//!
//! * **Figure 4(a)** — the slide gesture is applied top-to-bottom three times,
//!   each time completed at a different speed; the measurement is the number of
//!   data entries that appear (results returned). Slower gestures register more
//!   touch input and therefore return more entries.
//! * **Figure 4(b)** — a zoom-in gesture progressively doubles the object size;
//!   for each size a slide of the same *speed* is applied (so it takes twice as
//!   long on a twice-as-big object); the measurement is again the number of
//!   entries returned, which grows with the object size.
//!
//! We do not try to match the absolute counts of the 2012 iPad 1 (its touch
//! delivery rate while doing work was far below 60 Hz); EXPERIMENTS.md records
//! both a 60 Hz run and a 15 Hz run, and the *shape* (roughly linear growth) is
//! the reproduction target.

use dbtouch_core::kernel::{Kernel, TouchAction};
use dbtouch_core::operators::aggregate::AggregateKind;
use dbtouch_gesture::synthesizer::GestureSynthesizer;
use dbtouch_types::{KernelConfig, Result, SizeCm};
use serde::{Deserialize, Serialize};

/// Configuration of a Figure 4 run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureConfig {
    /// Number of integer values in the column (the paper uses 10^7).
    pub rows: u64,
    /// Height of the data object in centimetres (the paper uses 10).
    pub object_height_cm: f64,
    /// Touch sampling rate of the simulated device, in Hz.
    pub touch_rate_hz: f64,
    /// Half-window of the interactive summary (the paper uses ~10 entries per
    /// summary, i.e. a half-window of 5).
    pub summary_half_window: u64,
}

impl Default for FigureConfig {
    fn default() -> Self {
        FigureConfig {
            rows: 10_000_000,
            object_height_cm: 10.0,
            touch_rate_hz: 60.0,
            summary_half_window: 5,
        }
    }
}

impl FigureConfig {
    /// A reduced-scale configuration for tests.
    pub fn small() -> FigureConfig {
        FigureConfig {
            rows: 200_000,
            ..FigureConfig::default()
        }
    }

    /// A configuration approximating the iPad 1's effective touch delivery rate.
    pub fn ipad_like() -> FigureConfig {
        FigureConfig {
            touch_rate_hz: 15.0,
            ..FigureConfig::default()
        }
    }
}

/// One measured point of a Figure 4 series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure4Point {
    /// The x value: gesture completion time in seconds (4a) or object size in
    /// centimetres (4b).
    pub x: f64,
    /// Data entries returned (result values that appeared).
    pub entries_returned: u64,
    /// Rows read from storage to produce those entries.
    pub rows_touched: u64,
    /// Which sample level served most touches.
    pub dominant_sample_level: u8,
}

/// A full Figure 4 series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure4Report {
    /// "fig4a" or "fig4b".
    pub figure: String,
    /// The configuration used.
    pub config: FigureConfig,
    /// The measured points.
    pub points: Vec<Figure4Point>,
}

fn build_kernel(config: &FigureConfig) -> Result<(Kernel, dbtouch_core::kernel::ObjectId)> {
    let kernel_config = KernelConfig::figure4()
        .with_touch_sample_rate(config.touch_rate_hz)
        .with_summary_half_window(config.summary_half_window);
    let mut kernel = Kernel::new(kernel_config);
    let values: Vec<i64> = (0..config.rows as i64).collect();
    let id = kernel.load_column(
        "figure4_column",
        values,
        SizeCm::new(2.0, config.object_height_cm),
    )?;
    kernel.set_action(
        id,
        TouchAction::Summary {
            half_window: Some(config.summary_half_window),
            kind: AggregateKind::Avg,
        },
    )?;
    Ok((kernel, id))
}

/// Run Figure 4(a): vary the gesture completion time, measure entries returned.
/// `gesture_seconds` defaults to the paper's 0.5–4 s sweep when empty.
pub fn run_figure4a(config: &FigureConfig, gesture_seconds: &[f64]) -> Result<Figure4Report> {
    let durations: Vec<f64> = if gesture_seconds.is_empty() {
        vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]
    } else {
        gesture_seconds.to_vec()
    };
    let (mut kernel, id) = build_kernel(config)?;
    let mut synthesizer = GestureSynthesizer::new(config.touch_rate_hz);
    let mut points = Vec::with_capacity(durations.len());
    for &secs in &durations {
        let view = kernel.view(id)?;
        let trace = synthesizer.slide_down(&view, secs);
        let outcome = kernel.run_trace(id, &trace)?;
        points.push(Figure4Point {
            x: secs,
            entries_returned: outcome.stats.entries_returned,
            rows_touched: outcome.stats.rows_touched,
            dominant_sample_level: dominant_level(&outcome.stats.sample_level_usage),
        });
    }
    Ok(Figure4Report {
        figure: "fig4a".to_string(),
        config: config.clone(),
        points,
    })
}

/// Run Figure 4(b): progressively double the object size via zoom-in gestures;
/// slide at a constant speed (so the slide duration doubles with the size) and
/// measure entries returned. `doublings` is the number of zoom-in steps.
pub fn run_figure4b(config: &FigureConfig, doublings: u32) -> Result<Figure4Report> {
    let (mut kernel, id) = build_kernel(config)?;
    let mut synthesizer = GestureSynthesizer::new(config.touch_rate_hz);
    // Constant slide speed chosen so the initial object takes ~1.5s to traverse,
    // mirroring the paper's "same speed, double the time for double the size".
    let speed_cm_per_s = config.object_height_cm / 1.5;
    let mut points = Vec::new();
    for step in 0..=doublings {
        let view = kernel.view(id)?;
        let height = view.scroll_extent();
        let secs = height / speed_cm_per_s;
        let trace = synthesizer.slide_down(&view, secs);
        let outcome = kernel.run_trace(id, &trace)?;
        points.push(Figure4Point {
            x: height,
            entries_returned: outcome.stats.entries_returned,
            rows_touched: outcome.stats.rows_touched,
            dominant_sample_level: dominant_level(&outcome.stats.sample_level_usage),
        });
        if step < doublings {
            // Apply the zoom-in gesture through the normal gesture path.
            let pinch = synthesizer.pinch(&view, 2.0, 0.4);
            kernel.run_trace(id, &pinch)?;
        }
    }
    Ok(Figure4Report {
        figure: "fig4b".to_string(),
        config: config.clone(),
        points,
    })
}

fn dominant_level(usage: &std::collections::BTreeMap<u8, u64>) -> u8 {
    usage
        .iter()
        .max_by_key(|(_, count)| **count)
        .map(|(level, _)| *level)
        .unwrap_or(0)
}

/// Render a Figure 4 report as the table printed by the binaries.
pub fn render_report(report: &Figure4Report) -> String {
    let x_label = if report.figure == "fig4a" {
        "gesture time (s)"
    } else {
        "object size (cm)"
    };
    let rows: Vec<Vec<String>> = report
        .points
        .iter()
        .map(|p| {
            vec![
                crate::report::fmt_f64(p.x, 2),
                p.entries_returned.to_string(),
                crate::report::fmt_count(p.rows_touched),
                p.dominant_sample_level.to_string(),
            ]
        })
        .collect();
    format!(
        "{} (rows={}, {} Hz touch rate)\n{}",
        report.figure,
        crate::report::fmt_count(report.config.rows),
        report.config.touch_rate_hz,
        crate::report::render_table(
            &[
                x_label,
                "# entries returned",
                "rows touched",
                "sample level"
            ],
            &rows,
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4a_entries_grow_with_slower_gestures() {
        let report = run_figure4a(&FigureConfig::small(), &[0.5, 1.0, 2.0, 4.0]).unwrap();
        assert_eq!(report.points.len(), 4);
        for pair in report.points.windows(2) {
            assert!(
                pair[1].entries_returned > pair[0].entries_returned,
                "expected monotone growth, got {:?}",
                report.points
            );
        }
        // roughly linear in duration: 4s returns ~8x what 0.5s returns (±40%)
        let ratio = report.points[3].entries_returned as f64
            / report.points[0].entries_returned.max(1) as f64;
        assert!(ratio > 4.5 && ratio < 12.0, "ratio {ratio}");
    }

    #[test]
    fn figure4b_entries_grow_with_object_size() {
        let report = run_figure4b(&FigureConfig::small(), 3).unwrap();
        assert_eq!(report.points.len(), 4);
        for pair in report.points.windows(2) {
            assert!(pair[1].x > pair[0].x);
            assert!(pair[1].entries_returned > pair[0].entries_returned);
        }
        // doubling the size roughly doubles the entries
        let ratio = report.points[1].entries_returned as f64
            / report.points[0].entries_returned.max(1) as f64;
        assert!(ratio > 1.5 && ratio < 2.8, "ratio {ratio}");
    }

    #[test]
    fn higher_touch_rate_returns_more_entries() {
        let slow_device = FigureConfig {
            touch_rate_hz: 15.0,
            ..FigureConfig::small()
        };
        let fast_device = FigureConfig {
            touch_rate_hz: 60.0,
            ..FigureConfig::small()
        };
        let slow = run_figure4a(&slow_device, &[2.0]).unwrap();
        let fast = run_figure4a(&fast_device, &[2.0]).unwrap();
        assert!(fast.points[0].entries_returned > 2 * slow.points[0].entries_returned);
    }

    #[test]
    fn report_rendering_contains_all_points() {
        let report = run_figure4a(&FigureConfig::small(), &[1.0, 2.0]).unwrap();
        let text = render_report(&report);
        assert!(text.contains("fig4a"));
        assert!(text.contains("gesture time"));
        assert_eq!(text.lines().count(), 5); // title + header + separator + 2 rows
    }
}
