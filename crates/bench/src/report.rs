//! Small plain-text table rendering for experiment reports, plus the
//! `BENCH_<name>.json` emitter CI uploads as per-PR artifacts.

use dbtouch_types::json::Json;
use std::path::PathBuf;

/// Build a JSON object from `(key, value)` pairs; see
/// [`dbtouch_types::json::object`].
pub use dbtouch_types::json::object as json_object;

/// Write a benchmark's machine-readable output as `BENCH_<name>.json` into
/// `$DBTOUCH_BENCH_OUT` (or the working directory), returning the path. CI
/// uploads these files as artifacts so benchmark trajectories are collected
/// per PR.
pub fn write_bench_json(name: &str, value: &Json) -> std::io::Result<PathBuf> {
    let dir = std::env::var_os("DBTOUCH_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, value.pretty())?;
    Ok(path)
}

/// Render an aligned plain-text table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{:<width$}",
                    c,
                    width = widths.get(i).copied().unwrap_or(c.len())
                )
            })
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&render_row(&sep, &widths));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a float with a fixed number of decimals.
pub fn fmt_f64(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Format a large count with thousands separators.
pub fn fmt_count(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().rev().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out.chars().rev().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "metric"],
            &[
                vec!["1".to_string(), "10".to_string()],
                vec!["200".to_string(), "3".to_string()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // all lines have equal width
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("metric"));
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_000), "1,000");
        assert_eq!(fmt_count(10_000_000), "10,000,000");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(2.0, 1), "2.0");
    }
}
