//! The Appendix A exploration contest: dbTouch vs. a traditional DBMS.
//!
//! Two simulated participants receive the same data set with a hidden pattern:
//! one explores it through the dbTouch kernel (slides, summaries, zoom-in), the
//! other through SQL aggregate queries against the blocking baseline engine.
//! The report compares localization accuracy, the amount of data each system
//! had to touch, the number of interactions and the estimated elapsed time.

use dbtouch_types::{KernelConfig, Result};
use dbtouch_workload::explorer::{DbTouchExplorer, DiscoveryReport, SqlExplorer};
use dbtouch_workload::scenarios::Scenario;
use serde::{Deserialize, Serialize};

/// Which scenario the contest runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContestScenario {
    /// The generic contest data set of Appendix A.
    Contest,
    /// The astronomy sky-survey scenario from the introduction.
    SkySurvey,
    /// The IT monitoring-stream scenario from the introduction.
    Monitoring,
}

impl ContestScenario {
    /// Build the scenario's data set.
    pub fn build(&self, rows: usize, seed: u64) -> Scenario {
        match self {
            ContestScenario::Contest => Scenario::contest(rows, seed),
            ContestScenario::SkySurvey => Scenario::sky_survey(rows, seed),
            ContestScenario::Monitoring => Scenario::monitoring_stream(rows, seed),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ContestScenario::Contest => "contest",
            ContestScenario::SkySurvey => "sky_survey",
            ContestScenario::Monitoring => "monitoring",
        }
    }
}

/// The side-by-side contest outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContestReport {
    /// Scenario name.
    pub scenario: String,
    /// Data set size in rows.
    pub rows: u64,
    /// Localization tolerance used (fraction of the data).
    pub tolerance: f64,
    /// The dbTouch participant's report.
    pub dbtouch: DiscoveryReport,
    /// The SQL participant's report.
    pub sql: DiscoveryReport,
}

impl ContestReport {
    /// The winner by estimated elapsed time ("dbtouch", "sql" or "tie").
    pub fn winner_by_time(&self) -> &'static str {
        if self.dbtouch.estimated_seconds < self.sql.estimated_seconds {
            "dbtouch"
        } else if self.sql.estimated_seconds < self.dbtouch.estimated_seconds {
            "sql"
        } else {
            "tie"
        }
    }

    /// How many times more rows the SQL side touched than the dbTouch side.
    pub fn data_touched_ratio(&self) -> f64 {
        self.sql.rows_touched as f64 / self.dbtouch.rows_touched.max(1) as f64
    }
}

/// Run the contest on one scenario.
pub fn run_contest(
    scenario: ContestScenario,
    rows: usize,
    seed: u64,
    tolerance: f64,
) -> Result<ContestReport> {
    let data = scenario.build(rows, seed);
    let dbtouch = DbTouchExplorer::new(KernelConfig::default()).explore(&data, tolerance)?;
    let sql = SqlExplorer::new().explore(&data, tolerance)?;
    Ok(ContestReport {
        scenario: scenario.name().to_string(),
        rows: data.rows(),
        tolerance,
        dbtouch,
        sql,
    })
}

/// Render the contest report as the table printed by the `contest` binary.
pub fn render_contest(report: &ContestReport) -> String {
    let row = |r: &DiscoveryReport| {
        vec![
            r.system.clone(),
            crate::report::fmt_f64(r.error_fraction, 4),
            if r.found { "yes".into() } else { "no".into() },
            crate::report::fmt_count(r.rows_touched),
            crate::report::fmt_count(r.bytes_touched),
            r.interactions.to_string(),
            crate::report::fmt_f64(r.estimated_seconds, 1),
        ]
    };
    format!(
        "exploration contest: {} ({} rows, tolerance {})\n{}\nwinner by time: {} | SQL touched {:.0}x more data\n",
        report.scenario,
        crate::report::fmt_count(report.rows),
        report.tolerance,
        crate::report::render_table(
            &[
                "system",
                "localization error",
                "found",
                "rows touched",
                "bytes touched",
                "interactions",
                "est. seconds",
            ],
            &[row(&report.dbtouch), row(&report.sql)],
        ),
        report.winner_by_time(),
        report.data_touched_ratio(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contest_runs_and_dbtouch_touches_less_data() {
        let report = run_contest(ContestScenario::Contest, 150_000, 9, 0.02).unwrap();
        assert_eq!(report.dbtouch.system, "dbtouch");
        assert_eq!(report.sql.system, "sql");
        assert!(report.data_touched_ratio() > 5.0);
        assert_eq!(report.winner_by_time(), "dbtouch");
        assert!(report.dbtouch.error_fraction < 0.1);
        assert!(report.sql.error_fraction < 0.1);
    }

    #[test]
    fn contest_render_contains_both_systems() {
        let report = run_contest(ContestScenario::SkySurvey, 80_000, 3, 0.05).unwrap();
        let text = render_contest(&report);
        assert!(text.contains("dbtouch"));
        assert!(text.contains("sql"));
        assert!(text.contains("winner by time"));
    }

    #[test]
    fn scenario_builders() {
        assert_eq!(ContestScenario::Contest.name(), "contest");
        assert_eq!(ContestScenario::SkySurvey.build(1000, 1).rows(), 1000);
        assert_eq!(ContestScenario::Monitoring.build(1000, 1).rows(), 1000);
    }
}
