//! Network throughput benchmark: aggregate touch throughput and frame
//! service time versus simultaneous TCP connection count.
//!
//! Every point of the sweep brings up a loopback [`NetServer`] over one
//! shared sky-survey catalog and drives K explorers through [`TcpClient`] —
//! one connection per session, the full wire protocol round trip per
//! request. The identical plans are then replayed through the in-process
//! single-user kernel and the result digests compared bit for bit: the
//! throughput numbers are only meaningful if the wire moved the same
//! answers.
//!
//! The seeds are fixed and public ([`SCENARIO_SEED`], [`PLAN_SEED`]) so a
//! load generator in a *different process* (the `net_throughput load`
//! subcommand) can rebuild the catalog locally and verify the digests of a
//! server it only knows by address.
//!
//! [`NetServer`]: dbtouch_net::NetServer
//! [`TcpClient`]: dbtouch_net::TcpClient

use dbtouch_net::NetServer;
use dbtouch_net::TcpClient;
use dbtouch_server::{ServerConfig, SessionReport};
use dbtouch_types::{KernelConfig, Result};
use dbtouch_workload::concurrent::{
    drive_plans_over, plan_explorers, run_sequential, scenario_catalog,
};
use dbtouch_workload::Scenario;
use std::sync::Arc;
use std::time::Instant;

/// Seed of the sky-survey scenario both ends of the wire rebuild.
pub const SCENARIO_SEED: u64 = 17;
/// Seed of the explorer plans both ends of the wire rebuild.
pub const PLAN_SEED: u64 = 1234;

/// One measured point of the connection-count sweep.
#[derive(Debug, Clone)]
pub struct NetThroughputPoint {
    /// Simultaneous TCP connections (= sessions) driven.
    pub connections: usize,
    /// Worker threads serving them.
    pub workers: usize,
    /// Total touch samples processed across all sessions.
    pub total_touches: u64,
    /// Aggregate throughput: touches per second of wall time.
    pub touches_per_sec: f64,
    /// Wall time of the whole networked run, milliseconds.
    pub wall_millis: f64,
    /// Bytes received / sent by the server over the run.
    pub bytes_in: u64,
    /// Bytes sent by the server over the run.
    pub bytes_out: u64,
    /// Median server-side frame service time, microseconds.
    pub p50_frame_micros: f64,
    /// 99th percentile server-side frame service time, microseconds.
    pub p99_frame_micros: f64,
    /// Whether every session's digests matched the in-process replay.
    pub matches_in_process: bool,
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct NetThroughputReport {
    /// Rows in the shared scenario column.
    pub rows: u64,
    /// Gesture traces each session performs.
    pub traces_per_session: usize,
    /// Measured points, in connection-count order.
    pub points: Vec<NetThroughputPoint>,
}

/// Result digests of an in-process sequential replay of the seeded plans —
/// the ground truth a networked run must reproduce bit for bit.
pub fn expected_digests(rows: usize, sessions: usize, traces: usize) -> Result<Vec<u64>> {
    let scenario = Scenario::sky_survey(rows, SCENARIO_SEED);
    let (catalog, object) = scenario_catalog(&scenario, KernelConfig::default())?;
    let plans = plan_explorers(&catalog, object, sessions, traces, PLAN_SEED)?;
    run_sequential(&catalog, object, &plans)
}

/// Drive `sessions` seeded explorers against a server at `addr`, one TCP
/// connection each, and return their reports plus the wall time in
/// nanoseconds. Transport-agnostic ground truth comes from
/// [`expected_digests`].
pub fn drive_load(
    addr: &str,
    rows: usize,
    sessions: usize,
    traces: usize,
) -> Result<(Vec<SessionReport>, u64)> {
    // The catalog is rebuilt locally only to derive the seeded plans — the
    // data itself lives behind `addr`.
    let scenario = Scenario::sky_survey(rows, SCENARIO_SEED);
    let (catalog, object) = scenario_catalog(&scenario, KernelConfig::default())?;
    let plans = plan_explorers(&catalog, object, sessions, traces, PLAN_SEED)?;
    let client = TcpClient::new(addr);
    let started = Instant::now();
    let reports = drive_plans_over(&client, object, &plans)?;
    Ok((reports, started.elapsed().as_nanos() as u64))
}

/// Run the sweep in-process: for each connection count, a loopback
/// [`NetServer`] plus [`drive_load`] over it, verified against
/// [`expected_digests`].
///
/// [`NetServer`]: dbtouch_net::NetServer
pub fn run_net_throughput_sweep(
    rows: usize,
    connection_counts: &[usize],
    traces_per_session: usize,
) -> Result<NetThroughputReport> {
    let scenario = Scenario::sky_survey(rows, SCENARIO_SEED);
    let (catalog, object) = scenario_catalog(&scenario, KernelConfig::default())?;
    let mut points = Vec::with_capacity(connection_counts.len());
    for &connections in connection_counts {
        let config = ServerConfig::default()
            .with_catalog(Arc::clone(&catalog))
            .with_listen_addr("127.0.0.1:0");
        let workers = config.worker_threads;
        let server = NetServer::serve(config)?;
        let addr = server.local_addr().to_string();
        let (reports, wall_nanos) = drive_load(&addr, rows, connections, traces_per_session)?;

        let digests: Vec<u64> = reports.iter().map(SessionReport::result_digest).collect();
        let plans = plan_explorers(&catalog, object, connections, traces_per_session, PLAN_SEED)?;
        let sequential = run_sequential(&catalog, object, &plans)?;
        let clean = reports.iter().all(|r| r.errors.is_empty());

        let snapshot = server.metrics_snapshot();
        let frames = snapshot.histogram("net.frame_nanos");
        let total_touches: u64 = reports.iter().map(SessionReport::total_touches).sum();
        points.push(NetThroughputPoint {
            connections,
            workers,
            total_touches,
            touches_per_sec: total_touches as f64 / (wall_nanos.max(1) as f64 / 1e9),
            wall_millis: wall_nanos as f64 / 1e6,
            bytes_in: snapshot.scalar("net.bytes_in").unwrap_or(0),
            bytes_out: snapshot.scalar("net.bytes_out").unwrap_or(0),
            p50_frame_micros: frames.map_or(0.0, |h| h.quantile(50.0) as f64 / 1e3),
            p99_frame_micros: frames.map_or(0.0, |h| h.quantile(99.0) as f64 / 1e3),
            matches_in_process: digests == sequential && clean,
        });
        server.shutdown();
    }
    Ok(NetThroughputReport {
        rows: rows as u64,
        traces_per_session,
        points,
    })
}

impl NetThroughputReport {
    /// Render the sweep as an aligned text table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "net throughput sweep — {} rows, {} traces/session, loopback TCP\n",
            self.rows, self.traces_per_session
        ));
        out.push_str(
            "conns  workers     touches   touches/s     p50 us/frame   p99 us/frame    bytes in   bytes out   identical\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:>5}  {:>7}  {:>10}  {:>10.0}  {:>15.2}  {:>13.2}  {:>10}  {:>10}  {}\n",
                p.connections,
                p.workers,
                p.total_touches,
                p.touches_per_sec,
                p.p50_frame_micros,
                p.p99_frame_micros,
                p.bytes_in,
                p.bytes_out,
                if p.matches_in_process { "yes" } else { "NO" },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_digests_match() {
        let report = run_net_throughput_sweep(10_000, &[1, 4], 2).unwrap();
        assert_eq!(report.points.len(), 2);
        for point in &report.points {
            assert!(point.matches_in_process, "point {point:?}");
            assert!(point.total_touches > 0);
            assert!(point.bytes_in > 0 && point.bytes_out > 0);
        }
        assert!(report.table().contains("conns"));
    }

    #[test]
    fn load_generator_agrees_with_expected_digests() {
        let rows = 8_000;
        let scenario = Scenario::sky_survey(rows, SCENARIO_SEED);
        let (catalog, _object) = scenario_catalog(&scenario, KernelConfig::default()).unwrap();
        let server = NetServer::serve(
            ServerConfig::with_workers(2)
                .with_catalog(catalog)
                .with_listen_addr("127.0.0.1:0"),
        )
        .unwrap();
        let (reports, _) = drive_load(&server.local_addr().to_string(), rows, 3, 2).unwrap();
        let got: Vec<u64> = reports.iter().map(SessionReport::result_digest).collect();
        assert_eq!(got, expected_digests(rows, 3, 2).unwrap());
        server.shutdown();
    }
}
