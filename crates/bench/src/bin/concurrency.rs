//! Concurrency benchmark binary: touches/sec and p50/p99 per-touch latency
//! versus simultaneous session count, verified against the sequential replay.
//!
//! ```text
//! cargo run --release -p dbtouch-bench --bin concurrency [rows] [traces_per_session]
//! ```

use dbtouch_bench::concurrency::run_concurrency_sweep;
use dbtouch_bench::report::{json_object, write_bench_json};
use dbtouch_types::json::Json;

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let traces: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let session_counts = [1, 2, 4, 8, 16, 32];
    match run_concurrency_sweep(rows, &session_counts, traces) {
        Ok(report) => {
            print!("{}", report.table());
            let points: Vec<Json> = report
                .points
                .iter()
                .map(|p| {
                    json_object(vec![
                        ("sessions", Json::Number(p.sessions as f64)),
                        ("workers", Json::Number(p.workers as f64)),
                        ("total_touches", Json::Number(p.total_touches as f64)),
                        ("touches_per_sec", Json::Number(p.touches_per_sec)),
                        ("wall_millis", Json::Number(p.wall_millis)),
                        ("matches_sequential", Json::Bool(p.matches_sequential)),
                    ])
                })
                .collect();
            let doc = json_object(vec![
                ("bench", Json::String("concurrency".into())),
                ("rows", Json::Number(report.rows as f64)),
                (
                    "traces_per_session",
                    Json::Number(report.traces_per_session as f64),
                ),
                ("points", Json::Array(points)),
            ]);
            match write_bench_json("concurrency", &doc) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write bench json: {e}"),
            }
            if report.points.iter().any(|p| !p.matches_sequential) {
                eprintln!("ERROR: a concurrent run diverged from the sequential replay");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("concurrency sweep failed: {e}");
            std::process::exit(1);
        }
    }
}
