//! Concurrency benchmark binary: touches/sec and p50/p99 per-touch latency
//! versus simultaneous session count, verified against the sequential replay.
//!
//! ```text
//! cargo run --release -p dbtouch-bench --bin concurrency [rows] [traces_per_session]
//! ```

use dbtouch_bench::concurrency::run_concurrency_sweep;

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let traces: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let session_counts = [1, 2, 4, 8, 16, 32];
    match run_concurrency_sweep(rows, &session_counts, traces) {
        Ok(report) => {
            print!("{}", report.table());
            if report.points.iter().any(|p| !p.matches_sequential) {
                eprintln!("ERROR: a concurrent run diverged from the sequential replay");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("concurrency sweep failed: {e}");
            std::process::exit(1);
        }
    }
}
