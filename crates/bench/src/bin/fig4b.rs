//! Reproduce Figure 4(b): effect of varying the data-object size (via zoom-in
//! gestures) on the number of data entries returned by an interactive-summaries
//! query executed at a constant slide speed.
//!
//! Usage:
//! ```text
//! cargo run --release -p dbtouch-bench --bin fig4b [rows] [doublings]
//! ```

use dbtouch_bench::figures::{render_report, run_figure4b, FigureConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rows = args
        .get(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(10_000_000);
    let doublings = args.get(2).and_then(|s| s.parse::<u32>().ok()).unwrap_or(4);
    let config = FigureConfig {
        rows,
        ..FigureConfig::default()
    };
    let report = run_figure4b(&config, doublings).expect("figure 4b run failed");
    println!("{}", render_report(&report));
    println!(
        "paper reference (iPad 1): entries roughly double each time the object size doubles\n\
         (same slide speed, therefore double the slide time); the reproduction target is that shape."
    );
}
