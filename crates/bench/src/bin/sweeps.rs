//! Parameter sweeps around the Figure 4 setup: summary window size and device
//! touch rate.
//!
//! Usage:
//! ```text
//! cargo run --release -p dbtouch-bench --bin sweeps [rows]
//! ```

use dbtouch_bench::sweeps::{render_sweep, sweep_summary_window, sweep_touch_rate};

fn main() {
    let rows = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(10_000_000);
    let k_sweep = sweep_summary_window(rows, &[]).expect("summary window sweep failed");
    println!("{}", render_sweep(&k_sweep));
    let rate_sweep = sweep_touch_rate(rows, &[]).expect("touch rate sweep failed");
    println!("{}", render_sweep(&rate_sweep));
}
