//! Compression binary: bytes on disk and touches/s, Raw vs auto-encoded
//! page spans, digest-verified at every point.
//!
//! ```text
//! cargo run --release -p dbtouch-bench --bin compression [rows] [traces]
//! ```
//!
//! Persists a low-cardinality (banded) and a high-cardinality (full
//! resolution) column with encoding off and on, reopens each store and
//! replays the identical seeded segment-sweep plan. Exits non-zero if any
//! encoded digest differs from its raw baseline, if the low-cardinality
//! store shrinks less than 2x, or if its encoded replay is slower than 1.5x
//! the raw throughput.

use dbtouch_bench::compression::run_compression_sweep;
use dbtouch_bench::report::{json_object, write_bench_json};
use dbtouch_types::json::Json;

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_500_000);
    let traces: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    match run_compression_sweep(rows, traces) {
        Ok(report) => {
            print!("{}", report.table());
            let points: Vec<Json> = report
                .points
                .iter()
                .map(|p| {
                    json_object(vec![
                        ("scenario", Json::String(p.scenario.into())),
                        ("encoded", Json::Bool(p.encoded)),
                        ("disk_bytes", Json::Number(p.disk_bytes as f64)),
                        ("rle_pages", Json::Number(p.rle_pages as f64)),
                        ("dict_pages", Json::Number(p.dict_pages as f64)),
                        ("total_touches", Json::Number(p.total_touches as f64)),
                        ("touches_per_sec", Json::Number(p.touches_per_sec)),
                        ("wall_secs", Json::Number(p.wall_secs)),
                        ("pool_faults", Json::Number(p.pool_faults as f64)),
                        ("run_skips", Json::Number(p.run_skips as f64)),
                        ("digest", Json::String(p.digest.to_string())),
                        ("verified", Json::Bool(p.verified)),
                    ])
                })
                .collect();
            let ratios: Vec<Json> = ["low_cardinality", "high_cardinality"]
                .iter()
                .filter_map(|name| {
                    Some(json_object(vec![
                        ("scenario", Json::String((*name).into())),
                        ("disk_shrink", Json::Number(report.disk_shrink(name)?)),
                        ("speedup", Json::Number(report.speedup(name)?)),
                    ]))
                })
                .collect();
            let doc = json_object(vec![
                ("bench", Json::String("compression".into())),
                ("rows", Json::Number(report.rows as f64)),
                ("traces", Json::Number(report.traces as f64)),
                ("half_window", Json::Number(report.half_window as f64)),
                ("points", Json::Array(points)),
                ("ratios", Json::Array(ratios)),
            ]);
            match write_bench_json("compression", &doc) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write bench json: {e}"),
            }
            if report.points.iter().any(|p| !p.verified) {
                eprintln!("FAILED: some points were not bit-identical to the raw run");
                std::process::exit(1);
            }
            let shrink = report.disk_shrink("low_cardinality").unwrap_or(0.0);
            if shrink < 2.0 {
                eprintln!("FAILED: low-cardinality store shrank only {shrink:.2}x (< 2x)");
                std::process::exit(1);
            }
            let speedup = report.speedup("low_cardinality").unwrap_or(0.0);
            if speedup < 1.5 {
                eprintln!(
                    "FAILED: encoded low-cardinality replay reached only {speedup:.2}x \
                     the raw throughput (< 1.5x)"
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("compression failed: {e}");
            std::process::exit(1);
        }
    }
}
