//! Persistence round-trip binary: the fresh-process durability smoke.
//!
//! ```text
//! cargo run --release -p dbtouch-bench --bin persistence -- build  <dir> [rows] [sessions] [traces] [seed]
//! cargo run --release -p dbtouch-bench --bin persistence -- replay <dir>
//! ```
//!
//! `build` loads a seeded catalog, drives the concurrent session workload,
//! persists into `<dir>` and records the expected digests there. `replay` —
//! run as a separate process, which is the point — reopens the directory,
//! replays the identical seeded workload against the paged-backed catalog
//! and exits non-zero unless every digest is bit-identical and the recovered
//! epoch matches. CI runs the two as separate steps.

use dbtouch_bench::report::{json_object, write_bench_json};
use dbtouch_server::ServerConfig;
use dbtouch_types::json::Json;
use dbtouch_types::KernelConfig;
use dbtouch_workload::persistence::{build_and_persist, replay_persisted, RoundTripSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || -> ! {
        eprintln!("usage: persistence build <dir> [rows] [sessions] [traces] [seed]");
        eprintln!("       persistence replay <dir>");
        std::process::exit(2);
    };
    let (mode, dir) = match (args.first().map(String::as_str), args.get(1)) {
        (Some(mode @ ("build" | "replay")), Some(dir)) => (mode, dir.clone()),
        _ => usage(),
    };
    let arg = |i: usize, default: u64| -> u64 {
        args.get(i).and_then(|a| a.parse().ok()).unwrap_or(default)
    };
    match mode {
        "build" => {
            let spec = RoundTripSpec {
                rows: arg(2, 200_000) as usize,
                sessions: arg(3, 8) as usize,
                traces_per_session: arg(4, 3) as usize,
                seed: arg(5, 1234),
            };
            match build_and_persist(&dir, &spec, KernelConfig::default(), ServerConfig::auto()) {
                Ok(record) => {
                    println!(
                        "persisted epoch {} with {} session digests into {dir}",
                        record.epoch,
                        record.digests.len()
                    );
                }
                Err(e) => {
                    eprintln!("persistence build failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "replay" => match replay_persisted(&dir, KernelConfig::default(), ServerConfig::auto()) {
            Ok(outcome) => {
                let verified = outcome.verified();
                println!(
                    "reopened epoch {} ({} sessions replayed): digests {}",
                    outcome.reopened_epoch,
                    outcome.actual.len(),
                    if verified { "identical" } else { "DIVERGED" }
                );
                let doc = json_object(vec![
                    ("bench", Json::String("persistence".into())),
                    ("sessions", Json::Number(outcome.actual.len() as f64)),
                    (
                        "reopened_epoch",
                        Json::Number(outcome.reopened_epoch as f64),
                    ),
                    (
                        "digests",
                        Json::Array(
                            outcome
                                .actual
                                .iter()
                                .map(|d| Json::String(format!("{d:016x}")))
                                .collect(),
                        ),
                    ),
                    ("verified", Json::Bool(verified)),
                ]);
                match write_bench_json("persistence", &doc) {
                    Ok(path) => println!("wrote {}", path.display()),
                    Err(e) => eprintln!("warning: could not write bench json: {e}"),
                }
                if !verified {
                    eprintln!("ERROR: replay after reopen diverged from the recorded digests");
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("persistence replay failed: {e}");
                std::process::exit(1);
            }
        },
        _ => usage(),
    }
}
