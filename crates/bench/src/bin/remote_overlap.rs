//! Remote-overlap binary: overlapped vs. blocking device/cloud fetches at
//! the default WAN model (40ms round trip), digest-verified against the
//! all-local sequential replay at every point.
//!
//! ```text
//! cargo run --release -p dbtouch-bench --bin remote_overlap [rows] [traces_per_session] [max_sessions]
//! ```
//!
//! Sweeps session counts 1, 2, 4, … up to `max_sessions` (default 32).
//! Exits non-zero if any point fails verification or overlapped execution
//! does not beat blocking fetches.

use dbtouch_bench::remote_overlap::run_remote_overlap_sweep;
use dbtouch_bench::report::{json_object, write_bench_json};
use dbtouch_types::json::Json;

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let traces: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let max_sessions: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);
    let mut session_counts = Vec::new();
    let mut n = 1;
    while n <= max_sessions {
        session_counts.push(n);
        n *= 2;
    }
    match run_remote_overlap_sweep(rows, &session_counts, traces) {
        Ok(report) => {
            print!("{}", report.table());
            let points: Vec<Json> = report
                .points
                .iter()
                .map(|p| {
                    json_object(vec![
                        ("sessions", Json::Number(p.sessions as f64)),
                        ("mode", Json::String(p.mode.into())),
                        ("touches_per_sec", Json::Number(p.touches_per_sec)),
                        ("wall_secs", Json::Number(p.wall_secs)),
                        (
                            "progressive_requests",
                            Json::Number(p.progressive_requests as f64),
                        ),
                        ("remote_requests", Json::Number(p.remote_requests as f64)),
                        ("rows_shipped", Json::Number(p.rows_shipped as f64)),
                        (
                            "remote_wait_micros",
                            Json::Number(p.remote_wait_micros as f64),
                        ),
                        (
                            "mean_refinement_latency_ms",
                            Json::Number(p.mean_refinement_latency_ms),
                        ),
                        ("overlap_ratio", Json::Number(p.overlap_ratio)),
                        ("verified", Json::Bool(p.verified)),
                    ])
                })
                .collect();
            let speedups: Vec<Json> = report
                .speedups()
                .iter()
                .map(|(sessions, speedup)| {
                    json_object(vec![
                        ("sessions", Json::Number(*sessions as f64)),
                        ("overlapped_vs_blocking", Json::Number(*speedup)),
                    ])
                })
                .collect();
            let doc = json_object(vec![
                ("bench", Json::String("remote_overlap".into())),
                ("rows", Json::Number(report.rows as f64)),
                (
                    "traces_per_session",
                    Json::Number(report.traces_per_session as f64),
                ),
                ("points", Json::Array(points)),
                ("speedups", Json::Array(speedups)),
            ]);
            match write_bench_json("remote_overlap", &doc) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write bench json: {e}"),
            }
            if report.points.iter().any(|p| !p.verified) {
                eprintln!("FAILED: some points were not bit-identical to the all-local replay");
                std::process::exit(1);
            }
            let speedups = report.speedups();
            if speedups.is_empty() || speedups.iter().any(|(_, s)| *s <= 1.0) {
                eprintln!("FAILED: overlapped execution did not beat blocking fetches");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("remote_overlap failed: {e}");
            std::process::exit(1);
        }
    }
}
