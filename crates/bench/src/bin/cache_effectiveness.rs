//! Shared-cache effectiveness binary: touches/sec and p50/p99 per-touch
//! latency with the cross-session result cache off vs. on, over the skewed
//! hot-object workload, verified result-transparent at every point.
//!
//! ```text
//! cargo run --release -p dbtouch-bench --bin cache_effectiveness [rows] [traces_per_session]
//! ```

use dbtouch_bench::cache_effectiveness::run_cache_effectiveness_sweep;

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let traces: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let session_counts = [1, 2, 4, 8, 16, 32];
    match run_cache_effectiveness_sweep(rows, &session_counts, traces) {
        Ok(report) => {
            print!("{}", report.table());
            if report.points.iter().any(|p| !p.result_transparent) {
                eprintln!("ERROR: the shared cache changed results somewhere");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("cache effectiveness sweep failed: {e}");
            std::process::exit(1);
        }
    }
}
