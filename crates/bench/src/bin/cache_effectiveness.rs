//! Shared-cache effectiveness binary: touches/sec and p50/p99 per-touch
//! latency with the cross-session result cache off vs. on, over the skewed
//! hot-object workload, verified result-transparent at every point.
//!
//! ```text
//! cargo run --release -p dbtouch-bench --bin cache_effectiveness [rows] [traces_per_session]
//! ```

use dbtouch_bench::cache_effectiveness::run_cache_effectiveness_sweep;
use dbtouch_bench::report::{json_object, write_bench_json};
use dbtouch_types::json::Json;

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let traces: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let session_counts = [1, 2, 4, 8, 16, 32];
    match run_cache_effectiveness_sweep(rows, &session_counts, traces) {
        Ok(report) => {
            print!("{}", report.table());
            let points: Vec<Json> = report
                .points
                .iter()
                .map(|p| {
                    json_object(vec![
                        ("sessions", Json::Number(p.sessions as f64)),
                        ("total_touches", Json::Number(p.total_touches as f64)),
                        ("touches_per_sec_off", Json::Number(p.touches_per_sec_off)),
                        ("touches_per_sec_on", Json::Number(p.touches_per_sec_on)),
                        ("shared_hits", Json::Number(p.shared_hits as f64)),
                        ("shared_misses", Json::Number(p.shared_misses as f64)),
                        ("hit_rate", Json::Number(p.hit_rate)),
                        ("result_transparent", Json::Bool(p.result_transparent)),
                    ])
                })
                .collect();
            let doc = json_object(vec![
                ("bench", Json::String("cache_effectiveness".into())),
                ("rows", Json::Number(report.rows as f64)),
                (
                    "traces_per_session",
                    Json::Number(report.traces_per_session as f64),
                ),
                ("points", Json::Array(points)),
            ]);
            match write_bench_json("cache_effectiveness", &doc) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write bench json: {e}"),
            }
            if report.points.iter().any(|p| !p.result_transparent) {
                eprintln!("ERROR: the shared cache changed results somewhere");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("cache effectiveness sweep failed: {e}");
            std::process::exit(1);
        }
    }
}
