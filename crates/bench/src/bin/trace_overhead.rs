//! Trace overhead binary: throughput with span tracing on vs. off over the
//! identical seeded workload, digest-verified, with a hard overhead gate.
//!
//! ```text
//! cargo run --release -p dbtouch-bench --bin trace_overhead \
//!     [rows] [sessions] [traces_per_session] [trials]
//! ```
//!
//! Exits non-zero when digests diverge (tracing steered a result) or the
//! measured overhead exceeds the gate: `DBTOUCH_TRACE_MAX_OVERHEAD_PCT`.
//! The default gate is 2.5% — spans are recorded once per trace lifecycle
//! stage, not per touch, so the budget matches the telemetry hub's. CI smoke
//! runs set it looser still.

use dbtouch_bench::report::{json_object, write_bench_json};
use dbtouch_bench::trace_overhead::run_trace_overhead;
use dbtouch_types::json::Json;

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let sessions: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let traces: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let trials: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let max_overhead: f64 = std::env::var("DBTOUCH_TRACE_MAX_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.5);
    match run_trace_overhead(rows, sessions, traces, trials) {
        Ok(report) => {
            print!("{}", report.table());
            let doc = json_object(vec![
                ("bench", Json::String("trace_overhead".into())),
                ("rows", Json::Number(report.rows as f64)),
                ("sessions", Json::Number(report.sessions as f64)),
                (
                    "traces_per_session",
                    Json::Number(report.traces_per_session as f64),
                ),
                ("trials", Json::Number(report.trials as f64)),
                ("total_touches", Json::Number(report.total_touches as f64)),
                (
                    "touches_per_sec_off",
                    Json::Number(report.touches_per_sec_off),
                ),
                (
                    "touches_per_sec_on",
                    Json::Number(report.touches_per_sec_on),
                ),
                ("overhead_percent", Json::Number(report.overhead_percent())),
                ("digests_identical", Json::Bool(report.digests_identical)),
                (
                    "traces_finished",
                    Json::Number(report.traces_finished as f64),
                ),
                ("trees_retained", Json::Number(report.trees_retained as f64)),
            ]);
            match write_bench_json("trace_overhead", &doc) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write bench json: {e}"),
            }
            if !report.digests_identical {
                eprintln!("ERROR: tracing changed results — digests diverged");
                std::process::exit(1);
            }
            if report.overhead_percent() >= max_overhead {
                eprintln!(
                    "ERROR: trace overhead {:.2}% exceeds the {:.2}% gate",
                    report.overhead_percent(),
                    max_overhead
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("trace overhead benchmark failed: {e}");
            std::process::exit(1);
        }
    }
}
