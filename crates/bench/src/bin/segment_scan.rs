//! Segment-scan binary: touches/s and per-touch p50/p99 vs
//! `scan_parallelism` on one large object, digest-verified against the
//! sequential baseline at every point.
//!
//! ```text
//! cargo run --release -p dbtouch-bench --bin segment_scan [rows] [traces] [max_parallelism]
//! ```
//!
//! Sweeps `scan_parallelism` 1, 2, 4, … up to `max_parallelism` (default 8).
//! Exits non-zero if any point's digest differs from the sequential run.
//! The ≥2x-at-4-workers throughput gate applies only when the host actually
//! has 4 cores to scan with — a single-core smoke box still verifies the
//! digests, which never depend on the machine.

use dbtouch_bench::report::{json_object, write_bench_json};
use dbtouch_bench::segment_scan::run_segment_scan_sweep;
use dbtouch_types::json::Json;

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000_000);
    let traces: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let max_parallelism: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let mut parallelisms = Vec::new();
    let mut n = 1;
    while n <= max_parallelism {
        parallelisms.push(n);
        n *= 2;
    }
    match run_segment_scan_sweep(rows, &parallelisms, traces) {
        Ok(report) => {
            print!("{}", report.table());
            let points: Vec<Json> = report
                .points
                .iter()
                .map(|p| {
                    json_object(vec![
                        ("scan_parallelism", Json::Number(p.scan_parallelism as f64)),
                        ("total_touches", Json::Number(p.total_touches as f64)),
                        ("touches_per_sec", Json::Number(p.touches_per_sec)),
                        ("wall_secs", Json::Number(p.wall_secs)),
                        ("p50_touch_micros", Json::Number(p.p50_touch_micros)),
                        ("p99_touch_micros", Json::Number(p.p99_touch_micros)),
                        ("segments_scanned", Json::Number(p.segments_scanned as f64)),
                        ("pruned_segments", Json::Number(p.pruned_segments as f64)),
                        ("steals", Json::Number(p.steals as f64)),
                        ("digest", Json::String(p.digest.to_string())),
                        ("verified", Json::Bool(p.verified)),
                    ])
                })
                .collect();
            let speedups: Vec<Json> = report
                .speedups()
                .iter()
                .map(|(parallelism, speedup)| {
                    json_object(vec![
                        ("scan_parallelism", Json::Number(*parallelism as f64)),
                        ("vs_sequential", Json::Number(*speedup)),
                    ])
                })
                .collect();
            let doc = json_object(vec![
                ("bench", Json::String("segment_scan".into())),
                ("rows", Json::Number(report.rows as f64)),
                ("segment_rows", Json::Number(report.segment_rows as f64)),
                ("half_window", Json::Number(report.half_window as f64)),
                ("traces", Json::Number(report.traces as f64)),
                ("points", Json::Array(points)),
                ("speedups", Json::Array(speedups)),
            ]);
            match write_bench_json("segment_scan", &doc) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write bench json: {e}"),
            }
            if report.points.iter().any(|p| !p.verified) {
                eprintln!("FAILED: some points were not bit-identical to the sequential run");
                std::process::exit(1);
            }
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            if cores >= 4 {
                if let Some((_, speedup)) = report
                    .speedups()
                    .iter()
                    .find(|(parallelism, _)| *parallelism == 4)
                {
                    if *speedup < 2.0 {
                        eprintln!(
                            "FAILED: scan_parallelism=4 reached only {speedup:.2}x the \
                             sequential throughput on a {cores}-core host"
                        );
                        std::process::exit(1);
                    }
                }
            } else {
                println!("note: {cores}-core host — digest gate applied, throughput gate skipped");
            }
        }
        Err(e) => {
            eprintln!("segment_scan failed: {e}");
            std::process::exit(1);
        }
    }
}
