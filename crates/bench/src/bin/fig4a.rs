//! Reproduce Figure 4(a): effect of varying the slide-gesture speed on the
//! number of data entries returned by an interactive-summaries query.
//!
//! Usage:
//! ```text
//! cargo run --release -p dbtouch-bench --bin fig4a [rows] [touch_rate_hz]
//! ```
//! Defaults match the paper: a 10^7-integer column, a 10 cm object, summaries
//! averaging ~10 entries. Pass a second argument of `15` to approximate the
//! iPad 1's effective touch delivery rate (closer to the paper's absolute
//! numbers).

use dbtouch_bench::figures::{render_report, run_figure4a, FigureConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rows = args
        .get(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(10_000_000);
    let touch_rate = args
        .get(2)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(60.0);
    let config = FigureConfig {
        rows,
        touch_rate_hz: touch_rate,
        ..FigureConfig::default()
    };
    let report = run_figure4a(&config, &[]).expect("figure 4a run failed");
    println!("{}", render_report(&report));
    println!(
        "paper reference (iPad 1): ~5 entries at 0.5s up to ~55 entries at 4s; the reproduction\n\
         target is the shape (roughly linear growth with gesture duration), not the absolute count."
    );
}
