//! Cold-start binary: open-to-first-touch latency and streaming touches/s of
//! a reopened persistent catalog at buffer pools of 100%, 50% and 10% of the
//! dataset, digest-verified against the in-memory catalog it was persisted
//! from.
//!
//! ```text
//! cargo run --release -p dbtouch-bench --bin cold_start [rows] [traces]
//! ```

use dbtouch_bench::cold_start::run_cold_start_sweep;
use dbtouch_bench::report::{json_object, write_bench_json};
use dbtouch_types::json::Json;

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000_000);
    let traces: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let fractions = [1.0, 0.5, 0.1];
    match run_cold_start_sweep(rows, &fractions, traces) {
        Ok(report) => {
            print!("{}", report.table());
            let points: Vec<Json> = report
                .points
                .iter()
                .map(|p| {
                    json_object(vec![
                        ("pool_fraction", Json::Number(p.pool_fraction)),
                        ("pool_pages", Json::Number(p.pool_pages as f64)),
                        ("open_micros", Json::Number(p.open_micros as f64)),
                        (
                            "first_touch_micros",
                            Json::Number(p.first_touch_micros as f64),
                        ),
                        ("touches", Json::Number(p.touches as f64)),
                        ("touches_per_sec", Json::Number(p.touches_per_sec)),
                        ("faults", Json::Number(p.faults as f64)),
                        ("pool_hits", Json::Number(p.pool_hits as f64)),
                        ("evictions", Json::Number(p.evictions as f64)),
                        ("verified", Json::Bool(p.verified)),
                    ])
                })
                .collect();
            let doc = json_object(vec![
                ("bench", Json::String("cold_start".into())),
                ("rows", Json::Number(report.rows as f64)),
                ("dataset_pages", Json::Number(report.dataset_pages as f64)),
                ("traces", Json::Number(report.traces as f64)),
                ("points", Json::Array(points)),
            ]);
            match write_bench_json("cold_start", &doc) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write bench json: {e}"),
            }
            if report
                .points
                .iter()
                .any(|p| !p.verified || p.touches_per_sec <= 0.0)
            {
                eprintln!("ERROR: a cold-start point diverged from the in-memory baseline");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("cold start sweep failed: {e}");
            std::process::exit(1);
        }
    }
}
