//! Run the ablation studies A1–A6 (see DESIGN.md) and print their reports.
//!
//! Usage:
//! ```text
//! cargo run --release -p dbtouch-bench --bin ablations [rows]
//! ```

use dbtouch_bench::ablations;
use dbtouch_bench::report::{fmt_count, fmt_f64, render_table};

fn main() {
    let rows = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(2_000_000);

    let a1 = ablations::ablation_samples(rows).expect("A1 failed");
    println!(
        "A1 sample-based storage ({} rows)\n{}",
        fmt_count(rows),
        render_table(
            &[
                "variant",
                "entries",
                "working set (bytes)",
                "wall time (ms)"
            ],
            &[
                vec![
                    "adaptive samples".into(),
                    a1.adaptive_entries.to_string(),
                    fmt_count(a1.adaptive_working_set_bytes),
                    fmt_f64(a1.adaptive_wall_nanos as f64 / 1e6, 2),
                ],
                vec![
                    "base data only".into(),
                    a1.naive_entries.to_string(),
                    fmt_count(a1.naive_working_set_bytes),
                    fmt_f64(a1.naive_wall_nanos as f64 / 1e6, 2),
                ],
            ],
        )
    );

    let a2 = ablations::ablation_prefetch(rows).expect("A2 failed");
    println!(
        "A2 prefetching\n{}",
        render_table(
            &[
                "variant",
                "prefetches",
                "warm fraction",
                "simulated access (µs)"
            ],
            &[
                vec![
                    "prefetch on".into(),
                    a2.prefetches_issued.to_string(),
                    fmt_f64(a2.warm_fraction_with, 3),
                    fmt_f64(a2.access_nanos_with as f64 / 1e3, 1),
                ],
                vec![
                    "prefetch off".into(),
                    "0".into(),
                    fmt_f64(a2.warm_fraction_without, 3),
                    fmt_f64(a2.access_nanos_without as f64 / 1e3, 1),
                ],
            ],
        )
    );

    let a3 = ablations::ablation_cache(rows).expect("A3 failed");
    println!(
        "A3 caching (second pass over a previously touched region)\n{}",
        render_table(
            &["variant", "second-pass hit rate", "hits"],
            &[
                vec![
                    "cache on".into(),
                    fmt_f64(a3.second_pass_hit_rate_with, 3),
                    a3.second_pass_hits.to_string(),
                ],
                vec![
                    "cache off".into(),
                    fmt_f64(a3.second_pass_hit_rate_without, 3),
                    "0".into(),
                ],
            ],
        )
    );

    let a4 = ablations::ablation_join(rows.min(200_000)).expect("A4 failed");
    println!(
        "A4 non-blocking join ({} rows per side)\n{}",
        fmt_count(rows.min(200_000)),
        render_table(
            &[
                "variant",
                "rows consumed before first match",
                "total matches",
                "wall time (ms)"
            ],
            &[
                vec![
                    "symmetric hash join".into(),
                    fmt_count(a4.symmetric_rows_to_first_match),
                    fmt_count(a4.total_matches),
                    fmt_f64(a4.symmetric_wall_nanos as f64 / 1e6, 2),
                ],
                vec![
                    "blocking hash join".into(),
                    fmt_count(a4.blocking_rows_to_first_match),
                    fmt_count(a4.total_matches),
                    fmt_f64(a4.blocking_wall_nanos as f64 / 1e6, 2),
                ],
            ],
        )
    );

    let a5 = ablations::ablation_rotation(rows.min(1_000_000), 65_536).expect("A5 failed");
    println!(
        "A5 incremental rotation ({} rows, chunk {})\n{}",
        fmt_count(rows.min(1_000_000)),
        fmt_count(a5.chunk_rows),
        render_table(
            &["variant", "first queryable (ms)", "fully rotated (ms)"],
            &[
                vec![
                    "incremental".into(),
                    fmt_f64(a5.incremental_first_queryable_nanos as f64 / 1e6, 2),
                    fmt_f64(a5.incremental_total_nanos as f64 / 1e6, 2),
                ],
                vec![
                    "eager".into(),
                    fmt_f64(a5.eager_first_queryable_nanos as f64 / 1e6, 2),
                    fmt_f64(a5.eager_first_queryable_nanos as f64 / 1e6, 2),
                ],
            ],
        )
    );

    let a6 = ablations::ablation_budget(rows, rows / 5, 500).expect("A6 failed");
    println!(
        "A6 per-touch response budget (oversized summary windows)\n{}",
        render_table(
            &["variant", "avg rows per touch", "refinements", "entries"],
            &[
                vec![
                    "budget 500µs".into(),
                    fmt_count(a6.max_rows_per_touch_with),
                    a6.refinements_with.to_string(),
                    a6.entries_with.to_string(),
                ],
                vec![
                    "unlimited".into(),
                    fmt_count(a6.max_rows_per_touch_without),
                    "0".into(),
                    a6.entries_without.to_string(),
                ],
            ],
        )
    );
}
