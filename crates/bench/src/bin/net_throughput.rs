//! Network throughput benchmark binary: touches/sec and frame service time
//! versus simultaneous TCP connection count, digest-verified against the
//! in-process replay.
//!
//! ```text
//! # in-process loopback sweep (default)
//! cargo run --release -p dbtouch-bench --bin net_throughput [rows] [traces_per_session]
//!
//! # two-process mode: a real server and a real load generator
//! cargo run --release -p dbtouch-bench --bin net_throughput -- serve <addr> [rows] [secs]
//! cargo run --release -p dbtouch-bench --bin net_throughput -- load <addr> [rows] [sessions] [traces]
//! ```
//!
//! `serve` prints the bound address on stdout (`listening on <addr>`) and
//! drains after `secs` seconds. `load` retries the dial until the server is
//! up, rebuilds the seeded scenario locally to compute the expected result
//! digests, and exits non-zero if the networked digests differ — the
//! two processes never share memory, only the wire.

use dbtouch_bench::net_throughput::{
    drive_load, expected_digests, run_net_throughput_sweep, SCENARIO_SEED,
};
use dbtouch_bench::report::{json_object, write_bench_json};
use dbtouch_net::{NetServer, TcpClient};
use dbtouch_server::{ServerConfig, SessionReport};
use dbtouch_types::json::Json;
use dbtouch_types::KernelConfig;
use dbtouch_workload::concurrent::scenario_catalog;
use dbtouch_workload::Scenario;
use std::time::Duration;

fn serve(addr: &str, rows: usize, secs: u64) {
    let scenario = Scenario::sky_survey(rows, SCENARIO_SEED);
    let (catalog, _object) = match scenario_catalog(&scenario, KernelConfig::default()) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("catalog build failed: {e}");
            std::process::exit(1);
        }
    };
    let server = match NetServer::serve(
        ServerConfig::default()
            .with_catalog(catalog)
            .with_listen_addr(addr),
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve failed: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    std::thread::sleep(Duration::from_secs(secs));
    server.shutdown();
    println!("drained and shut down");
}

fn load(addr: &str, rows: usize, sessions: usize, traces: usize) {
    let client = TcpClient::new(addr);
    if let Err(e) = client.wait_ready(Duration::from_secs(30)) {
        eprintln!("server at {addr} never became ready: {e}");
        std::process::exit(1);
    }
    let (reports, wall_nanos) = match drive_load(addr, rows, sessions, traces) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("load run failed: {e}");
            std::process::exit(1);
        }
    };
    let got: Vec<u64> = reports.iter().map(SessionReport::result_digest).collect();
    let want = match expected_digests(rows, sessions, traces) {
        Ok(digests) => digests,
        Err(e) => {
            eprintln!("local replay failed: {e}");
            std::process::exit(1);
        }
    };
    let touches: u64 = reports.iter().map(SessionReport::total_touches).sum();
    println!(
        "{sessions} sessions x {traces} traces over {addr}: {touches} touches in {:.1} ms",
        wall_nanos as f64 / 1e6
    );
    for (index, (g, w)) in got.iter().zip(&want).enumerate() {
        println!(
            "  session {index}: digest {g:016x} — {}",
            if g == w { "identical" } else { "DIVERGED" }
        );
    }
    if got != want || reports.iter().any(|r| !r.errors.is_empty()) {
        eprintln!("ERROR: networked replay diverged from the in-process baseline");
        std::process::exit(1);
    }
    println!("all digests identical across the process boundary");
}

fn sweep(rows: usize, traces: usize) {
    let connection_counts = [1, 2, 4, 8, 16];
    match run_net_throughput_sweep(rows, &connection_counts, traces) {
        Ok(report) => {
            print!("{}", report.table());
            let points: Vec<Json> = report
                .points
                .iter()
                .map(|p| {
                    json_object(vec![
                        ("connections", Json::Number(p.connections as f64)),
                        ("workers", Json::Number(p.workers as f64)),
                        ("total_touches", Json::Number(p.total_touches as f64)),
                        ("touches_per_sec", Json::Number(p.touches_per_sec)),
                        ("wall_millis", Json::Number(p.wall_millis)),
                        ("bytes_in", Json::Number(p.bytes_in as f64)),
                        ("bytes_out", Json::Number(p.bytes_out as f64)),
                        ("p50_frame_micros", Json::Number(p.p50_frame_micros)),
                        ("p99_frame_micros", Json::Number(p.p99_frame_micros)),
                        ("matches_in_process", Json::Bool(p.matches_in_process)),
                    ])
                })
                .collect();
            let doc = json_object(vec![
                ("bench", Json::String("net_throughput".into())),
                ("rows", Json::Number(report.rows as f64)),
                (
                    "traces_per_session",
                    Json::Number(report.traces_per_session as f64),
                ),
                ("points", Json::Array(points)),
            ]);
            match write_bench_json("net_throughput", &doc) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write bench json: {e}"),
            }
            if report.points.iter().any(|p| !p.matches_in_process) {
                eprintln!("ERROR: a networked run diverged from the in-process replay");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("net throughput sweep failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parse =
        |s: Option<&String>, default: usize| s.and_then(|a| a.parse().ok()).unwrap_or(default);
    match args.first().map(String::as_str) {
        Some("serve") => {
            let addr = args
                .get(1)
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:7411".into());
            let rows = parse(args.get(2), 100_000);
            let secs = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(30);
            serve(&addr, rows, secs);
        }
        Some("load") => {
            let addr = args
                .get(1)
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:7411".into());
            let rows = parse(args.get(2), 100_000);
            let sessions = parse(args.get(3), 8);
            let traces = parse(args.get(4), 3);
            load(&addr, rows, sessions, traces);
        }
        _ => {
            let rows = parse(args.first(), 100_000);
            let traces = parse(args.get(1), 3);
            sweep(rows, traces);
        }
    }
}
