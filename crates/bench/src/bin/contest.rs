//! Reproduce the Appendix A exploration contest: a simulated dbTouch user and a
//! simulated SQL user race to localize a hidden pattern in the same data set.
//!
//! Usage:
//! ```text
//! cargo run --release -p dbtouch-bench --bin contest [rows] [seed]
//! ```
//! Runs all three scenarios (generic contest data, sky survey, monitoring
//! stream) and prints a side-by-side comparison for each.

use dbtouch_bench::contest::{render_contest, run_contest, ContestScenario};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rows = args
        .get(1)
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(2_000_000);
    let seed = args
        .get(2)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(42);
    for scenario in [
        ContestScenario::Contest,
        ContestScenario::SkySurvey,
        ContestScenario::Monitoring,
    ] {
        let report = run_contest(scenario, rows, seed, 0.01).expect("contest run failed");
        println!("{}", render_contest(&report));
    }
}
