//! Catalog-churn binary: touch throughput, per-touch p50/p99 and
//! checkout-path p50/p99 while 0, 1 and N mutator threads continuously
//! restructure the catalog, verified bit-identical to the churn-free
//! sequential replay at every point and monotone in epoch.
//!
//! ```text
//! cargo run --release -p dbtouch-bench --bin catalog_churn [rows] [traces_per_session]
//! ```

use dbtouch_bench::catalog_churn::run_catalog_churn_sweep;

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let traces: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let session_counts = [1, 2, 4, 8, 16, 32];
    let mutator_counts = [0, 1, 4];
    match run_catalog_churn_sweep(rows, &session_counts, &mutator_counts, traces) {
        Ok(report) => {
            print!("{}", report.table());
            let broken = report.points.iter().any(|p| {
                !p.verified
                    || p.touches_per_sec <= 0.0
                    || p.checkouts_per_sec <= 0.0
                    || p.final_epoch < p.first_epoch
                    || (p.mutators > 0 && p.final_epoch <= p.first_epoch)
            });
            if broken {
                eprintln!("ERROR: churn broke verification, throughput or epoch monotonicity");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("catalog churn sweep failed: {e}");
            std::process::exit(1);
        }
    }
}
