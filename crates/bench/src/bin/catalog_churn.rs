//! Catalog-churn binary: touch throughput, per-touch p50/p99 and
//! checkout-path p50/p99 while 0, 1 and N mutator threads continuously
//! restructure the catalog, verified bit-identical to the churn-free
//! sequential replay at every point and monotone in epoch.
//!
//! ```text
//! cargo run --release -p dbtouch-bench --bin catalog_churn [rows] [traces_per_session]
//! ```

use dbtouch_bench::catalog_churn::run_catalog_churn_sweep;
use dbtouch_bench::report::{json_object, write_bench_json};
use dbtouch_types::json::Json;

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let traces: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let session_counts = [1, 2, 4, 8, 16, 32];
    let mutator_counts = [0, 1, 4];
    match run_catalog_churn_sweep(rows, &session_counts, &mutator_counts, traces) {
        Ok(report) => {
            print!("{}", report.table());
            let points: Vec<Json> = report
                .points
                .iter()
                .map(|p| {
                    json_object(vec![
                        ("sessions", Json::Number(p.sessions as f64)),
                        ("mutators", Json::Number(p.mutators as f64)),
                        ("touches_per_sec", Json::Number(p.touches_per_sec)),
                        ("p50_touch_micros", Json::Number(p.p50_touch_micros)),
                        ("p99_touch_micros", Json::Number(p.p99_touch_micros)),
                        ("checkouts_per_sec", Json::Number(p.checkouts_per_sec)),
                        (
                            "checkout_p50_nanos",
                            Json::Number(p.checkout_p50_nanos as f64),
                        ),
                        (
                            "checkout_p99_nanos",
                            Json::Number(p.checkout_p99_nanos as f64),
                        ),
                        ("restructures", Json::Number(p.restructures as f64)),
                        ("verified", Json::Bool(p.verified)),
                    ])
                })
                .collect();
            let doc = json_object(vec![
                ("bench", Json::String("catalog_churn".into())),
                ("rows", Json::Number(report.rows as f64)),
                ("churn_rows", Json::Number(report.churn_rows as f64)),
                (
                    "traces_per_session",
                    Json::Number(report.traces_per_session as f64),
                ),
                ("points", Json::Array(points)),
            ]);
            match write_bench_json("catalog_churn", &doc) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write bench json: {e}"),
            }
            let broken = report.points.iter().any(|p| {
                !p.verified
                    || p.touches_per_sec <= 0.0
                    || p.checkouts_per_sec <= 0.0
                    || p.final_epoch < p.first_epoch
                    || (p.mutators > 0 && p.final_epoch <= p.first_epoch)
            });
            if broken {
                eprintln!("ERROR: churn broke verification, throughput or epoch monotonicity");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("catalog churn sweep failed: {e}");
            std::process::exit(1);
        }
    }
}
