//! Catalog-churn workload: explorers keep exploring while mutators
//! restructure the catalog underneath them.
//!
//! dbTouch promises an answer to every gesture in interactive time *even
//! while the user is reshaping the data*. This module makes that claim
//! testable at the serving layer: K seeded explorers run their usual plans
//! over a signal object while M mutator threads continuously restructure a
//! separate churn table — each mutator ping-pongs its own column out of and
//! back into the table (`drag_column_out` / `drag_column_into`), the
//! heaviest catalog publishes the system has.
//!
//! Because the churn table is disjoint from the explored object, the
//! explorers' results must be bit-identical to a churn-free sequential
//! replay: restructures move the catalog epoch, never other sessions'
//! answers. The `catalog_churn` bench in `dbtouch-bench` measures what the
//! churn *does* cost (checkout and touch latency) across mutator counts.

use crate::concurrent::{drive_plans, ConcurrentRunReport, ExplorerPlan};
use crate::scenarios::Scenario;
use dbtouch_core::catalog::SharedCatalog;
use dbtouch_core::kernel::ObjectId;
use dbtouch_server::{ExplorationServer, ServerConfig};
use dbtouch_storage::column::Column;
use dbtouch_storage::table::Table;
use dbtouch_types::{KernelConfig, Result, SizeCm};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Columns the churn table carries for mutators (`churn_c0`..); mutator `m`
/// ping-pongs column `churn_c{m}`, so at most this many mutators can run
/// against one churn catalog.
pub const MAX_CHURN_MUTATORS: usize = 8;

/// Load a scenario's signal column plus a dedicated churn table into a fresh
/// shared catalog. Returns `(catalog, signal object, churn table)`; explorers
/// run over the signal object, mutators restructure the churn table.
pub fn churn_catalog(
    scenario: &Scenario,
    config: KernelConfig,
    churn_rows: usize,
) -> Result<(Arc<SharedCatalog>, ObjectId, ObjectId)> {
    let catalog = Arc::new(SharedCatalog::new(config));
    let signal = catalog.load_column_typed(scenario.signal_column(), SizeCm::new(2.0, 12.0))?;
    let rows = churn_rows.max(1) as i64;
    // One never-dragged key column keeps the table legal when every mutator
    // column is out at once, plus one column per potential mutator.
    let mut columns = vec![Column::from_i64("churn_key", (0..rows).collect())];
    for m in 0..MAX_CHURN_MUTATORS {
        let factor = m as i64 + 1;
        columns.push(Column::from_i64(
            format!("churn_c{m}"),
            (0..rows).map(|i| i * factor).collect(),
        ));
    }
    let table = Table::from_columns("churn", columns)?;
    let churn = catalog.load_table(table, SizeCm::new(8.0, 10.0))?;
    Ok((catalog, signal, churn))
}

/// The outcome of a concurrent run under catalog churn.
#[derive(Debug)]
pub struct ChurnOutcome {
    /// The explorers' reports and wall time (same shape as a churn-free run).
    pub run: ConcurrentRunReport,
    /// Restructures the mutators performed (each ping-pong cycle is two).
    pub restructures: u64,
    /// Errors mutators hit (empty in a correct run: each mutator owns its
    /// column, so restructures never conflict semantically).
    pub mutator_errors: Vec<String>,
    /// Catalog epoch when the run started.
    pub first_epoch: u64,
    /// Catalog epoch when the run finished (monotone: `>= first_epoch`,
    /// strictly greater whenever a mutator ran).
    pub final_epoch: u64,
}

/// Drive all `plans` concurrently while `mutators` threads (capped at
/// [`MAX_CHURN_MUTATORS`]) continuously restructure `churn_table`. Each
/// mutator completes at least one full out-and-back cycle, and always
/// finishes the cycle it started — the churn table ends with its full
/// schema.
pub fn run_concurrent_with_churn(
    catalog: &Arc<SharedCatalog>,
    object: ObjectId,
    plans: &[ExplorerPlan],
    server_config: ServerConfig,
    churn_table: ObjectId,
    mutators: usize,
) -> Result<ChurnOutcome> {
    let first_epoch = catalog.epoch();
    let server = ExplorationServer::serve(server_config.with_catalog(Arc::clone(catalog)))?;
    let stop = Arc::new(AtomicBool::new(false));
    let mutator_threads: Vec<_> = (0..mutators.min(MAX_CHURN_MUTATORS))
        .map(|m| {
            let catalog = Arc::clone(catalog);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || -> (u64, Vec<String>) {
                let column = format!("churn_c{m}");
                let size = SizeCm::new(2.0, 8.0);
                let mut restructures = 0u64;
                let mut errors = Vec::new();
                loop {
                    match catalog.drag_column_out(churn_table, &column, size) {
                        Ok(standalone) => {
                            restructures += 1;
                            match catalog.drag_column_into(churn_table, standalone) {
                                Ok(()) => restructures += 1,
                                Err(e) => {
                                    errors.push(format!("drag_column_into({column}): {e}"));
                                    break;
                                }
                            }
                        }
                        Err(e) => {
                            errors.push(format!("drag_column_out({column}): {e}"));
                            break;
                        }
                    }
                    // Checked after a full cycle: the run always sees at
                    // least one restructure pair and the table ends intact.
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                (restructures, errors)
            })
        })
        .collect();

    let started = Instant::now();
    let driven = drive_plans(&server, object, plans);
    let wall_nanos = started.elapsed().as_nanos() as u64;
    // Stop the churn before propagating any driver error, or the mutator
    // threads would spin forever.
    stop.store(true, Ordering::Relaxed);
    let mut restructures = 0;
    let mut mutator_errors = Vec::new();
    for handle in mutator_threads {
        match handle.join() {
            Ok((done, errors)) => {
                restructures += done;
                mutator_errors.extend(errors);
            }
            Err(_) => mutator_errors.push("mutator thread panicked".into()),
        }
    }
    server.shutdown();
    let sessions = driven?;
    Ok(ChurnOutcome {
        run: ConcurrentRunReport {
            sessions,
            wall_nanos,
        },
        restructures,
        mutator_errors,
        first_epoch,
        final_epoch: catalog.epoch(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::{plan_explorers, run_sequential};

    #[test]
    fn churn_catalog_has_signal_and_churn_table() {
        let scenario = Scenario::sky_survey(5_000, 3);
        let (catalog, signal, churn) =
            churn_catalog(&scenario, KernelConfig::default(), 1_024).unwrap();
        assert_ne!(signal, churn);
        assert_eq!(
            catalog.data(churn).unwrap().schema().len(),
            MAX_CHURN_MUTATORS + 1
        );
        assert!(catalog.data(signal).unwrap().row_count() > 0);
    }

    #[test]
    fn churn_never_perturbs_unrelated_explorers() {
        let scenario = Scenario::sky_survey(20_000, 7);
        let (catalog, signal, churn) =
            churn_catalog(&scenario, KernelConfig::default(), 2_048).unwrap();
        let plans = plan_explorers(&catalog, signal, 4, 2, 42).unwrap();
        let outcome = run_concurrent_with_churn(
            &catalog,
            signal,
            &plans,
            ServerConfig::with_workers(2),
            churn,
            2,
        )
        .unwrap();
        assert!(
            outcome.mutator_errors.is_empty(),
            "mutators: {:?}",
            outcome.mutator_errors
        );
        assert!(
            outcome.run.errors().is_empty(),
            "{:?}",
            outcome.run.errors()
        );
        // Each mutator performs at least one full cycle; every restructure
        // moves the epoch.
        assert!(
            outcome.restructures >= 4,
            "restructures: {}",
            outcome.restructures
        );
        assert!(outcome.final_epoch >= outcome.first_epoch + outcome.restructures);
        // The explored object was never rebuilt, so no session observed a
        // restructure *of its object* — and results are bit-identical to the
        // churn-free sequential replay.
        assert_eq!(outcome.run.total_restructures_seen(), 0);
        let sequential = run_sequential(&catalog, signal, &plans).unwrap();
        assert_eq!(outcome.run.digests(), sequential);
    }

    #[test]
    fn churn_table_ends_with_full_schema() {
        let scenario = Scenario::sky_survey(8_000, 5);
        let (catalog, signal, churn) =
            churn_catalog(&scenario, KernelConfig::default(), 1_024).unwrap();
        let plans = plan_explorers(&catalog, signal, 2, 1, 7).unwrap();
        let outcome = run_concurrent_with_churn(
            &catalog,
            signal,
            &plans,
            ServerConfig::with_workers(2),
            churn,
            MAX_CHURN_MUTATORS + 3, // excess mutators are capped
        )
        .unwrap();
        assert!(outcome.mutator_errors.is_empty());
        let data = catalog.data(churn).unwrap();
        assert_eq!(data.schema().len(), MAX_CHURN_MUTATORS + 1);
        // All ping-pong cycles completed: only the churn table and the
        // signal column remain live.
        assert_eq!(catalog.object_count(), 2);
    }
}
