//! Packaged exploration scenarios.
//!
//! Each scenario bundles a generated data set with the ground truth of the
//! pattern hidden inside it, matching the two motivating use cases of the
//! paper's introduction (astronomy sky survey, IT monitoring stream) plus the
//! generic contest data set of Appendix A.

use crate::datagen::DataGenerator;
use crate::patterns::{Pattern, PatternKind};
use dbtouch_storage::column::Column;
use dbtouch_storage::table::Table;
use dbtouch_types::Result;
use serde::{Deserialize, Serialize};

/// A generated exploration scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (also used as the table/column name).
    pub name: String,
    /// Human-readable description of what an explorer should look for.
    pub task: String,
    /// The signal column the pattern is hidden in.
    pub signal: Vec<f64>,
    /// Additional context columns (identifiers, timestamps, categories).
    pub extra_columns: Vec<(String, Vec<i64>)>,
    /// The hidden patterns (ground truth).
    pub patterns: Vec<Pattern>,
}

impl Scenario {
    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.signal.len() as u64
    }

    /// The main pattern's centre as a fraction of the data (the value an
    /// explorer is trying to locate).
    pub fn target_fraction(&self) -> f64 {
        self.patterns
            .first()
            .map(|p| p.center_fraction(self.rows()))
            .unwrap_or(0.5)
    }

    /// The signal as a storage column named after the scenario.
    pub fn signal_column(&self) -> Column {
        Column::from_f64(self.name.clone(), self.signal.clone())
    }

    /// The signal quantized to integer readings (milli-units), as sensors
    /// would report it. Integer columns are what the segment kernel
    /// decomposes (exact `i128` partial sums merge associatively), so this is
    /// the column of choice for segment-sweep workloads and benches.
    pub fn signal_column_i64(&self) -> Column {
        let quantized = self.signal.iter().map(|v| (v * 1000.0) as i64).collect();
        Column::from_i64(format!("{}_milli", self.name), quantized)
    }

    /// The signal coarsened to at most `levels` discrete bands (equal-width
    /// buckets over the observed range), the way dashboards bin a reading
    /// into severity levels. Band switches apply hysteresis — a reading must
    /// reach 40% into a neighbouring band before the reported band follows —
    /// the standard debounce that stops a noisy signal near a boundary from
    /// flapping between two levels. Cardinality is bounded by `levels` and
    /// the debounced bands form long constant runs, so this is the
    /// low-cardinality, compression-friendly counterpart of
    /// [`Scenario::signal_column_i64`].
    pub fn signal_column_banded(&self, levels: u16) -> Column {
        let levels = levels.max(1) as i64;
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &self.signal {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let span = (hi - lo).max(f64::EPSILON);
        let margin = 0.4;
        let mut current: Option<i64> = None;
        let banded = self
            .signal
            .iter()
            .map(|v| {
                // Continuous band coordinate: band index plus the fraction of
                // the way through that band.
                let x = (v - lo) / span * levels as f64;
                let cand = (x as i64).clamp(0, levels - 1);
                let held = match current {
                    None => cand,
                    Some(held) if cand > held && x - cand as f64 >= margin => cand,
                    Some(held) if cand < held && (cand + 1) as f64 - x >= margin => cand,
                    Some(held) => held,
                };
                current = Some(held);
                held
            })
            .collect();
        Column::from_i64(format!("{}_band", self.name), banded)
    }

    /// The full scenario as a table: signal plus extra columns.
    pub fn table(&self) -> Result<Table> {
        let mut columns = vec![self.signal_column()];
        for (name, values) in &self.extra_columns {
            columns.push(Column::from_i64(name.clone(), values.clone()));
        }
        Table::from_columns(format!("{}_table", self.name), columns)
    }

    /// Astronomy: a sky-brightness scan with one unusually bright region
    /// (e.g. a transient event) hidden at a seeded random position.
    pub fn sky_survey(rows: usize, seed: u64) -> Scenario {
        let mut generator = DataGenerator::new(seed);
        let mut signal = generator.sky_brightness(rows);
        let center = 0.15 + 0.7 * (seed % 97) as f64 / 97.0;
        let pattern = Pattern::outlier_at(rows as u64, center, 0.01, 25.0);
        pattern.apply(&mut signal);
        let declination = generator.uniform_ints(rows, -90, 90);
        Scenario {
            name: "sky_brightness".to_string(),
            task: "find the unusually bright sky region".to_string(),
            signal,
            extra_columns: vec![("declination".to_string(), declination)],
            patterns: vec![pattern],
        }
    }

    /// IT monitoring: a daily-periodic load signal with a sustained level shift
    /// (an incident) starting at a seeded random position.
    pub fn monitoring_stream(rows: usize, seed: u64) -> Scenario {
        let mut generator = DataGenerator::new(seed ^ 0x5eed);
        let mut signal = generator.periodic_load(rows, rows / 20 + 1, 100.0, 15.0, 3.0);
        let start_fraction = 0.2 + 0.6 * (seed % 89) as f64 / 89.0;
        let start_row = (rows as f64 * start_fraction) as u64;
        let len = (rows as u64 / 15).max(1);
        let pattern = Pattern {
            kind: PatternKind::LevelShift { delta: 60.0 },
            start_row,
            len_rows: len,
        };
        pattern.apply(&mut signal);
        let user_ids = generator.zipf(rows, 1000, 1.1);
        Scenario {
            name: "request_latency".to_string(),
            task: "find when the latency incident happened".to_string(),
            signal,
            extra_columns: vec![("user_id".to_string(), user_ids)],
            patterns: vec![pattern],
        }
    }

    /// The generic contest data set of Appendix A: uniform noise with a single
    /// strong outlier cluster.
    pub fn contest(rows: usize, seed: u64) -> Scenario {
        let mut generator = DataGenerator::new(seed.wrapping_mul(0x9e37_79b9));
        let mut signal = generator.gaussian(rows, 50.0, 5.0);
        let center = 0.1 + 0.8 * (seed % 101) as f64 / 101.0;
        let pattern = Pattern::outlier_at(rows as u64, center, 0.02, 40.0);
        pattern.apply(&mut signal);
        Scenario {
            name: "contest_measurements".to_string(),
            task: "find the region of anomalously large measurements".to_string(),
            signal,
            extra_columns: Vec::new(),
            patterns: vec![pattern],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sky_survey_hides_a_bright_region() {
        let s = Scenario::sky_survey(100_000, 42);
        assert_eq!(s.rows(), 100_000);
        assert_eq!(s.patterns.len(), 1);
        let p = s.patterns[0];
        // inside the pattern the signal is clearly brighter than the background
        let inside: f64 = (p.start_row..p.start_row + p.len_rows)
            .map(|i| s.signal[i as usize])
            .sum::<f64>()
            / p.len_rows as f64;
        let outside: f64 = s.signal[..1000].iter().sum::<f64>() / 1000.0;
        assert!(inside > outside + 15.0, "inside {inside} outside {outside}");
        assert!(s.target_fraction() > 0.1 && s.target_fraction() < 0.9);
    }

    #[test]
    fn monitoring_stream_hides_a_level_shift() {
        let s = Scenario::monitoring_stream(50_000, 7);
        let p = s.patterns[0];
        let inside = s.signal[p.start_row as usize + 1];
        let before = s.signal[p.start_row as usize - 100];
        assert!(inside > before + 20.0);
        assert_eq!(s.extra_columns[0].0, "user_id");
    }

    #[test]
    fn scenarios_are_deterministic_per_seed() {
        let a = Scenario::contest(10_000, 5);
        let b = Scenario::contest(10_000, 5);
        let c = Scenario::contest(10_000, 6);
        assert_eq!(a.signal, b.signal);
        assert_eq!(a.patterns, b.patterns);
        assert_ne!(a.patterns[0].start_row, c.patterns[0].start_row);
    }

    #[test]
    fn scenario_table_includes_extra_columns() {
        let s = Scenario::sky_survey(1000, 1);
        let t = s.table().unwrap();
        assert_eq!(t.row_count(), 1000);
        assert_eq!(t.column_count(), 2);
        assert!(t.column("sky_brightness").is_ok());
        assert!(t.column("declination").is_ok());
        let contest = Scenario::contest(1000, 1);
        assert_eq!(contest.table().unwrap().column_count(), 1);
    }

    #[test]
    fn banded_signal_bounds_cardinality_and_tracks_the_pattern() {
        let s = Scenario::monitoring_stream(50_000, 7);
        let c = s.signal_column_banded(8);
        assert_eq!(c.len(), 50_000);
        assert_eq!(c.name(), "request_latency_band");
        let mut distinct = std::collections::BTreeSet::new();
        for i in 0..c.len() {
            match c.get(dbtouch_types::RowId(i)).unwrap() {
                dbtouch_types::Value::Int(v) => {
                    assert!((0..8).contains(&v), "band {v} out of range");
                    distinct.insert(v);
                }
                other => panic!("banded column must be integer, got {other:?}"),
            }
        }
        assert!(distinct.len() > 1, "a shifting signal spans several bands");
        // The level-shift incident lands in a higher band than the baseline
        // (hysteresis may hold the old band for a few samples, so probe a
        // short stretch inside the incident).
        let p = s.patterns[0];
        let band_at = |row: u64| match c.get(dbtouch_types::RowId(row)).unwrap() {
            dbtouch_types::Value::Int(v) => v,
            other => panic!("integer bands expected, got {other:?}"),
        };
        let inside = (p.start_row + 1..p.start_row + 20)
            .map(band_at)
            .max()
            .unwrap();
        let before = band_at(p.start_row - 100);
        assert!(
            inside > before,
            "incident band {inside} vs baseline {before}"
        );
        // Debounced bands hold long constant runs — that is the point of the
        // helper (compression-friendly shape).
        let mut runs = 1u64;
        for i in 1..c.len() {
            if band_at(i) != band_at(i - 1) {
                runs += 1;
            }
        }
        assert!(
            c.len() / runs >= 50,
            "mean run length {} too short for a debounced banded signal",
            c.len() / runs
        );
        // Determinism: same seed, same bands.
        let again = Scenario::monitoring_stream(50_000, 7).signal_column_banded(8);
        assert_eq!(c, again);
    }

    #[test]
    fn signal_column_matches_signal() {
        let s = Scenario::contest(500, 3);
        let c = s.signal_column();
        assert_eq!(c.len(), 500);
        assert_eq!(c.name(), "contest_measurements");
    }
}
