//! Seeded synthetic data generators.
//!
//! All generators are deterministic given a seed so that every experiment in
//! EXPERIMENTS.md can be regenerated exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded generator of synthetic columns.
#[derive(Debug)]
pub struct DataGenerator {
    rng: StdRng,
}

impl DataGenerator {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> DataGenerator {
        DataGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// `n` integers uniform in `[low, high)`.
    pub fn uniform_ints(&mut self, n: usize, low: i64, high: i64) -> Vec<i64> {
        let (low, high) = if low < high {
            (low, high)
        } else {
            (high, low + 1)
        };
        (0..n).map(|_| self.rng.gen_range(low..high)).collect()
    }

    /// `n` floats uniform in `[low, high)`.
    pub fn uniform_floats(&mut self, n: usize, low: f64, high: f64) -> Vec<f64> {
        (0..n).map(|_| self.rng.gen_range(low..high)).collect()
    }

    /// `n` approximately Gaussian floats (sum of 12 uniforms) with the given
    /// mean and standard deviation.
    pub fn gaussian(&mut self, n: usize, mean: f64, std_dev: f64) -> Vec<f64> {
        (0..n)
            .map(|_| {
                let s: f64 = (0..12).map(|_| self.rng.gen_range(0.0..1.0)).sum();
                mean + (s - 6.0) * std_dev
            })
            .collect()
    }

    /// `n` Zipf-like integer ranks in `[1, universe]`: rank `r` is drawn with
    /// probability proportional to `1/r^exponent`. Used for skewed categorical
    /// attributes (e.g. user ids in a monitoring stream).
    pub fn zipf(&mut self, n: usize, universe: u64, exponent: f64) -> Vec<i64> {
        let universe = universe.max(1);
        let weights: Vec<f64> = (1..=universe)
            .map(|r| 1.0 / (r as f64).powf(exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        (0..n)
            .map(|_| {
                let mut target = self.rng.gen_range(0.0..total);
                for (i, w) in weights.iter().enumerate() {
                    if target < *w {
                        return (i + 1) as i64;
                    }
                    target -= w;
                }
                universe as i64
            })
            .collect()
    }

    /// A daily-periodic monitoring signal: `n` samples of a sinusoidal load with
    /// Gaussian noise, `period` samples per "day".
    pub fn periodic_load(
        &mut self,
        n: usize,
        period: usize,
        base: f64,
        amplitude: f64,
        noise: f64,
    ) -> Vec<f64> {
        let period = period.max(1) as f64;
        let noise_samples = self.gaussian(n, 0.0, noise);
        (0..n)
            .map(|i| {
                let phase = 2.0 * std::f64::consts::PI * (i as f64 % period) / period;
                base + amplitude * phase.sin() + noise_samples[i]
            })
            .collect()
    }

    /// A brightness-like signal for the sky-survey scenario: mostly faint
    /// background noise with occasional brighter sources.
    pub fn sky_brightness(&mut self, n: usize) -> Vec<f64> {
        let background = self.gaussian(n, 10.0, 1.5);
        (0..n)
            .map(|i| {
                let source = if self.rng.gen_range(0.0..1.0) < 0.001 {
                    self.rng.gen_range(5.0..15.0)
                } else {
                    0.0
                };
                (background[i] + source).max(0.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = DataGenerator::new(7).uniform_ints(100, 0, 50);
        let b = DataGenerator::new(7).uniform_ints(100, 0, 50);
        let c = DataGenerator::new(8).uniform_ints(100, 0, 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_ints_in_range() {
        let v = DataGenerator::new(1).uniform_ints(1000, -5, 5);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|&x| (-5..5).contains(&x)));
        // degenerate range doesn't panic
        let w = DataGenerator::new(1).uniform_ints(10, 5, 5);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn uniform_floats_in_range() {
        let v = DataGenerator::new(2).uniform_floats(1000, 0.0, 1.0);
        assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn gaussian_statistics() {
        let v = DataGenerator::new(3).gaussian(20_000, 100.0, 5.0);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - 5.0).abs() < 0.5, "std {}", var.sqrt());
    }

    #[test]
    fn zipf_is_skewed() {
        let v = DataGenerator::new(4).zipf(10_000, 100, 1.2);
        assert!(v.iter().all(|&x| (1..=100).contains(&x)));
        let ones = v.iter().filter(|&&x| x == 1).count();
        let fifties = v.iter().filter(|&&x| x == 50).count();
        assert!(ones > 10 * fifties.max(1), "ones={ones} fifties={fifties}");
    }

    #[test]
    fn periodic_load_oscillates() {
        let v = DataGenerator::new(5).periodic_load(1000, 100, 50.0, 20.0, 0.1);
        assert_eq!(v.len(), 1000);
        let max = v.iter().cloned().fold(f64::MIN, f64::max);
        let min = v.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 65.0);
        assert!(min < 35.0);
    }

    #[test]
    fn sky_brightness_non_negative() {
        let v = DataGenerator::new(6).sky_brightness(10_000);
        assert!(v.iter().all(|&x| x >= 0.0));
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean > 8.0 && mean < 12.0);
    }
}
