//! Simulated explorers: dbTouch gestures versus SQL queries.
//!
//! Appendix A of the paper proposes an exploration contest: one participant
//! explores a data set with dbTouch gestures on a tablet, another fires SQL at
//! a column-store DBMS; the winner is whoever figures out the hidden data
//! property first. Humans are replaced here by two simple but honest policies:
//!
//! * [`DbTouchExplorer`] slides over the data object, reads the interactive
//!   summaries that pop up, zooms into the most suspicious region and repeats —
//!   exactly the interaction loop Sections 2.3–2.5 describe.
//! * [`SqlExplorer`] repeatedly partitions the currently suspected range into
//!   buckets and issues one aggregate query per bucket against the blocking
//!   baseline engine, then recurses into the bucket with the most anomalous
//!   aggregate.
//!
//! Both report where they think the pattern is, how much data the system
//! touched on their behalf, and an estimate of elapsed human + system time, so
//! the contest harness can print a side-by-side comparison.

use crate::scenarios::Scenario;
use dbtouch_baseline::engine::Database;
use dbtouch_baseline::query::{AggFunc, Condition, Query};
use dbtouch_core::kernel::{Kernel, TouchAction};
use dbtouch_core::operators::aggregate::AggregateKind;
use dbtouch_gesture::synthesizer::GestureSynthesizer;
use dbtouch_storage::column::Column;
use dbtouch_storage::table::Table;
use dbtouch_types::{DbTouchError, KernelConfig, Result, SizeCm};
use serde::{Deserialize, Serialize};

/// The outcome of one exploration run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoveryReport {
    /// Which explorer produced the report ("dbtouch" or "sql").
    pub system: String,
    /// Where the explorer believes the pattern is, as a fraction of the data.
    pub found_fraction: f64,
    /// Where the pattern actually is.
    pub target_fraction: f64,
    /// Absolute localization error as a fraction of the data.
    pub error_fraction: f64,
    /// Whether the pattern was localized within the requested tolerance.
    pub found: bool,
    /// Rows the system read while exploring.
    pub rows_touched: u64,
    /// Bytes the system read while exploring.
    pub bytes_touched: u64,
    /// Result values / query result rows the simulated human had to inspect.
    pub entries_inspected: u64,
    /// Gestures performed or queries issued.
    pub interactions: u64,
    /// Refinement iterations.
    pub iterations: u64,
    /// Estimated elapsed time including simulated human interaction, seconds.
    pub estimated_seconds: f64,
}

/// The gesture-driven explorer.
#[derive(Debug, Clone)]
pub struct DbTouchExplorer {
    config: KernelConfig,
    /// Duration of each exploratory slide, in seconds.
    pub slide_seconds: f64,
    /// Simulated human think time between gestures, in seconds.
    pub think_seconds: f64,
    /// Maximum refinement iterations.
    pub max_iterations: u64,
}

impl DbTouchExplorer {
    /// Create an explorer using the given kernel configuration.
    pub fn new(config: KernelConfig) -> DbTouchExplorer {
        DbTouchExplorer {
            config,
            slide_seconds: 2.0,
            think_seconds: 1.0,
            max_iterations: 12,
        }
    }

    /// Explore a scenario until the pattern is localized within `tolerance`
    /// (fraction of the data) or the iteration budget is exhausted.
    pub fn explore(&self, scenario: &Scenario, tolerance: f64) -> Result<DiscoveryReport> {
        let tolerance = tolerance.clamp(1e-6, 1.0);
        let mut kernel = Kernel::new(self.config.clone());
        let object = kernel.load_column_typed(
            Column::from_f64(scenario.name.clone(), scenario.signal.clone()),
            SizeCm::new(2.0, 10.0),
        )?;
        kernel.set_action(
            object,
            TouchAction::Summary {
                half_window: None,
                kind: AggregateKind::Avg,
            },
        )?;

        let mut synthesizer = GestureSynthesizer::new(self.config.touch_sample_rate_hz);
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        let mut best_fraction = 0.5;
        let mut rows_touched = 0u64;
        let mut bytes_touched = 0u64;
        let mut entries = 0u64;
        let mut interactions = 0u64;
        let mut iterations = 0u64;
        let mut elapsed = 0.0f64;

        while hi - lo > tolerance && iterations < self.max_iterations {
            iterations += 1;
            interactions += 1;
            let view = kernel.view(object)?;
            let trace = synthesizer.slide_profile(
                &view,
                &[dbtouch_gesture::synthesizer::SlideSegment::movement(
                    lo,
                    hi,
                    self.slide_seconds,
                )],
                dbtouch_types::Timestamp::ZERO,
            );
            let outcome = kernel.run_trace(object, &trace)?;
            rows_touched += outcome.stats.rows_touched;
            bytes_touched += outcome.stats.bytes_touched;
            entries += outcome.stats.entries_returned;
            elapsed += self.slide_seconds + self.think_seconds;
            elapsed +=
                (outcome.stats.compute_nanos + outcome.stats.simulated_access_nanos) as f64 / 1e9;

            // The simulated analyst looks for the most anomalous summary value.
            let best = outcome
                .results
                .results()
                .iter()
                .max_by(|a, b| {
                    let av = a.value().and_then(|v| v.as_f64().ok()).unwrap_or(f64::MIN);
                    let bv = b.value().and_then(|v| v.as_f64().ok()).unwrap_or(f64::MIN);
                    av.total_cmp(&bv)
                })
                .map(|r| r.position_fraction);
            let best = match best {
                Some(f) => f,
                None => break,
            };
            best_fraction = best;

            // Narrow the explored range around the suspicious region and zoom
            // in for finer granularity (Section 2.5, Zoom-in/Zoom-out).
            let width = ((hi - lo) / 4.0).max(tolerance / 2.0);
            lo = (best - width / 2.0).max(0.0);
            hi = (best + width / 2.0).min(1.0);
            kernel.zoom(object, 2.0)?;
            interactions += 1; // the zoom gesture
        }

        let target = scenario.target_fraction();
        let error = (best_fraction - target).abs();
        Ok(DiscoveryReport {
            system: "dbtouch".to_string(),
            found_fraction: best_fraction,
            target_fraction: target,
            error_fraction: error,
            found: error <= tolerance,
            rows_touched,
            bytes_touched,
            entries_inspected: entries,
            interactions,
            iterations,
            estimated_seconds: elapsed,
        })
    }
}

/// An *unsteered* gesture explorer: it performs a fixed budget of whole-object
/// slides and never narrows in on what it has seen. It quantifies how much of
/// dbTouch's benefit comes from the human steering the data flow (Section 2.3:
/// "users react to those results and adjust their gestures accordingly") versus
/// from incremental per-touch processing alone: the steered explorer reaches
/// the same localization accuracy while touching less data and stopping as
/// soon as its drill-down range is tight enough.
#[derive(Debug, Clone)]
pub struct UnsteeredExplorer {
    config: KernelConfig,
    /// Duration of each slide, in seconds.
    pub slide_seconds: f64,
    /// Number of slides performed.
    pub slides: u64,
}

impl UnsteeredExplorer {
    /// Create an unsteered explorer.
    pub fn new(config: KernelConfig) -> UnsteeredExplorer {
        UnsteeredExplorer {
            config,
            slide_seconds: 2.0,
            slides: 12,
        }
    }

    /// Explore a scenario with repeated whole-object slides and report the best
    /// localization achievable without steering.
    pub fn explore(&self, scenario: &Scenario, tolerance: f64) -> Result<DiscoveryReport> {
        let tolerance = tolerance.clamp(1e-6, 1.0);
        let mut kernel = Kernel::new(self.config.clone());
        let object = kernel.load_column_typed(
            Column::from_f64(scenario.name.clone(), scenario.signal.clone()),
            SizeCm::new(2.0, 10.0),
        )?;
        kernel.set_action(
            object,
            TouchAction::Summary {
                half_window: None,
                kind: AggregateKind::Avg,
            },
        )?;
        let mut synthesizer = GestureSynthesizer::new(self.config.touch_sample_rate_hz);
        let mut rows_touched = 0u64;
        let mut bytes_touched = 0u64;
        let mut entries = 0u64;
        let mut best_fraction = 0.5;
        let mut best_value = f64::MIN;
        for _ in 0..self.slides {
            let view = kernel.view(object)?;
            let trace = synthesizer.slide_down(&view, self.slide_seconds);
            let outcome = kernel.run_trace(object, &trace)?;
            rows_touched += outcome.stats.rows_touched;
            bytes_touched += outcome.stats.bytes_touched;
            entries += outcome.stats.entries_returned;
            for r in outcome.results.results() {
                if let Some(v) = r.value().and_then(|v| v.as_f64().ok()) {
                    if v > best_value {
                        best_value = v;
                        best_fraction = r.position_fraction;
                    }
                }
            }
        }
        let target = scenario.target_fraction();
        let error = (best_fraction - target).abs();
        Ok(DiscoveryReport {
            system: "dbtouch-unsteered".to_string(),
            found_fraction: best_fraction,
            target_fraction: target,
            error_fraction: error,
            found: error <= tolerance,
            rows_touched,
            bytes_touched,
            entries_inspected: entries,
            interactions: self.slides,
            iterations: self.slides,
            estimated_seconds: self.slides as f64 * (self.slide_seconds + 1.0),
        })
    }
}

/// The SQL-driven explorer using the blocking baseline engine.
#[derive(Debug, Clone)]
pub struct SqlExplorer {
    /// Number of buckets probed per refinement round.
    pub buckets_per_round: u64,
    /// Simulated human time to write and read one query, in seconds.
    pub seconds_per_query: f64,
    /// Maximum refinement iterations.
    pub max_iterations: u64,
}

impl Default for SqlExplorer {
    fn default() -> Self {
        SqlExplorer {
            buckets_per_round: 8,
            seconds_per_query: 12.0,
            max_iterations: 12,
        }
    }
}

impl SqlExplorer {
    /// Create an explorer with the default settings.
    pub fn new() -> SqlExplorer {
        SqlExplorer::default()
    }

    /// Explore a scenario until the pattern is localized within `tolerance`
    /// (fraction of the data) or the iteration budget is exhausted.
    pub fn explore(&self, scenario: &Scenario, tolerance: f64) -> Result<DiscoveryReport> {
        let tolerance = tolerance.clamp(1e-6, 1.0);
        let rows = scenario.rows();
        if rows == 0 {
            return Err(DbTouchError::InvalidPlan("empty scenario".into()));
        }
        let mut db = Database::new();
        let table = Table::from_columns(
            "data",
            vec![
                Column::from_i64("row_id", (0..rows as i64).collect()),
                Column::from_f64("signal", scenario.signal.clone()),
            ],
        )?;
        db.register(table)?;

        let mut lo = 0u64;
        let mut hi = rows;
        let mut best_center = rows / 2;
        let mut interactions = 0u64;
        let mut iterations = 0u64;
        let mut entries = 0u64;
        let buckets = self.buckets_per_round.max(2);

        while (hi - lo) as f64 / rows as f64 > tolerance && iterations < self.max_iterations {
            iterations += 1;
            let width = ((hi - lo) / buckets).max(1);
            let mut best_avg = f64::MIN;
            let mut best_bucket = (lo, hi);
            let mut b_lo = lo;
            while b_lo < hi {
                let b_hi = (b_lo + width).min(hi);
                let query = Query::from_table("data")
                    .select_aggregate(AggFunc::Avg, Some("signal"))
                    .filter(Condition::between(
                        "row_id",
                        b_lo as i64,
                        (b_hi.saturating_sub(1)) as i64,
                    ));
                let result = db.run(&query)?;
                interactions += 1;
                entries += result.stats.rows_returned;
                let avg = result
                    .scalar()
                    .and_then(|v| v.as_f64().ok())
                    .unwrap_or(f64::MIN);
                if avg > best_avg {
                    best_avg = avg;
                    best_bucket = (b_lo, b_hi);
                }
                b_lo = b_hi;
            }
            lo = best_bucket.0;
            hi = best_bucket.1;
            best_center = (lo + hi) / 2;
        }

        let stats = db.total_stats();
        let target = scenario.target_fraction();
        let found_fraction = best_center as f64 / rows as f64;
        let error = (found_fraction - target).abs();
        Ok(DiscoveryReport {
            system: "sql".to_string(),
            found_fraction,
            target_fraction: target,
            error_fraction: error,
            found: error <= tolerance,
            rows_touched: stats.rows_scanned,
            bytes_touched: stats.bytes_scanned,
            entries_inspected: entries,
            interactions,
            iterations,
            estimated_seconds: interactions as f64 * self.seconds_per_query
                + stats.elapsed_nanos as f64 / 1e9,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbtouch_explorer_finds_contest_pattern() {
        let scenario = Scenario::contest(200_000, 11);
        let explorer = DbTouchExplorer::new(KernelConfig::default());
        let report = explorer.explore(&scenario, 0.02).unwrap();
        assert_eq!(report.system, "dbtouch");
        assert!(
            report.error_fraction < 0.05,
            "error {} too large",
            report.error_fraction
        );
        assert!(report.rows_touched > 0);
        assert!(report.rows_touched < scenario.rows(), "touched everything");
        assert!(report.iterations >= 1);
        assert!(report.estimated_seconds > 0.0);
    }

    #[test]
    fn sql_explorer_finds_contest_pattern() {
        let scenario = Scenario::contest(200_000, 11);
        let explorer = SqlExplorer::new();
        let report = explorer.explore(&scenario, 0.02).unwrap();
        assert_eq!(report.system, "sql");
        assert!(
            report.error_fraction < 0.05,
            "error {} too large",
            report.error_fraction
        );
        // the blocking engine re-scans the filter column every round
        assert!(report.rows_touched > scenario.rows());
        assert!(report.interactions > 5);
    }

    #[test]
    fn dbtouch_touches_far_less_data_than_sql() {
        let scenario = Scenario::contest(200_000, 3);
        let db_report = DbTouchExplorer::new(KernelConfig::default())
            .explore(&scenario, 0.02)
            .unwrap();
        let sql_report = SqlExplorer::new().explore(&scenario, 0.02).unwrap();
        assert!(
            db_report.rows_touched * 10 < sql_report.rows_touched,
            "dbtouch {} vs sql {}",
            db_report.rows_touched,
            sql_report.rows_touched
        );
        assert!(db_report.estimated_seconds < sql_report.estimated_seconds);
    }

    #[test]
    fn explorer_works_on_monitoring_scenario() {
        let scenario = Scenario::monitoring_stream(100_000, 5);
        let report = DbTouchExplorer::new(KernelConfig::default())
            .explore(&scenario, 0.05)
            .unwrap();
        // A level shift is harder to pin to its centre (everything after the
        // shift start is elevated inside the shifted window); just require the
        // estimate to land in the shifted region's neighbourhood.
        let p = scenario.patterns[0];
        let lo = p.start_row as f64 / scenario.rows() as f64 - 0.1;
        let hi = (p.start_row + p.len_rows) as f64 / scenario.rows() as f64 + 0.1;
        assert!(
            report.found_fraction >= lo && report.found_fraction <= hi,
            "found {} not in [{lo}, {hi}]",
            report.found_fraction
        );
    }

    #[test]
    fn steering_reaches_the_same_accuracy_with_less_work() {
        // Both explorers localize the strong contest anomaly, but the steered
        // one stops as soon as its drill-down range is small enough, touching
        // fewer rows and spending less (simulated) time than the fixed budget
        // of unsteered whole-object slides.
        let scenario = Scenario::contest(200_000, 23);
        let steered = DbTouchExplorer::new(KernelConfig::default())
            .explore(&scenario, 0.005)
            .unwrap();
        let unsteered = UnsteeredExplorer::new(KernelConfig::default())
            .explore(&scenario, 0.005)
            .unwrap();
        assert_eq!(unsteered.system, "dbtouch-unsteered");
        assert!(steered.error_fraction < 0.02);
        assert!(unsteered.error_fraction < 0.02);
        assert!(
            steered.rows_touched < unsteered.rows_touched,
            "steered {} vs unsteered {}",
            steered.rows_touched,
            unsteered.rows_touched
        );
        assert!(steered.estimated_seconds < unsteered.estimated_seconds);
    }

    #[test]
    fn sql_explorer_rejects_empty_scenario() {
        let empty = Scenario {
            name: "empty".into(),
            task: "nothing".into(),
            signal: vec![],
            extra_columns: vec![],
            patterns: vec![],
        };
        assert!(SqlExplorer::new().explore(&empty, 0.1).is_err());
    }
}
