//! Concurrent workload driver: K simultaneous explorers over one catalog.
//!
//! The paper imagines a *room* of analysts, each sliding over the same data
//! from their own device. This module simulates that: it plans a deterministic
//! gesture workload for each of K explorers (sky-survey or monitoring-stream
//! style), drives all of them concurrently through `dbtouch-server`'s session
//! manager, and — because every plan is seeded — can replay the exact same
//! workload sequentially through the single-user [`Kernel`] to prove the
//! concurrent results are identical.

use dbtouch_core::catalog::SharedCatalog;
use dbtouch_core::kernel::{Kernel, ObjectId, TouchAction};
use dbtouch_core::operators::aggregate::AggregateKind;
use dbtouch_core::operators::filter::{CompareOp, Predicate};
use dbtouch_gesture::synthesizer::GestureSynthesizer;
use dbtouch_gesture::trace::GestureTrace;
use dbtouch_server::{
    digest_outcomes, ClientSession, ExplorationClient, ExplorationServer, LatencySummary,
    ServerConfig, SessionReport, TraceOutcome,
};
use dbtouch_types::{KernelConfig, Result, SizeCm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

use crate::scenarios::Scenario;

/// The gesture plan of one simulated explorer: a touch action and a sequence
/// of gesture traces, all derived deterministically from a seed.
#[derive(Debug, Clone)]
pub struct ExplorerPlan {
    /// The per-touch action this explorer configures before sliding.
    pub action: TouchAction,
    /// The traces the explorer performs, in order.
    pub traces: Vec<GestureTrace>,
}

impl ExplorerPlan {
    /// Total touch samples across the plan's traces.
    pub fn touches(&self) -> u64 {
        self.traces.iter().map(|t| t.len() as u64).sum()
    }
}

/// Load a scenario's signal column into a fresh shared catalog.
pub fn scenario_catalog(
    scenario: &Scenario,
    config: KernelConfig,
) -> Result<(Arc<SharedCatalog>, ObjectId)> {
    let catalog = Arc::new(SharedCatalog::new(config));
    let id = catalog.load_column_typed(scenario.signal_column(), SizeCm::new(2.0, 12.0))?;
    Ok((catalog, id))
}

/// Plan workloads for `explorers` simultaneous users of `object`.
///
/// Explorers differ deterministically: the action cycles through a survey-ish
/// mix (interactive summaries, plain scans, running aggregates, selective
/// filtered scans) and each explorer's slide durations and pauses come from
/// its own seeded stream. Same seed → same plans → same results, bit for bit.
pub fn plan_explorers(
    catalog: &SharedCatalog,
    object: ObjectId,
    explorers: usize,
    traces_per_explorer: usize,
    seed: u64,
) -> Result<Vec<ExplorerPlan>> {
    let data = catalog.data(object)?;
    let view = data.base_view().clone();
    // Filtered explorers keep values above the column mean, so the predicate
    // stays selective-but-satisfiable whatever the scenario's value range is.
    let mean = {
        let base = data.hierarchies()[0].base();
        let (count, sum, _, _) =
            base.numeric_range_stats(dbtouch_types::RowRange::new(0, base.len()))?;
        if count > 0 {
            sum / count as f64
        } else {
            0.0
        }
    };
    (0..explorers)
        .map(|index| {
            let mut rng = StdRng::seed_from_u64(seed ^ (0x9e37 + index as u64 * 0x1_0001));
            let action = match index % 4 {
                0 => TouchAction::Summary {
                    half_window: Some(5),
                    kind: AggregateKind::Avg,
                },
                1 => TouchAction::Scan,
                2 => TouchAction::Aggregate(AggregateKind::Avg),
                _ => TouchAction::FilteredScan {
                    predicate: Predicate::compare(CompareOp::Ge, mean),
                },
            };
            let mut synthesizer = GestureSynthesizer::new(60.0);
            let traces = (0..traces_per_explorer)
                .map(|_| {
                    let duration = rng.gen_range(0.4f64..1.6);
                    if rng.gen_range(0.0f64..1.0) < 0.25 {
                        synthesizer.exploratory_slide(&view, duration + 1.0)
                    } else {
                        synthesizer.slide_down(&view, duration)
                    }
                })
                .collect();
            Ok(ExplorerPlan { action, traces })
        })
        .collect()
}

/// Plan a *skewed hot-object* workload: every explorer runs the identical
/// summary plan over the same object.
///
/// This models the other extreme from [`plan_explorers`]' survey mix — a
/// dashboard or a "room of analysts" where millions of users look at the same
/// hot data the same way. Each plan cycles through a small pool of seeded
/// slide traces, so the same summary windows recur both *within* a session
/// (a trace repeats later in the plan) and *across* sessions (all explorers
/// run the same traces). Without the shared result cache every session
/// recomputes every window; with it, one computation serves them all.
pub fn plan_hot_object(
    catalog: &SharedCatalog,
    object: ObjectId,
    explorers: usize,
    traces_per_explorer: usize,
    seed: u64,
) -> Result<Vec<ExplorerPlan>> {
    let data = catalog.data(object)?;
    let view = data.base_view().clone();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ca1_ab1e);
    let mut synthesizer = GestureSynthesizer::new(60.0);
    // A small pool of distinct slides, cycled to plan length: even a single
    // session revisits each window once the pool wraps.
    let pool_size = (traces_per_explorer / 2).max(1);
    let pool: Vec<GestureTrace> = (0..pool_size)
        .map(|_| {
            let duration = rng.gen_range(0.5f64..1.2);
            synthesizer.slide_down(&view, duration)
        })
        .collect();
    let traces: Vec<GestureTrace> = (0..traces_per_explorer)
        .map(|i| pool[i % pool_size].clone())
        .collect();
    // Wide summary windows: a dashboard-style "aggregate the visible region"
    // touch that reads thousands of rows per window, so recomputation is
    // expensive enough for shared-cache hits to matter.
    let action = TouchAction::Summary {
        half_window: Some(2_000),
        kind: AggregateKind::Avg,
    };
    Ok((0..explorers)
        .map(|_| ExplorerPlan {
            action: action.clone(),
            traces: traces.clone(),
        })
        .collect())
}

/// A [`KernelConfig`] tuned so every summary window actually exercises the
/// segment kernel: base-level reads (no adaptive coarsening), a touch budget
/// that never truncates the window, and every result cache off so each touch
/// recomputes its window from storage. Used by the segment-sweep workload and
/// the `segment_scan` bench; only the scan knobs vary between swept points,
/// so any digest difference is the scan path's fault.
pub fn segment_sweep_config(scan_parallelism: usize, segment_rows: u64) -> KernelConfig {
    KernelConfig {
        touch_budget_micros: 10_000_000,
        ..KernelConfig::default()
            .with_scan_parallelism(scan_parallelism)
            .with_segment_rows(segment_rows)
            .with_adaptive_sampling(false)
            .with_cache(false)
            .with_shared_cache(false)
            .with_prefetch(false)
    }
}

/// Plan a *segment-sweep* workload: one explorer sliding over a large object
/// with summary windows wide enough (`half_window` rows each side) that every
/// touch decomposes into many segment morsels. Same seed → same traces, so
/// the identical plan can be replayed at every `scan_parallelism` ×
/// `segment_rows` point and the digests compared bit for bit.
pub fn plan_segment_sweep(
    catalog: &SharedCatalog,
    object: ObjectId,
    traces: usize,
    half_window: u64,
    seed: u64,
) -> Result<ExplorerPlan> {
    let view = catalog.data(object)?.base_view().clone();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e9_3e47);
    let mut synthesizer = GestureSynthesizer::new(60.0);
    let traces = (0..traces)
        .map(|_| {
            let duration = rng.gen_range(0.6f64..1.4);
            synthesizer.slide_down(&view, duration)
        })
        .collect();
    Ok(ExplorerPlan {
        action: TouchAction::Summary {
            half_window: Some(half_window),
            kind: AggregateKind::Avg,
        },
        traces,
    })
}

/// The outcome of driving a concurrent workload.
#[derive(Debug)]
pub struct ConcurrentRunReport {
    /// Per-explorer session reports, in explorer order.
    pub sessions: Vec<SessionReport>,
    /// Wall time from first submission to last session close.
    pub wall_nanos: u64,
}

impl ConcurrentRunReport {
    /// Total touch samples processed across all sessions.
    pub fn total_touches(&self) -> u64 {
        self.sessions.iter().map(SessionReport::total_touches).sum()
    }

    /// Total result entries returned across all sessions.
    pub fn total_entries(&self) -> u64 {
        self.sessions.iter().map(SessionReport::total_entries).sum()
    }

    /// Aggregate throughput in touches per second of wall time.
    pub fn touches_per_sec(&self) -> f64 {
        self.total_touches() as f64 / (self.wall_nanos.max(1) as f64 / 1e9)
    }

    /// Per-touch latency percentiles across every session's traces, merged
    /// from the sessions' fixed-memory histograms (exact raw samples exist
    /// only when the run recorded them — see
    /// `ServerConfig::record_raw_latency`).
    pub fn latency_summary(&self) -> LatencySummary {
        SessionReport::merged_latency_summary(&self.sessions)
    }

    /// Per-explorer digests of the deterministic outcome (order matches the
    /// plans handed to [`run_concurrent`]).
    pub fn digests(&self) -> Vec<u64> {
        self.sessions
            .iter()
            .map(SessionReport::result_digest)
            .collect()
    }

    /// Errors across all sessions.
    pub fn errors(&self) -> Vec<&String> {
        self.sessions.iter().flat_map(|s| s.errors.iter()).collect()
    }

    /// Summary windows answered from the shared result cache, across all
    /// sessions.
    pub fn total_shared_cache_hits(&self) -> u64 {
        self.sessions
            .iter()
            .map(SessionReport::total_shared_cache_hits)
            .sum()
    }

    /// Summary windows computed from storage, across all sessions.
    pub fn total_shared_cache_misses(&self) -> u64 {
        self.sessions
            .iter()
            .map(SessionReport::total_shared_cache_misses)
            .sum()
    }

    /// Catalog restructures observed by sessions at gesture boundaries,
    /// across all sessions.
    pub fn total_restructures_seen(&self) -> u64 {
        self.sessions.iter().map(|s| s.restructures_seen).sum()
    }

    /// The newest catalog epoch any session observed.
    pub fn max_observed_epoch(&self) -> u64 {
        self.sessions
            .iter()
            .map(SessionReport::last_epoch)
            .max()
            .unwrap_or(0)
    }

    /// Shared-cache hit rate across all sessions in `[0, 1]`.
    pub fn shared_cache_hit_rate(&self) -> f64 {
        let hits = self.total_shared_cache_hits();
        let total = hits + self.total_shared_cache_misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Drive all `plans` against any exploration service — in-process server or
/// remote transport — through the [`ExplorationClient`] abstraction: one
/// session per explorer, one submitting thread per explorer. Sessions are
/// opened up front (so admission control rejects the whole run, not half of
/// it) and each thread closes its own session, returning the final report.
pub fn drive_plans_over<C: ExplorationClient>(
    client: &C,
    object: ObjectId,
    plans: &[ExplorerPlan],
) -> Result<Vec<SessionReport>> {
    let drivers: Vec<_> = plans
        .iter()
        .map(|plan| client.open_session().map(|session| (session, plan.clone())))
        .collect::<Result<Vec<_>>>()?
        .into_iter()
        .map(|(mut session, plan)| {
            std::thread::spawn(move || -> Result<SessionReport> {
                session.set_action(object, plan.action)?;
                for trace in plan.traces {
                    session.run_trace(object, trace)?;
                }
                session.close()
            })
        })
        .collect();
    let mut sessions = Vec::with_capacity(drivers.len());
    for driver in drivers {
        let report = driver.join().map_err(|_| {
            dbtouch_types::DbTouchError::Internal("driver thread panicked".into())
        })??;
        sessions.push(report);
    }
    Ok(sessions)
}

/// Drive all `plans` against an already-running in-process server. Shared by
/// [`run_concurrent`] and the churn driver
/// ([`crate::churn::run_concurrent_with_churn`]).
pub(crate) fn drive_plans(
    server: &ExplorationServer,
    object: ObjectId,
    plans: &[ExplorerPlan],
) -> Result<Vec<SessionReport>> {
    drive_plans_over(server, object, plans)
}

/// Drive all `plans` concurrently: one served session per explorer, one
/// submitting thread per explorer, all over one shared catalog.
pub fn run_concurrent(
    catalog: &Arc<SharedCatalog>,
    object: ObjectId,
    plans: &[ExplorerPlan],
    server_config: ServerConfig,
) -> Result<ConcurrentRunReport> {
    let server = ExplorationServer::serve(server_config.with_catalog(Arc::clone(catalog)))?;
    let started = Instant::now();
    let sessions = drive_plans(&server, object, plans)?;
    let wall_nanos = started.elapsed().as_nanos() as u64;
    server.shutdown();
    Ok(ConcurrentRunReport {
        sessions,
        wall_nanos,
    })
}

/// Replay the same plans one explorer at a time through the single-user
/// [`Kernel`], returning each explorer's outcome digest. Every explorer gets a
/// fresh kernel over the same catalog — exactly the state a served session
/// starts from.
pub fn run_sequential(
    catalog: &Arc<SharedCatalog>,
    object: ObjectId,
    plans: &[ExplorerPlan],
) -> Result<Vec<u64>> {
    plans
        .iter()
        .map(|plan| {
            let mut kernel = Kernel::from_catalog(Arc::clone(catalog));
            kernel.set_action(object, plan.action.clone())?;
            let mut outcomes = Vec::with_capacity(plan.traces.len());
            for trace in &plan.traces {
                outcomes.push(TraceOutcome {
                    object,
                    outcome: kernel.run_trace(object, trace)?,
                });
            }
            Ok(digest_outcomes(outcomes.iter()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let scenario = Scenario::sky_survey(20_000, 7);
        let (catalog, object) = scenario_catalog(&scenario, KernelConfig::default()).unwrap();
        let a = plan_explorers(&catalog, object, 4, 3, 42).unwrap();
        let b = plan_explorers(&catalog, object, 4, 3, 42).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.action, y.action);
            assert_eq!(x.traces, y.traces);
        }
        let c = plan_explorers(&catalog, object, 4, 3, 43).unwrap();
        assert_ne!(a[0].traces, c[0].traces);
    }

    #[test]
    fn hot_object_plans_repeat_windows_within_and_across_sessions() {
        let scenario = Scenario::sky_survey(30_000, 5);
        let (catalog, object) = scenario_catalog(&scenario, KernelConfig::default()).unwrap();
        let plans = plan_hot_object(&catalog, object, 4, 4, 7).unwrap();
        assert_eq!(plans.len(), 4);
        for plan in &plans {
            assert_eq!(plan.action, plans[0].action);
            assert_eq!(plan.traces, plans[0].traces);
            // The pool cycles: the plan revisits its own traces.
            assert_eq!(plan.traces[0], plan.traces[2]);
        }
        let concurrent =
            run_concurrent(&catalog, object, &plans, ServerConfig::with_workers(2)).unwrap();
        assert!(concurrent.errors().is_empty(), "{:?}", concurrent.errors());
        // Repeated windows must be served from the shared cache...
        assert!(
            concurrent.total_shared_cache_hits() > 0,
            "hot-object workload must hit the shared cache"
        );
        assert!(concurrent.shared_cache_hit_rate() > 0.0);
        // ...without changing a single result bit vs. the sequential replay.
        let sequential = run_sequential(&catalog, object, &plans).unwrap();
        assert_eq!(concurrent.digests(), sequential);
    }

    #[test]
    fn segment_sweep_digests_are_invariant_across_scan_knobs() {
        use dbtouch_types::SizeCm;

        let scenario = Scenario::monitoring_stream(150_000, 13);
        // The integer signal decomposes; plan once (from any catalog — the
        // seeded traces depend only on the view) and replay everywhere.
        let build = |parallelism: usize, segment_rows: u64| {
            let catalog = Arc::new(SharedCatalog::new(segment_sweep_config(
                parallelism,
                segment_rows,
            )));
            let id = catalog
                .load_column_typed(scenario.signal_column_i64(), SizeCm::new(2.0, 12.0))
                .unwrap();
            (catalog, id)
        };
        let (baseline_catalog, baseline_id) = build(1, 65_536);
        let plan = plan_segment_sweep(&baseline_catalog, baseline_id, 2, 40_000, 21).unwrap();
        let baseline =
            run_sequential(&baseline_catalog, baseline_id, std::slice::from_ref(&plan)).unwrap()[0];
        for (parallelism, segment_rows) in [(2, 4096), (4, 7777), (8, 65_536)] {
            let (catalog, id) = build(parallelism, segment_rows);
            let digest = run_sequential(&catalog, id, std::slice::from_ref(&plan)).unwrap()[0];
            assert_eq!(
                digest, baseline,
                "digest drifted at scan_parallelism={parallelism}, segment_rows={segment_rows}"
            );
        }
    }

    #[test]
    fn concurrent_matches_sequential_on_monitoring_stream() {
        let scenario = Scenario::monitoring_stream(30_000, 11);
        let (catalog, object) = scenario_catalog(&scenario, KernelConfig::default()).unwrap();
        let plans = plan_explorers(&catalog, object, 6, 2, 99).unwrap();
        let concurrent =
            run_concurrent(&catalog, object, &plans, ServerConfig::with_workers(3)).unwrap();
        assert!(concurrent.errors().is_empty(), "{:?}", concurrent.errors());
        let sequential = run_sequential(&catalog, object, &plans).unwrap();
        assert_eq!(concurrent.digests(), sequential);
        assert!(concurrent.total_entries() > 0);
        assert!(concurrent.touches_per_sec() > 0.0);
    }
}
