//! # dbtouch-workload
//!
//! Synthetic data, hidden patterns and simulated explorers for the dbTouch
//! evaluation.
//!
//! The paper motivates dbTouch with two exploration scenarios — an astronomer
//! browsing parts of the sky and an IT analyst browsing monitoring streams —
//! and evaluates the prototype's exploration value with a demo contest where a
//! dbTouch user and a SQL user race to discover hidden data properties
//! (Appendix A). This crate makes those scenarios executable and repeatable:
//!
//! * [`datagen`] — seeded generators for the base signals (uniform, Gaussian,
//!   Zipf-like, daily-periodic monitoring load).
//! * [`patterns`] — injectable, ground-truthed anomalies (outlier clusters,
//!   level shifts, linear trends) that the explorers are asked to find.
//! * [`scenarios`] — the packaged data sets: the sky survey and the monitoring
//!   stream, each a column (or table) plus the ground truth of what is hidden
//!   inside it.
//! * [`explorer`] — simulated users: a dbTouch explorer that slides, reads
//!   interactive summaries and zooms into suspicious regions, and a SQL
//!   explorer that fires aggregate queries at the baseline engine. Both report
//!   how much data they touched and how close they got to the hidden pattern.
//! * [`concurrent`] — K simultaneous explorers driven through
//!   `dbtouch-server` against one shared catalog, with a seeded sequential
//!   replay that proves the concurrent results are identical.
//! * [`churn`] — the live-restructure scenario: the same explorers while
//!   mutator threads continuously drag columns out of (and back into) a
//!   churn table, exercising the epoch-versioned catalog under write load.
//! * [`persistence`] — the durability round trip: build a catalog, serve
//!   concurrent sessions, persist, reopen (in a fresh process) and replay
//!   the same seeded workload to bit-identical digests from paged storage.
//! * [`remote`] — the device/cloud scenario: thin devices holding only
//!   coarse samples, slow detail slides going to a simulated cloud server —
//!   all-local vs. blocking vs. overlapped remote fetches, digest-verified.

pub mod churn;
pub mod concurrent;
pub mod datagen;
pub mod explorer;
pub mod patterns;
pub mod persistence;
pub mod remote;
pub mod scenarios;

pub use churn::{churn_catalog, run_concurrent_with_churn, ChurnOutcome, MAX_CHURN_MUTATORS};
pub use concurrent::{
    drive_plans_over, plan_explorers, plan_hot_object, plan_segment_sweep, run_concurrent,
    run_sequential, segment_sweep_config, ConcurrentRunReport, ExplorerPlan,
};
pub use datagen::DataGenerator;
pub use explorer::{DbTouchExplorer, DiscoveryReport, SqlExplorer, UnsteeredExplorer};
pub use patterns::{Pattern, PatternKind};
pub use persistence::{
    build_and_persist, replay_persisted, ReplayOutcome, RoundTripRecord, RoundTripSpec,
};
pub use remote::{device_cloud_catalog, device_cloud_config, plan_device_cloud, RemoteMode};
pub use scenarios::Scenario;
