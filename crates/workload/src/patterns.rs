//! Ground-truthed pattern injection.
//!
//! The demo contest asks participants to "figure out the data properties and
//! patterns" hidden in the provided data sets. To make that measurable, every
//! injected pattern carries its ground truth (where it is and what it is), and
//! the explorers are scored by how close they get to it while touching as
//! little data as possible.

use serde::{Deserialize, Serialize};

/// The kind of anomaly injected into a signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PatternKind {
    /// A contiguous cluster of unusually large values.
    OutlierCluster {
        /// Value added to every sample of the cluster.
        magnitude: f64,
    },
    /// A persistent level shift starting at the pattern location.
    LevelShift {
        /// Value added to every sample from the location onwards.
        delta: f64,
    },
    /// A linear trend superimposed over the affected region.
    Trend {
        /// Total increase across the affected region.
        total_increase: f64,
    },
}

/// One injected pattern with its ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pattern {
    /// The kind of anomaly.
    pub kind: PatternKind,
    /// First affected row.
    pub start_row: u64,
    /// Number of affected rows (for [`PatternKind::LevelShift`] this is the
    /// shifted region's length; the shift persists through it).
    pub len_rows: u64,
}

impl Pattern {
    /// The centre of the affected region as a fraction of `total_rows`.
    pub fn center_fraction(&self, total_rows: u64) -> f64 {
        if total_rows == 0 {
            return 0.0;
        }
        (self.start_row as f64 + self.len_rows as f64 / 2.0) / total_rows as f64
    }

    /// True if `row` falls inside the affected region.
    pub fn covers(&self, row: u64) -> bool {
        row >= self.start_row && row < self.start_row + self.len_rows
    }

    /// Apply the pattern to a signal in place. Rows beyond the signal are
    /// ignored.
    pub fn apply(&self, data: &mut [f64]) {
        let start = self.start_row as usize;
        let end = ((self.start_row + self.len_rows) as usize).min(data.len());
        if start >= data.len() || start >= end {
            return;
        }
        match self.kind {
            PatternKind::OutlierCluster { magnitude } => {
                for v in &mut data[start..end] {
                    *v += magnitude;
                }
            }
            PatternKind::LevelShift { delta } => {
                for v in &mut data[start..end] {
                    *v += delta;
                }
            }
            PatternKind::Trend { total_increase } => {
                let n = (end - start).max(1) as f64;
                for (i, v) in data[start..end].iter_mut().enumerate() {
                    *v += total_increase * (i as f64 / n);
                }
            }
        }
    }

    /// Convenience constructor: an outlier cluster centred at a fraction of the
    /// data with a relative width.
    pub fn outlier_at(
        total_rows: u64,
        center_fraction: f64,
        width_fraction: f64,
        magnitude: f64,
    ) -> Pattern {
        let len = ((total_rows as f64 * width_fraction).round() as u64).max(1);
        let center = (total_rows as f64 * center_fraction.clamp(0.0, 1.0)) as u64;
        let start = center
            .saturating_sub(len / 2)
            .min(total_rows.saturating_sub(len));
        Pattern {
            kind: PatternKind::OutlierCluster { magnitude },
            start_row: start,
            len_rows: len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outlier_cluster_raises_values() {
        let mut data = vec![1.0; 100];
        let p = Pattern {
            kind: PatternKind::OutlierCluster { magnitude: 10.0 },
            start_row: 40,
            len_rows: 10,
        };
        p.apply(&mut data);
        assert_eq!(data[39], 1.0);
        assert_eq!(data[40], 11.0);
        assert_eq!(data[49], 11.0);
        assert_eq!(data[50], 1.0);
        assert!(p.covers(45));
        assert!(!p.covers(50));
    }

    #[test]
    fn level_shift_and_trend() {
        let mut shift = vec![0.0; 10];
        Pattern {
            kind: PatternKind::LevelShift { delta: 3.0 },
            start_row: 5,
            len_rows: 5,
        }
        .apply(&mut shift);
        assert_eq!(
            shift,
            vec![0.0, 0.0, 0.0, 0.0, 0.0, 3.0, 3.0, 3.0, 3.0, 3.0]
        );

        let mut trend = vec![0.0; 10];
        Pattern {
            kind: PatternKind::Trend {
                total_increase: 10.0,
            },
            start_row: 0,
            len_rows: 10,
        }
        .apply(&mut trend);
        assert_eq!(trend[0], 0.0);
        assert!(trend[9] > trend[5]);
        assert!(trend[9] <= 10.0);
    }

    #[test]
    fn center_fraction() {
        let p = Pattern {
            kind: PatternKind::OutlierCluster { magnitude: 1.0 },
            start_row: 450,
            len_rows: 100,
        };
        assert!((p.center_fraction(1000) - 0.5).abs() < 1e-9);
        assert_eq!(p.center_fraction(0), 0.0);
    }

    #[test]
    fn outlier_at_constructor_clamps() {
        let p = Pattern::outlier_at(1000, 0.99, 0.1, 5.0);
        assert!(p.start_row + p.len_rows <= 1000);
        assert_eq!(p.len_rows, 100);
        let q = Pattern::outlier_at(1000, 0.5, 0.05, 5.0);
        assert!((q.center_fraction(1000) - 0.5).abs() < 0.05);
    }

    #[test]
    fn apply_out_of_bounds_is_safe() {
        let mut data = vec![1.0; 10];
        Pattern {
            kind: PatternKind::OutlierCluster { magnitude: 5.0 },
            start_row: 50,
            len_rows: 10,
        }
        .apply(&mut data);
        assert!(data.iter().all(|&v| v == 1.0));
        // partially overlapping tail
        Pattern {
            kind: PatternKind::OutlierCluster { magnitude: 5.0 },
            start_row: 8,
            len_rows: 10,
        }
        .apply(&mut data);
        assert_eq!(data[7], 1.0);
        assert_eq!(data[8], 6.0);
        assert_eq!(data[9], 6.0);
    }
}
