//! Persistence round-trip workload: build → persist → reopen → replay.
//!
//! The durability gate of the persistent catalog is *result transparency
//! across a restart*: a catalog persisted after serving concurrent sessions
//! must, when reopened (ideally in a fresh process), replay the exact same
//! seeded workload to bit-identical result digests — every row now faulting
//! through the paged store instead of living in memory.
//!
//! This module packages that check so the CI smoke, the integration tests
//! and the benches share one harness, reusing the digest verification of
//! [`crate::concurrent`]:
//!
//! * [`build_and_persist`] loads a seeded scenario, drives `sessions`
//!   concurrent explorers through the exploration server, persists the
//!   catalog into `dir` and records the expected digests (plus everything
//!   needed to re-plan the workload) in `expected.json` inside `dir`.
//! * [`replay_persisted`] — typically in a *different process* — reopens the
//!   directory, re-plans the same seeded workload against the reopened
//!   catalog, drives it concurrently again and compares digests.

use crate::concurrent::{plan_explorers, run_concurrent};
use crate::scenarios::Scenario;
use dbtouch_core::catalog::SharedCatalog;
use dbtouch_server::ServerConfig;
use dbtouch_types::json::{self, Json};
use dbtouch_types::{DbTouchError, KernelConfig, Result, SizeCm};
use std::path::Path;
use std::sync::Arc;

/// Parameters of one round-trip workload; persisted alongside the catalog so
/// the replaying process reconstructs the identical plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundTripSpec {
    /// Rows of the sky-survey scenario column.
    pub rows: usize,
    /// Concurrent explorer sessions.
    pub sessions: usize,
    /// Gesture traces per session.
    pub traces_per_session: usize,
    /// Seed of both the scenario data and the explorer plans.
    pub seed: u64,
}

/// What `build_and_persist` recorded and `replay_persisted` must reproduce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundTripRecord {
    /// The workload parameters.
    pub spec: RoundTripSpec,
    /// Catalog epoch that was persisted.
    pub epoch: u64,
    /// Per-session result digests of the pre-persist concurrent run.
    pub digests: Vec<u64>,
}

/// File inside the catalog directory holding the expected digests.
pub const EXPECTED_FILE: &str = "expected.json";

fn record_to_json(record: &RoundTripRecord) -> Json {
    json::object([
        ("rows", Json::Number(record.spec.rows as f64)),
        ("sessions", Json::Number(record.spec.sessions as f64)),
        (
            "traces_per_session",
            Json::Number(record.spec.traces_per_session as f64),
        ),
        // Seeds and digests are full-width u64: store as hex strings, not
        // JSON numbers (f64 would round above 2^53).
        ("seed", Json::String(format!("{:016x}", record.spec.seed))),
        ("epoch", Json::Number(record.epoch as f64)),
        (
            "digests",
            Json::Array(
                record
                    .digests
                    .iter()
                    .map(|d| Json::String(format!("{d:016x}")))
                    .collect(),
            ),
        ),
    ])
}

fn record_from_json(j: &Json) -> Result<RoundTripRecord> {
    let bad = |what: &str| DbTouchError::Corrupt(format!("expected.json: bad {what}"));
    let u64_of = |key: &str| j.get(key).and_then(Json::as_u64).ok_or_else(|| bad(key));
    let hex = |v: &Json| -> Result<u64> {
        v.as_str()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| bad("hex digest"))
    };
    Ok(RoundTripRecord {
        spec: RoundTripSpec {
            rows: u64_of("rows")? as usize,
            sessions: u64_of("sessions")? as usize,
            traces_per_session: u64_of("traces_per_session")? as usize,
            seed: hex(j.get("seed").ok_or_else(|| bad("seed"))?)?,
        },
        epoch: u64_of("epoch")?,
        digests: j
            .get("digests")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("digests"))?
            .iter()
            .map(hex)
            .collect::<Result<Vec<_>>>()?,
    })
}

/// Build a seeded catalog, drive the concurrent workload, persist into `dir`
/// and record the expected digests there. Returns the record written.
pub fn build_and_persist(
    dir: impl AsRef<Path>,
    spec: &RoundTripSpec,
    config: KernelConfig,
    server: ServerConfig,
) -> Result<RoundTripRecord> {
    let scenario = Scenario::sky_survey(spec.rows, spec.seed);
    let catalog = Arc::new(SharedCatalog::new(config));
    let object = catalog.load_column_typed(scenario.signal_column(), SizeCm::new(2.0, 12.0))?;
    let plans = plan_explorers(
        &catalog,
        object,
        spec.sessions,
        spec.traces_per_session,
        spec.seed,
    )?;
    let report = run_concurrent(&catalog, object, &plans, server)?;
    if !report.errors().is_empty() {
        return Err(DbTouchError::Internal(format!(
            "round-trip build saw session errors: {:?}",
            report.errors()
        )));
    }
    let epoch = catalog.persist_to(&dir)?;
    let record = RoundTripRecord {
        spec: spec.clone(),
        epoch,
        digests: report.digests(),
    };
    std::fs::write(
        dir.as_ref().join(EXPECTED_FILE),
        record_to_json(&record).pretty(),
    )
    .map_err(|e| DbTouchError::Io(format!("write {EXPECTED_FILE}: {e}")))?;
    Ok(record)
}

/// The two digest vectors a replay compares.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// What `build_and_persist` recorded.
    pub expected: RoundTripRecord,
    /// Epoch the reopened catalog recovered to.
    pub reopened_epoch: u64,
    /// Digests of the replay against the reopened catalog.
    pub actual: Vec<u64>,
}

impl ReplayOutcome {
    /// True when the reopened catalog recovered the persisted epoch and
    /// every session's digest is bit-identical.
    pub fn verified(&self) -> bool {
        self.reopened_epoch == self.expected.epoch && self.actual == self.expected.digests
    }
}

/// Reopen a persisted round-trip directory and replay its recorded workload,
/// comparing digests. Run this from a fresh process to prove durability
/// end-to-end (the CI smoke does).
pub fn replay_persisted(
    dir: impl AsRef<Path>,
    config: KernelConfig,
    server: ServerConfig,
) -> Result<ReplayOutcome> {
    let text = std::fs::read_to_string(dir.as_ref().join(EXPECTED_FILE))
        .map_err(|e| DbTouchError::Io(format!("read {EXPECTED_FILE}: {e}")))?;
    let expected = record_from_json(
        &json::parse(&text).map_err(|e| DbTouchError::Corrupt(format!("expected.json: {e}")))?,
    )?;
    let catalog = Arc::new(SharedCatalog::open(&dir, config)?);
    let reopened_epoch = catalog.epoch();
    let scenario = Scenario::sky_survey(expected.spec.rows, expected.spec.seed);
    let object = catalog.object_id(&scenario.name)?;
    let plans = plan_explorers(
        &catalog,
        object,
        expected.spec.sessions,
        expected.spec.traces_per_session,
        expected.spec.seed,
    )?;
    let report = run_concurrent(&catalog, object, &plans, server)?;
    if !report.errors().is_empty() {
        return Err(DbTouchError::Internal(format!(
            "round-trip replay saw session errors: {:?}",
            report.errors()
        )));
    }
    Ok(ReplayOutcome {
        expected,
        reopened_epoch,
        actual: report.digests(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dbtouch-workload-persist-{}-{}-{tag}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn record_json_round_trip() {
        let record = RoundTripRecord {
            spec: RoundTripSpec {
                rows: 1000,
                sessions: 8,
                traces_per_session: 3,
                seed: u64::MAX - 3,
            },
            epoch: 1,
            digests: vec![u64::MAX, 0, 42],
        };
        let parsed = record_from_json(&json::parse(&record_to_json(&record).pretty()).unwrap());
        assert_eq!(parsed.unwrap(), record);
    }

    #[test]
    fn build_then_replay_verifies_in_process() {
        let dir = temp_dir("in-process");
        let spec = RoundTripSpec {
            rows: 30_000,
            sessions: 8,
            traces_per_session: 2,
            seed: 1234,
        };
        let record = build_and_persist(
            &dir,
            &spec,
            KernelConfig::default(),
            ServerConfig::with_workers(4),
        )
        .unwrap();
        assert_eq!(record.digests.len(), 8);
        let outcome =
            replay_persisted(&dir, KernelConfig::default(), ServerConfig::with_workers(4)).unwrap();
        assert!(outcome.verified(), "{outcome:?}");
        // A smaller buffer pool changes performance, never results.
        let tiny = KernelConfig::default().with_buffer_pool_pages(8);
        let outcome = replay_persisted(&dir, tiny, ServerConfig::with_workers(2)).unwrap();
        assert!(outcome.verified(), "tiny pool must not change digests");
    }
}
