//! The device/cloud exploration scenario: thin touch devices over a simulated
//! cloud server (Section 4, "Remote Processing").
//!
//! Every explorer runs interactive summaries over the scenario's signal
//! column from a device that holds only the coarse sample levels. Slow,
//! detail-seeking slides decide sample levels finer than the device holds and
//! go to the (simulated) server; fast skimming slides stay device-local. The
//! same plans run under three kernel configurations —
//!
//! * **all-local** (no split): the ground truth,
//! * **blocking** split: every fine-level window stalls the session inline
//!   for the simulated round trip,
//! * **overlapped** split: fine-level windows answer provisionally from the
//!   coarsest local level and refine asynchronously through
//!   `core::remote_exec` —
//!
//! and a drained run must produce bit-identical digests in all three, which
//! is what the `remote_overlap` benchmark verifies while measuring how much
//! throughput overlapping recovers.

use crate::concurrent::ExplorerPlan;
use crate::scenarios::Scenario;
use dbtouch_core::catalog::SharedCatalog;
use dbtouch_core::kernel::{ObjectId, TouchAction};
use dbtouch_core::operators::aggregate::AggregateKind;
use dbtouch_gesture::synthesizer::GestureSynthesizer;
use dbtouch_types::{KernelConfig, RemoteSplitConfig, Result, SizeCm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Which storage tier configuration a device/cloud run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteMode {
    /// No split: everything device-resident (the ground-truth baseline).
    AllLocal,
    /// Device/cloud split with inline (synchronous) remote fetches.
    Blocking,
    /// Device/cloud split with asynchronous, overlapped remote fetches.
    Overlapped,
}

impl RemoteMode {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RemoteMode::AllLocal => "all_local",
            RemoteMode::Blocking => "blocking",
            RemoteMode::Overlapped => "overlapped",
        }
    }
}

/// Sample levels the device/cloud scenario builds per column. Deeper than
/// the kernel default so there is a meaningful tier boundary: the device
/// keeps only the coarsest level, everything finer lives on the server.
pub const DEVICE_CLOUD_SAMPLE_LEVELS: u8 = 12;

/// The device boundary: levels `>= 11` (the coarsest) are on-device.
pub const DEVICE_LOCAL_MIN_LEVEL: u8 = 11;

/// The split `network` describes, at the scenario's standard boundary.
/// `None` network uses the default WAN model (40ms round trip).
pub fn device_cloud_split(
    mode: RemoteMode,
    network: Option<(u64, u64)>,
) -> Option<RemoteSplitConfig> {
    let overlapped = match mode {
        RemoteMode::AllLocal => return None,
        RemoteMode::Blocking => false,
        RemoteMode::Overlapped => true,
    };
    let mut split = RemoteSplitConfig::default()
        .with_local_min_level(DEVICE_LOCAL_MIN_LEVEL)
        .with_overlapped(overlapped);
    if let Some((round_trip_micros, rows_per_milli)) = network {
        split = split.with_network(round_trip_micros, rows_per_milli);
    }
    Some(split)
}

/// The kernel configuration of a device/cloud run: a deep sample hierarchy
/// plus the mode's split. All three modes share every other knob, so results
/// are comparable bit for bit.
pub fn device_cloud_config(mode: RemoteMode, network: Option<(u64, u64)>) -> KernelConfig {
    KernelConfig::default()
        .with_sample_levels(DEVICE_CLOUD_SAMPLE_LEVELS)
        .with_remote_split(device_cloud_split(mode, network))
}

/// Load the scenario's signal column into a fresh catalog configured for
/// `mode`. The view geometry is identical across modes, so one set of plans
/// drives all of them.
pub fn device_cloud_catalog(
    scenario: &Scenario,
    mode: RemoteMode,
    network: Option<(u64, u64)>,
) -> Result<(Arc<SharedCatalog>, ObjectId)> {
    let catalog = Arc::new(SharedCatalog::new(device_cloud_config(mode, network)));
    let id = catalog.load_column_typed(scenario.signal_column(), SizeCm::new(2.0, 12.0))?;
    Ok((catalog, id))
}

/// Plan `explorers` device/cloud users: every plan is summary-only and
/// alternates slow, detail-seeking slides (fine sample levels → remote
/// traffic) with fast skims (coarse levels → device-local), seeded per
/// explorer so any run can be replayed bit for bit.
pub fn plan_device_cloud(
    catalog: &SharedCatalog,
    object: ObjectId,
    explorers: usize,
    traces_per_explorer: usize,
    seed: u64,
) -> Result<Vec<ExplorerPlan>> {
    let view = catalog.data(object)?.base_view().clone();
    Ok((0..explorers)
        .map(|index| {
            let mut rng = StdRng::seed_from_u64(seed ^ (0xdecade + index as u64 * 0x2_0003));
            let mut synthesizer = GestureSynthesizer::new(60.0);
            let traces = (0..traces_per_explorer)
                .map(|trace| {
                    // Even traces study (slow → fine → remote), odd traces
                    // skim (fast → coarse → local).
                    let duration = if trace % 2 == 0 {
                        rng.gen_range(2.6f64..3.2)
                    } else {
                        rng.gen_range(0.5f64..0.8)
                    };
                    synthesizer.slide_down(&view, duration)
                })
                .collect();
            ExplorerPlan {
                action: TouchAction::Summary {
                    half_window: Some(5),
                    kind: AggregateKind::Avg,
                },
                traces,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::{run_concurrent, run_sequential};
    use dbtouch_server::ServerConfig;

    // A fast link so the test suite does not sleep through WAN round trips.
    const FAST_LINK: Option<(u64, u64)> = Some((300, 10_000));

    #[test]
    fn plans_are_deterministic_and_mode_independent() {
        let scenario = Scenario::sky_survey(60_000, 3);
        let (local, object) = device_cloud_catalog(&scenario, RemoteMode::AllLocal, None).unwrap();
        let (remote, robj) =
            device_cloud_catalog(&scenario, RemoteMode::Overlapped, FAST_LINK).unwrap();
        assert_eq!(object, robj);
        let a = plan_device_cloud(&local, object, 3, 4, 99).unwrap();
        let b = plan_device_cloud(&remote, robj, 3, 4, 99).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.action, y.action);
            assert_eq!(x.traces, y.traces, "same view ⇒ same plans across modes");
        }
    }

    #[test]
    fn all_three_modes_digest_identically() {
        let scenario = Scenario::sky_survey(120_000, 21);
        let (local, object) = device_cloud_catalog(&scenario, RemoteMode::AllLocal, None).unwrap();
        let plans = plan_device_cloud(&local, object, 4, 2, 7).unwrap();
        let expected = run_sequential(&local, object, &plans).unwrap();

        for mode in [
            RemoteMode::AllLocal,
            RemoteMode::Blocking,
            RemoteMode::Overlapped,
        ] {
            let (catalog, id) = device_cloud_catalog(&scenario, mode, FAST_LINK).unwrap();
            let run = run_concurrent(&catalog, id, &plans, ServerConfig::with_workers(2)).unwrap();
            assert!(run.errors().is_empty(), "{mode:?}: {:?}", run.errors());
            assert_eq!(run.digests(), expected, "{mode:?} digests must match");
            let remote: u64 = run
                .sessions
                .iter()
                .map(|s| s.total_remote().total_requests())
                .sum();
            match mode {
                RemoteMode::AllLocal => assert_eq!(remote, 0),
                RemoteMode::Blocking | RemoteMode::Overlapped => {
                    assert!(remote > 0, "{mode:?}: slow slides must go remote")
                }
            }
        }
    }
}
