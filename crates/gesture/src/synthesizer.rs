//! Gesture synthesis: generating realistic touch traces.
//!
//! The paper's evaluation is driven by a human finger on an iPad. In this
//! reproduction the finger is replaced by the [`GestureSynthesizer`], which
//! emits touch traces with the same observable characteristics:
//!
//! * samples arrive at a fixed rate (60 Hz by default, like iOS),
//! * a slide covers a start-to-end path over the view at a controllable speed,
//!   possibly with pauses, speed changes and direction reversals,
//! * pinch and rotate gestures use two fingers.
//!
//! Because the kernel only ever sees `(location, timestamp, phase)` tuples, a
//! synthesized trace exercises exactly the same code paths as a physical
//! gesture; the number of entries processed in Figure 4 is a function of the
//! sampling rate, the gesture duration and the object size — all of which are
//! explicit parameters here.

use crate::touch::{TouchEvent, TouchPhase};
use crate::trace::GestureTrace;
use crate::view::View;
use dbtouch_types::{PointCm, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One segment of a slide: move from `from_fraction` to `to_fraction` of the
/// view's scroll extent over `duration_s` seconds. Equal fractions produce a
/// pause of the given duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlideSegment {
    /// Starting position as a fraction of the scroll extent in `[0, 1]`.
    pub from_fraction: f64,
    /// Ending position as a fraction of the scroll extent in `[0, 1]`.
    pub to_fraction: f64,
    /// Duration of the segment in seconds.
    pub duration_s: f64,
}

impl SlideSegment {
    /// A movement segment.
    pub fn movement(from_fraction: f64, to_fraction: f64, duration_s: f64) -> SlideSegment {
        SlideSegment {
            from_fraction,
            to_fraction,
            duration_s,
        }
    }

    /// A pause at a position.
    pub fn pause(at_fraction: f64, duration_s: f64) -> SlideSegment {
        SlideSegment {
            from_fraction: at_fraction,
            to_fraction: at_fraction,
            duration_s,
        }
    }
}

/// Synthesizes touch traces at a fixed sampling rate.
///
/// ```
/// use dbtouch_gesture::synthesizer::GestureSynthesizer;
/// use dbtouch_gesture::view::View;
/// use dbtouch_types::SizeCm;
///
/// let view = View::for_column("col", 10_000_000, SizeCm::new(2.0, 10.0)).unwrap();
/// let mut synthesizer = GestureSynthesizer::new(60.0);
/// // A two-second top-to-bottom slide registers ~120 touch samples.
/// let trace = synthesizer.slide_down(&view, 2.0);
/// assert!(trace.validate().is_ok());
/// assert!((trace.len() as i64 - 122).abs() < 10);
/// ```
#[derive(Debug, Clone)]
pub struct GestureSynthesizer {
    sample_rate_hz: f64,
    jitter_cm: f64,
    rng: StdRng,
}

impl GestureSynthesizer {
    /// Create a synthesizer sampling at `sample_rate_hz` events per second.
    /// Rates that are not finite and positive fall back to 60 Hz.
    pub fn new(sample_rate_hz: f64) -> GestureSynthesizer {
        let rate = if sample_rate_hz.is_finite() && sample_rate_hz > 0.0 {
            sample_rate_hz
        } else {
            60.0
        };
        GestureSynthesizer {
            sample_rate_hz: rate,
            jitter_cm: 0.0,
            rng: StdRng::seed_from_u64(0x0db7_0c11),
        }
    }

    /// Add Gaussian-ish positional jitter (uniform in `[-jitter, +jitter]` per
    /// axis) to every sample, seeded deterministically for reproducibility.
    pub fn with_jitter(mut self, jitter_cm: f64, seed: u64) -> GestureSynthesizer {
        self.jitter_cm = jitter_cm.max(0.0);
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// The sampling rate in Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Interval between samples in milliseconds (at least 1).
    fn sample_interval_ms(&self) -> u64 {
        ((1000.0 / self.sample_rate_hz).round() as u64).max(1)
    }

    fn jittered(&mut self, p: PointCm) -> PointCm {
        if self.jitter_cm == 0.0 {
            return p;
        }
        let dx = self.rng.gen_range(-self.jitter_cm..=self.jitter_cm);
        let dy = self.rng.gen_range(-self.jitter_cm..=self.jitter_cm);
        PointCm::new(p.x + dx, p.y + dy)
    }

    /// Position in view-local coordinates for a given fraction of the scroll
    /// extent; the cross-axis coordinate is the middle of the view.
    fn position_at_fraction(view: &View, fraction: f64) -> PointCm {
        let fraction = fraction.clamp(0.0, 1.0);
        let along = view.scroll_extent() * fraction;
        let across = view.cross_extent() / 2.0;
        match view.orientation {
            dbtouch_types::Orientation::Vertical => PointCm::new(across, along),
            dbtouch_types::Orientation::Horizontal => PointCm::new(along, across),
        }
    }

    /// A single tap at a fraction of the scroll extent.
    pub fn tap(&mut self, view: &View, at_fraction: f64) -> GestureTrace {
        self.tap_at(view, at_fraction, Timestamp::ZERO)
    }

    /// A single tap starting at `start` (for chaining gestures into sessions).
    pub fn tap_at(&mut self, view: &View, at_fraction: f64, start: Timestamp) -> GestureTrace {
        let p = Self::position_at_fraction(view, at_fraction);
        let p = self.jittered(p);
        let mut trace = GestureTrace::new(view.name.clone());
        trace.push(TouchEvent::new(p, start, TouchPhase::Began));
        trace.push(TouchEvent::new(
            p,
            start + std::time::Duration::from_millis(60),
            TouchPhase::Ended,
        ));
        trace
    }

    /// A steady slide from the top of the object to the bottom (or left to
    /// right for horizontal objects) taking `duration_s` seconds. This is the
    /// gesture of the paper's Figure 4(a): varying `duration_s` varies the
    /// gesture speed.
    pub fn slide_down(&mut self, view: &View, duration_s: f64) -> GestureTrace {
        self.slide(view, 0.0, 1.0, duration_s)
    }

    /// A steady slide between two fractions of the scroll extent.
    pub fn slide(
        &mut self,
        view: &View,
        from_fraction: f64,
        to_fraction: f64,
        duration_s: f64,
    ) -> GestureTrace {
        self.slide_profile(
            view,
            &[SlideSegment::movement(
                from_fraction,
                to_fraction,
                duration_s,
            )],
            Timestamp::ZERO,
        )
    }

    /// A slide following an arbitrary profile of movement and pause segments,
    /// starting at time `start`. Segments are executed back to back with one
    /// continuous finger contact.
    pub fn slide_profile(
        &mut self,
        view: &View,
        segments: &[SlideSegment],
        start: Timestamp,
    ) -> GestureTrace {
        let mut trace = GestureTrace::new(view.name.clone());
        if segments.is_empty() {
            return trace;
        }
        let interval = self.sample_interval_ms();
        let mut now_ms = start.as_millis();
        let mut last_point = Self::position_at_fraction(view, segments[0].from_fraction);
        trace.push(TouchEvent::new(
            self.jittered(last_point),
            Timestamp::from_millis(now_ms),
            TouchPhase::Began,
        ));
        for seg in segments {
            let duration_ms = (seg.duration_s.max(0.0) * 1000.0).round() as u64;
            let steps = duration_ms / interval;
            let from = Self::position_at_fraction(view, seg.from_fraction);
            let to = Self::position_at_fraction(view, seg.to_fraction);
            for step in 1..=steps {
                now_ms += interval;
                let t = step as f64 / steps.max(1) as f64;
                let p = from.lerp(&to, t);
                let phase = if p.distance(&last_point) < 1e-9 {
                    TouchPhase::Stationary
                } else {
                    TouchPhase::Moved
                };
                trace.push(TouchEvent::new(
                    self.jittered(p),
                    Timestamp::from_millis(now_ms),
                    phase,
                ));
                last_point = p;
            }
        }
        now_ms += interval;
        trace.push(TouchEvent::new(
            self.jittered(last_point),
            Timestamp::from_millis(now_ms),
            TouchPhase::Ended,
        ));
        trace
    }

    /// A slide that starts fast, pauses in the middle to inspect an interesting
    /// area, backtracks slightly, and then continues to the end. A convenient
    /// canned profile for the prefetching/caching experiments.
    pub fn exploratory_slide(&mut self, view: &View, total_duration_s: f64) -> GestureTrace {
        let d = total_duration_s.max(0.4);
        self.slide_profile(
            view,
            &[
                SlideSegment::movement(0.0, 0.55, d * 0.3),
                SlideSegment::pause(0.55, d * 0.2),
                SlideSegment::movement(0.55, 0.45, d * 0.15),
                SlideSegment::movement(0.45, 1.0, d * 0.35),
            ],
            Timestamp::ZERO,
        )
    }

    /// A two-finger pinch centred on the view. `scale > 1` spreads the fingers
    /// apart (zoom-in); `scale < 1` brings them together (zoom-out).
    pub fn pinch(&mut self, view: &View, scale: f64, duration_s: f64) -> GestureTrace {
        let center = PointCm::new(view.cross_extent() / 2.0, view.scroll_extent() / 2.0);
        let center = match view.orientation {
            dbtouch_types::Orientation::Vertical => center,
            dbtouch_types::Orientation::Horizontal => PointCm::new(center.y, center.x),
        };
        let scale = if scale.is_finite() && scale > 0.0 {
            scale
        } else {
            1.0
        };
        let start_half = 1.0_f64.min(view.scroll_extent() / 4.0).max(0.2);
        let end_half = start_half * scale;
        let interval = self.sample_interval_ms();
        let duration_ms = (duration_s.max(0.1) * 1000.0).round() as u64;
        let steps = (duration_ms / interval).max(1);

        let mut trace = GestureTrace::new(view.name.clone());
        let f0 = |half: f64| PointCm::new(center.x, center.y - half);
        let f1 = |half: f64| PointCm::new(center.x, center.y + half);
        trace.push(TouchEvent::new(
            f0(start_half),
            Timestamp::ZERO,
            TouchPhase::Began,
        ));
        trace.push(
            TouchEvent::new(f1(start_half), Timestamp::ZERO, TouchPhase::Began).with_finger(1),
        );
        let mut now_ms = 0;
        for step in 1..=steps {
            now_ms += interval;
            let t = step as f64 / steps as f64;
            let half = start_half + (end_half - start_half) * t;
            let ts = Timestamp::from_millis(now_ms);
            trace.push(TouchEvent::new(f0(half), ts, TouchPhase::Moved));
            trace.push(TouchEvent::new(f1(half), ts, TouchPhase::Moved).with_finger(1));
        }
        now_ms += interval;
        let ts = Timestamp::from_millis(now_ms);
        trace.push(TouchEvent::new(f0(end_half), ts, TouchPhase::Ended));
        trace.push(TouchEvent::new(f1(end_half), ts, TouchPhase::Ended).with_finger(1));
        trace
    }

    /// A two-finger rotation of roughly a quarter turn over the view, used to
    /// flip the physical layout (Section 2.8).
    pub fn rotate(&mut self, view: &View, clockwise: bool, duration_s: f64) -> GestureTrace {
        let center = PointCm::new(view.cross_extent() / 2.0, view.scroll_extent() / 2.0);
        let center = match view.orientation {
            dbtouch_types::Orientation::Vertical => center,
            dbtouch_types::Orientation::Horizontal => PointCm::new(center.y, center.x),
        };
        let radius = 1.0_f64.min(view.scroll_extent() / 4.0).max(0.2);
        let interval = self.sample_interval_ms();
        let duration_ms = (duration_s.max(0.1) * 1000.0).round() as u64;
        let steps = (duration_ms / interval).max(1);
        let total_angle = if clockwise {
            std::f64::consts::FRAC_PI_2
        } else {
            -std::f64::consts::FRAC_PI_2
        };

        let at_angle = |theta: f64, opposite: bool| {
            let theta = if opposite {
                theta + std::f64::consts::PI
            } else {
                theta
            };
            PointCm::new(
                center.x + radius * theta.cos(),
                center.y + radius * theta.sin(),
            )
        };

        let mut trace = GestureTrace::new(view.name.clone());
        trace.push(TouchEvent::new(
            at_angle(0.0, false),
            Timestamp::ZERO,
            TouchPhase::Began,
        ));
        trace.push(
            TouchEvent::new(at_angle(0.0, true), Timestamp::ZERO, TouchPhase::Began).with_finger(1),
        );
        let mut now_ms = 0;
        for step in 1..=steps {
            now_ms += interval;
            let t = step as f64 / steps as f64;
            let theta = total_angle * t;
            let ts = Timestamp::from_millis(now_ms);
            trace.push(TouchEvent::new(
                at_angle(theta, false),
                ts,
                TouchPhase::Moved,
            ));
            trace
                .push(TouchEvent::new(at_angle(theta, true), ts, TouchPhase::Moved).with_finger(1));
        }
        now_ms += interval;
        let ts = Timestamp::from_millis(now_ms);
        trace.push(TouchEvent::new(
            at_angle(total_angle, false),
            ts,
            TouchPhase::Ended,
        ));
        trace.push(
            TouchEvent::new(at_angle(total_angle, true), ts, TouchPhase::Ended).with_finger(1),
        );
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recognizer::{GestureEvent, GestureRecognizer};
    use dbtouch_types::SizeCm;

    fn view() -> View {
        View::for_column("col", 10_000_000, SizeCm::new(2.0, 10.0)).unwrap()
    }

    #[test]
    fn slide_sample_count_scales_with_duration() {
        let mut s = GestureSynthesizer::new(60.0);
        let fast = s.slide_down(&view(), 0.5);
        let slow = s.slide_down(&view(), 4.0);
        assert!(slow.len() > fast.len() * 6);
        // ~60 samples/second plus began/ended bookkeeping
        assert!((fast.len() as i64 - 32).abs() <= 4);
        assert!((slow.len() as i64 - 242).abs() <= 10);
    }

    #[test]
    fn slide_traces_are_valid_and_cover_the_object() {
        let mut s = GestureSynthesizer::new(60.0);
        let t = s.slide_down(&view(), 2.0);
        assert!(t.validate().is_ok());
        let first = t.events.first().unwrap().location;
        let last = t.events.last().unwrap().location;
        assert!(first.y.abs() < 1e-9);
        assert!((last.y - 10.0).abs() < 1e-9);
        // x stays within the view
        assert!(t
            .events
            .iter()
            .all(|e| e.location.x >= 0.0 && e.location.x <= 2.0));
    }

    #[test]
    fn slide_duration_matches_request() {
        let mut s = GestureSynthesizer::new(60.0);
        let t = s.slide_down(&view(), 2.0);
        let secs = t.duration().as_secs_f64();
        assert!((secs - 2.0).abs() < 0.1, "duration was {secs}");
    }

    #[test]
    fn horizontal_view_slides_along_x() {
        let mut s = GestureSynthesizer::new(60.0);
        let rotated = view().rotated();
        let t = s.slide_down(&rotated, 1.0);
        let last = t.events.last().unwrap().location;
        assert!((last.x - 10.0).abs() < 1e-9);
        assert!(last.y <= 2.0);
    }

    #[test]
    fn profile_with_pause_emits_stationary_samples() {
        let mut s = GestureSynthesizer::new(60.0);
        let t = s.slide_profile(
            &view(),
            &[
                SlideSegment::movement(0.0, 0.5, 0.5),
                SlideSegment::pause(0.5, 0.5),
                SlideSegment::movement(0.5, 1.0, 0.5),
            ],
            Timestamp::ZERO,
        );
        let stationary = t
            .events
            .iter()
            .filter(|e| e.phase == TouchPhase::Stationary)
            .count();
        assert!(stationary >= 25, "only {stationary} stationary samples");
        assert!(t.validate().is_ok());
    }

    #[test]
    fn exploratory_slide_reverses_direction() {
        let mut s = GestureSynthesizer::new(60.0);
        let t = s.exploratory_slide(&view(), 3.0);
        assert!(t.validate().is_ok());
        let ys: Vec<f64> = t.events.iter().map(|e| e.location.y).collect();
        let max_before_end = ys[..ys.len() - 10].iter().cloned().fold(f64::MIN, f64::max);
        // the slide backtracks: some later sample is lower than an earlier peak
        let reversed = ys.windows(2).any(|w| w[1] < w[0] - 1e-9);
        assert!(reversed);
        assert!(max_before_end > 5.0);
    }

    #[test]
    fn empty_profile_yields_empty_trace() {
        let mut s = GestureSynthesizer::new(60.0);
        let t = s.slide_profile(&view(), &[], Timestamp::ZERO);
        assert!(t.is_empty());
    }

    #[test]
    fn tap_recognized_by_recognizer() {
        let mut s = GestureSynthesizer::new(60.0);
        let t = s.tap(&view(), 0.3);
        let mut r = GestureRecognizer::default();
        let events = r.feed_trace(&t.events);
        assert!(matches!(events[0], GestureEvent::Tap { .. }));
    }

    #[test]
    fn pinch_recognized_as_zoom() {
        let mut s = GestureSynthesizer::new(60.0);
        let zoom_in = s.pinch(&view(), 2.0, 0.5);
        let mut r = GestureRecognizer::default();
        let events = r.feed_trace(&zoom_in.events);
        assert!(events
            .iter()
            .any(|e| matches!(e, GestureEvent::Pinch { scale, .. } if *scale > 1.2)));

        let zoom_out = s.pinch(&view(), 0.5, 0.5);
        let mut r = GestureRecognizer::default();
        let events = r.feed_trace(&zoom_out.events);
        assert!(events
            .iter()
            .any(|e| matches!(e, GestureEvent::Pinch { scale, .. } if *scale < 0.8)));
    }

    #[test]
    fn rotate_recognized() {
        let mut s = GestureSynthesizer::new(60.0);
        let t = s.rotate(&view(), true, 0.5);
        let mut r = GestureRecognizer::default();
        let events = r.feed_trace(&t.events);
        assert!(events.iter().any(|e| matches!(
            e,
            GestureEvent::Rotate {
                clockwise: true,
                ..
            }
        )));
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let view = view();
        let t1 = GestureSynthesizer::new(60.0)
            .with_jitter(0.1, 42)
            .slide_down(&view, 1.0);
        let t2 = GestureSynthesizer::new(60.0)
            .with_jitter(0.1, 42)
            .slide_down(&view, 1.0);
        let t3 = GestureSynthesizer::new(60.0)
            .with_jitter(0.1, 7)
            .slide_down(&view, 1.0);
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
    }

    #[test]
    fn bad_sample_rate_falls_back_to_60() {
        assert_eq!(GestureSynthesizer::new(f64::NAN).sample_rate_hz(), 60.0);
        assert_eq!(GestureSynthesizer::new(-5.0).sample_rate_hz(), 60.0);
    }

    #[test]
    fn higher_sample_rate_more_samples() {
        let view = view();
        let t60 = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
        let t120 = GestureSynthesizer::new(120.0).slide_down(&view, 1.0);
        assert!(t120.len() > t60.len());
    }
}
