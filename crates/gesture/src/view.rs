//! Views: the visual placeholders for data objects.
//!
//! Section 2.4 ("Object Views"): "In order to translate the location of a touch
//! to a tuple identifier, dbTouch exploits the view concept of modern
//! touch-based operating systems. Views are placeholders for visual objects
//! [...] Each view has a set of properties associated with it which are readily
//! accessible by the touch OS, such as the size of the view, the location of the
//! view within its master view, what kind of gestures are allowed over the view."
//!
//! dbTouch adds database properties to each view: the number of tuples the
//! object represents, the number of attributes, and the data types. [`View`]
//! models exactly this: geometry plus the dbTouch-specific properties that the
//! mapping layer of the kernel needs. A [`Screen`] is the master view holding
//! the data-object views and supports hit testing.

use dbtouch_types::{DbTouchError, Orientation, PointCm, Rect, Result, SizeCm};
use serde::{Deserialize, Serialize};

/// A view representing one data object on the touch screen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct View {
    /// Name of the data object the view renders (column or table name).
    pub name: String,
    /// Frame of the view inside its master view.
    pub frame: Rect,
    /// Orientation of the object: vertical objects are scrolled with vertical
    /// slides, horizontal objects with horizontal slides.
    pub orientation: Orientation,
    /// Number of tuples in the underlying data object (`n` in the Rule of
    /// Three).
    pub tuple_count: u64,
    /// Number of attributes rendered side by side (1 for a single column).
    pub attribute_count: usize,
    /// Current zoom factor relative to the view's initial size (1.0 = initial).
    pub zoom: f64,
}

impl View {
    /// Create a view for a single-column object standing vertically.
    pub fn for_column(name: impl Into<String>, tuple_count: u64, size: SizeCm) -> Result<View> {
        Self::validated(View {
            name: name.into(),
            frame: Rect::new(PointCm::ORIGIN, size),
            orientation: Orientation::Vertical,
            tuple_count,
            attribute_count: 1,
            zoom: 1.0,
        })
    }

    /// Create a view for a table object with `attribute_count` attributes.
    pub fn for_table(
        name: impl Into<String>,
        tuple_count: u64,
        attribute_count: usize,
        size: SizeCm,
    ) -> Result<View> {
        if attribute_count == 0 {
            return Err(DbTouchError::InvalidGeometry(
                "a table view needs at least one attribute".into(),
            ));
        }
        Self::validated(View {
            name: name.into(),
            frame: Rect::new(PointCm::ORIGIN, size),
            orientation: Orientation::Vertical,
            tuple_count,
            attribute_count,
            zoom: 1.0,
        })
    }

    fn validated(view: View) -> Result<View> {
        if !view.frame.size.is_valid() {
            return Err(DbTouchError::InvalidGeometry(format!(
                "view {} has invalid size {}",
                view.name, view.frame.size
            )));
        }
        Ok(view)
    }

    /// Physical size of the view.
    pub fn size(&self) -> SizeCm {
        self.frame.size
    }

    /// Extent of the view along the scroll axis (the axis that addresses
    /// tuples): the height for vertical objects, the width for horizontal ones.
    pub fn scroll_extent(&self) -> f64 {
        self.frame.size.extent_along(self.orientation)
    }

    /// Extent across the scroll axis (the axis that addresses attributes).
    pub fn cross_extent(&self) -> f64 {
        self.frame.size.extent_along(self.orientation.rotated())
    }

    /// Place the view at a position inside its master view.
    pub fn positioned_at(mut self, origin: PointCm) -> View {
        self.frame.origin = origin;
        self
    }

    /// True if the point (in the view's local coordinates) lies inside the view.
    pub fn contains_local(&self, p: PointCm) -> bool {
        p.x >= 0.0 && p.y >= 0.0 && p.x < self.frame.size.width && p.y < self.frame.size.height
    }

    /// Apply a zoom gesture: scale the view by `factor` (>1 zoom-in, <1
    /// zoom-out). The zoom factor is clamped so the view never collapses or
    /// explodes (between 1/64x and 64x of the original size).
    pub fn zoomed(&self, factor: f64) -> Result<View> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(DbTouchError::InvalidGeometry(format!(
                "zoom factor {factor} must be finite and positive"
            )));
        }
        let new_zoom = (self.zoom * factor).clamp(1.0 / 64.0, 64.0);
        let effective = new_zoom / self.zoom;
        let mut v = self.clone();
        v.zoom = new_zoom;
        v.frame.size = self.frame.size.scaled(effective);
        Ok(v)
    }

    /// Apply the rotate gesture: the view is transposed and its orientation
    /// flips. Touch-to-tuple mapping is unaffected because it always works along
    /// the (new) scroll axis (Section 2.4: "when we rotate an object [...]
    /// touches and identifiers calculated relative to the object view are not
    /// affected").
    pub fn rotated(&self) -> View {
        let mut v = self.clone();
        v.orientation = self.orientation.rotated();
        v.frame.size = self.frame.size.transposed();
        v
    }

    /// The distinct number of touch positions available along the scroll axis
    /// given a touch resolution in centimetres. This is the physical limit the
    /// paper discusses: a small object can only address a limited number of
    /// tuples per slide.
    pub fn addressable_positions(&self, touch_resolution_cm: f64) -> u64 {
        if touch_resolution_cm <= 0.0 {
            return u64::MAX;
        }
        (self.scroll_extent() / touch_resolution_cm)
            .floor()
            .max(1.0) as u64
    }
}

/// The master view: a screen containing data-object views.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Screen {
    views: Vec<View>,
}

impl Screen {
    /// An empty screen.
    pub fn new() -> Screen {
        Screen { views: Vec::new() }
    }

    /// Add a view to the screen.
    pub fn add(&mut self, view: View) {
        self.views.push(view);
    }

    /// All views.
    pub fn views(&self) -> &[View] {
        &self.views
    }

    /// Find the view (by name) and the local coordinates of a touch given in
    /// screen coordinates. Returns `None` if the touch lands on empty space.
    pub fn hit_test(&self, p: PointCm) -> Option<(&View, PointCm)> {
        // Iterate in reverse so that views added later (rendered on top) win.
        self.views
            .iter()
            .rev()
            .find(|v| v.frame.contains(p))
            .map(|v| (v, v.frame.to_local(p)))
    }

    /// Find a view by the name of its data object.
    pub fn view(&self, name: &str) -> Result<&View> {
        self.views
            .iter()
            .find(|v| v.name == name)
            .ok_or_else(|| DbTouchError::NotFound(format!("view {name}")))
    }

    /// Mutable access to a view by name.
    pub fn view_mut(&mut self, name: &str) -> Result<&mut View> {
        self.views
            .iter_mut()
            .find(|v| v.name == name)
            .ok_or_else(|| DbTouchError::NotFound(format!("view {name}")))
    }

    /// Replace a view (after zooming or rotating it).
    pub fn replace(&mut self, view: View) -> Result<()> {
        let slot = self.view_mut(&view.name)?;
        *slot = view;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column_view() -> View {
        // The paper's Figure 4 object: a 10cm tall column object.
        View::for_column("measurements", 10_000_000, SizeCm::new(2.0, 10.0)).unwrap()
    }

    #[test]
    fn construction_and_extents() {
        let v = column_view();
        assert_eq!(v.scroll_extent(), 10.0);
        assert_eq!(v.cross_extent(), 2.0);
        assert_eq!(v.attribute_count, 1);
        assert_eq!(v.zoom, 1.0);
    }

    #[test]
    fn invalid_geometry_rejected() {
        assert!(View::for_column("x", 10, SizeCm::new(0.0, 10.0)).is_err());
        assert!(View::for_table("t", 10, 0, SizeCm::new(2.0, 2.0)).is_err());
        assert!(View::for_column("x", 10, SizeCm::new(2.0, f64::NAN)).is_err());
    }

    #[test]
    fn zoom_in_doubles_size() {
        let v = column_view();
        let z = v.zoomed(2.0).unwrap();
        assert_eq!(z.size(), SizeCm::new(4.0, 20.0));
        assert_eq!(z.zoom, 2.0);
        // zoom back out restores the original size
        let back = z.zoomed(0.5).unwrap();
        assert!((back.size().height - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zoom_clamped_to_bounds() {
        let v = column_view();
        let huge = v.zoomed(1e9).unwrap();
        assert_eq!(huge.zoom, 64.0);
        let tiny = v.zoomed(1e-9).unwrap();
        assert_eq!(tiny.zoom, 1.0 / 64.0);
        assert!(v.zoomed(0.0).is_err());
        assert!(v.zoomed(f64::NAN).is_err());
    }

    #[test]
    fn rotation_transposes_and_flips_axis() {
        let v = column_view();
        let r = v.rotated();
        assert_eq!(r.orientation, Orientation::Horizontal);
        assert_eq!(r.size(), SizeCm::new(10.0, 2.0));
        assert_eq!(r.scroll_extent(), 10.0); // still 10cm along the scroll axis
        assert_eq!(r.rotated().orientation, Orientation::Vertical);
    }

    #[test]
    fn addressable_positions_scale_with_size() {
        let v = column_view();
        let fine = v.addressable_positions(0.05);
        assert_eq!(fine, 200);
        let zoomed = v.zoomed(2.0).unwrap();
        assert_eq!(zoomed.addressable_positions(0.05), 400);
        assert_eq!(v.addressable_positions(0.0), u64::MAX);
    }

    #[test]
    fn contains_local() {
        let v = column_view();
        assert!(v.contains_local(PointCm::new(1.0, 5.0)));
        assert!(!v.contains_local(PointCm::new(3.0, 5.0)));
        assert!(!v.contains_local(PointCm::new(1.0, -0.1)));
    }

    #[test]
    fn screen_hit_testing() {
        let mut s = Screen::new();
        s.add(
            View::for_column("a", 100, SizeCm::new(2.0, 10.0))
                .unwrap()
                .positioned_at(PointCm::new(1.0, 1.0)),
        );
        s.add(
            View::for_column("b", 100, SizeCm::new(2.0, 10.0))
                .unwrap()
                .positioned_at(PointCm::new(5.0, 1.0)),
        );
        let (v, local) = s.hit_test(PointCm::new(5.5, 2.0)).unwrap();
        assert_eq!(v.name, "b");
        assert_eq!(local, PointCm::new(0.5, 1.0));
        assert!(s.hit_test(PointCm::new(20.0, 20.0)).is_none());
        assert!(s.view("a").is_ok());
        assert!(s.view("missing").is_err());
    }

    #[test]
    fn screen_overlapping_views_topmost_wins() {
        let mut s = Screen::new();
        s.add(View::for_column("under", 100, SizeCm::new(4.0, 4.0)).unwrap());
        s.add(View::for_column("over", 100, SizeCm::new(4.0, 4.0)).unwrap());
        let (v, _) = s.hit_test(PointCm::new(1.0, 1.0)).unwrap();
        assert_eq!(v.name, "over");
    }

    #[test]
    fn screen_replace_view() {
        let mut s = Screen::new();
        s.add(column_view());
        let zoomed = s.view("measurements").unwrap().zoomed(2.0).unwrap();
        s.replace(zoomed).unwrap();
        assert_eq!(s.view("measurements").unwrap().zoom, 2.0);
        let bogus = View::for_column("nope", 1, SizeCm::new(1.0, 1.0)).unwrap();
        assert!(s.replace(bogus).is_err());
    }
}
