//! Gesture recognition: from touch events to gesture events.
//!
//! The touch OS layer of Figure 3 ("Recognize Touch / Recognize Gesture")
//! classifies raw touch samples into the gestures dbTouch reacts to: single tap,
//! slide (with its per-sample steps and pauses), two-finger pinch (zoom-in /
//! zoom-out) and two-finger rotate. The recognizer is a small state machine fed
//! one [`TouchEvent`] at a time; it emits zero or more [`GestureEvent`]s per
//! sample so the kernel can react to *every* touch, which is the paper's central
//! requirement.

use crate::touch::{TouchEvent, TouchPhase};
use dbtouch_types::{PointCm, Timestamp};
use serde::{Deserialize, Serialize};

/// A recognized gesture event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GestureEvent {
    /// A quick touch without movement: reveals a single value (schema
    /// discovery, Section 2.2).
    Tap {
        location: PointCm,
        timestamp: Timestamp,
    },
    /// A slide has started at this location.
    SlideBegan {
        location: PointCm,
        timestamp: Timestamp,
    },
    /// The slide moved to a new location; the kernel processes data for every
    /// such step.
    SlideStep {
        location: PointCm,
        timestamp: Timestamp,
    },
    /// The finger is resting without moving mid-slide.
    SlidePaused {
        location: PointCm,
        timestamp: Timestamp,
    },
    /// The slide ended (finger lifted).
    SlideEnded {
        location: PointCm,
        timestamp: Timestamp,
    },
    /// A two-finger pinch completed; `scale > 1` is a zoom-in, `scale < 1` a
    /// zoom-out.
    Pinch { scale: f64, timestamp: Timestamp },
    /// A two-finger rotation completed (a quarter turn), flipping the object's
    /// physical design between row-store and column-store (Section 2.8).
    Rotate {
        clockwise: bool,
        timestamp: Timestamp,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SingleState {
    Idle,
    /// Finger down, movement still below the tap threshold.
    Pending {
        start: PointCm,
        start_ts: Timestamp,
    },
    /// Movement exceeded the threshold: this is a slide.
    Sliding {
        last: PointCm,
    },
}

#[derive(Debug, Clone, Copy)]
struct FingerTrack {
    location: PointCm,
    active: bool,
}

/// Configuration thresholds of the recognizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecognizerConfig {
    /// Maximum movement (cm) for a touch to still count as a tap.
    pub tap_movement_cm: f64,
    /// Maximum duration (ms) for a touch to still count as a tap.
    pub tap_duration_ms: u64,
    /// Relative change in finger distance needed to classify a two-finger
    /// gesture as a pinch.
    pub pinch_threshold: f64,
    /// Angle change (radians) needed to classify a two-finger gesture as a
    /// rotation.
    pub rotate_threshold_rad: f64,
}

impl Default for RecognizerConfig {
    fn default() -> Self {
        RecognizerConfig {
            tap_movement_cm: 0.2,
            tap_duration_ms: 250,
            pinch_threshold: 0.15,
            rotate_threshold_rad: std::f64::consts::FRAC_PI_4,
        }
    }
}

/// The gesture-recognition state machine.
#[derive(Debug, Clone)]
pub struct GestureRecognizer {
    config: RecognizerConfig,
    single: SingleState,
    fingers: [Option<FingerTrack>; 2],
    /// Initial distance/angle between the two fingers of a two-finger gesture.
    two_finger_start: Option<(f64, f64)>,
    two_finger_last: Option<(f64, f64)>,
}

impl Default for GestureRecognizer {
    fn default() -> Self {
        GestureRecognizer::new(RecognizerConfig::default())
    }
}

impl GestureRecognizer {
    /// Create a recognizer with the given thresholds.
    pub fn new(config: RecognizerConfig) -> GestureRecognizer {
        GestureRecognizer {
            config,
            single: SingleState::Idle,
            fingers: [None, None],
            two_finger_start: None,
            two_finger_last: None,
        }
    }

    /// Feed one touch event, receiving the gesture events it triggers.
    pub fn feed(&mut self, event: &TouchEvent) -> Vec<GestureEvent> {
        self.track_finger(event);
        if self.both_fingers_seen() {
            self.feed_two_finger(event)
        } else {
            self.feed_single_finger(event)
        }
    }

    /// Feed an entire trace, collecting all gesture events.
    pub fn feed_trace<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a TouchEvent>,
    ) -> Vec<GestureEvent> {
        events.into_iter().flat_map(|e| self.feed(e)).collect()
    }

    fn track_finger(&mut self, event: &TouchEvent) {
        let idx = (event.finger.min(1)) as usize;
        match event.phase {
            TouchPhase::Ended => {
                if let Some(t) = &mut self.fingers[idx] {
                    t.location = event.location;
                    t.active = false;
                }
            }
            _ => {
                self.fingers[idx] = Some(FingerTrack {
                    location: event.location,
                    active: true,
                });
            }
        }
    }

    fn both_fingers_seen(&self) -> bool {
        self.fingers.iter().all(|f| f.is_some())
    }

    fn finger_geometry(&self) -> Option<(f64, f64)> {
        let a = self.fingers[0]?.location;
        let b = self.fingers[1]?.location;
        let distance = a.distance(&b);
        let angle = (b.y - a.y).atan2(b.x - a.x);
        Some((distance, angle))
    }

    fn feed_single_finger(&mut self, event: &TouchEvent) -> Vec<GestureEvent> {
        let ts = event.timestamp;
        let loc = event.location;
        let mut out = Vec::new();
        match (self.single, event.phase) {
            (SingleState::Idle, TouchPhase::Began) => {
                self.single = SingleState::Pending {
                    start: loc,
                    start_ts: ts,
                };
            }
            (SingleState::Pending { start, start_ts }, TouchPhase::Moved)
            | (SingleState::Pending { start, start_ts }, TouchPhase::Stationary) => {
                if start.distance(&loc) > self.config.tap_movement_cm {
                    out.push(GestureEvent::SlideBegan {
                        location: start,
                        timestamp: start_ts,
                    });
                    out.push(GestureEvent::SlideStep {
                        location: loc,
                        timestamp: ts,
                    });
                    self.single = SingleState::Sliding { last: loc };
                } else {
                    self.single = SingleState::Pending { start, start_ts };
                }
            }
            (SingleState::Pending { start, start_ts }, TouchPhase::Ended) => {
                let quick = ts.since(start_ts).as_millis() as u64 <= self.config.tap_duration_ms;
                let still = start.distance(&loc) <= self.config.tap_movement_cm;
                if quick && still {
                    out.push(GestureEvent::Tap {
                        location: loc,
                        timestamp: ts,
                    });
                } else {
                    // A long press or slow micro-movement: treat as a degenerate
                    // slide so the kernel still reacts to it.
                    out.push(GestureEvent::SlideBegan {
                        location: start,
                        timestamp: start_ts,
                    });
                    out.push(GestureEvent::SlideEnded {
                        location: loc,
                        timestamp: ts,
                    });
                }
                self.single = SingleState::Idle;
            }
            (SingleState::Sliding { last }, TouchPhase::Moved) => {
                if last.distance(&loc) > 1e-6 {
                    out.push(GestureEvent::SlideStep {
                        location: loc,
                        timestamp: ts,
                    });
                    self.single = SingleState::Sliding { last: loc };
                } else {
                    out.push(GestureEvent::SlidePaused {
                        location: loc,
                        timestamp: ts,
                    });
                }
            }
            (SingleState::Sliding { .. }, TouchPhase::Stationary) => {
                out.push(GestureEvent::SlidePaused {
                    location: loc,
                    timestamp: ts,
                });
            }
            (SingleState::Sliding { .. }, TouchPhase::Ended) => {
                out.push(GestureEvent::SlideEnded {
                    location: loc,
                    timestamp: ts,
                });
                self.single = SingleState::Idle;
            }
            // Began while already tracking (shouldn't happen in valid traces):
            // restart the state machine.
            (_, TouchPhase::Began) => {
                self.single = SingleState::Pending {
                    start: loc,
                    start_ts: ts,
                };
            }
            (SingleState::Idle, _) => {}
        }
        out
    }

    fn feed_two_finger(&mut self, event: &TouchEvent) -> Vec<GestureEvent> {
        let mut out = Vec::new();
        // Any single-finger slide in progress is cancelled by the second finger.
        self.single = SingleState::Idle;
        if let Some(geom) = self.finger_geometry() {
            if self.two_finger_start.is_none() {
                self.two_finger_start = Some(geom);
            }
            self.two_finger_last = Some(geom);
        }
        if event.phase == TouchPhase::Ended {
            if let (Some((d0, a0)), Some((d1, a1))) = (self.two_finger_start, self.two_finger_last)
            {
                let scale = if d0 > 1e-9 { d1 / d0 } else { 1.0 };
                let mut angle_delta = a1 - a0;
                // Normalize to (-pi, pi].
                while angle_delta > std::f64::consts::PI {
                    angle_delta -= 2.0 * std::f64::consts::PI;
                }
                while angle_delta <= -std::f64::consts::PI {
                    angle_delta += 2.0 * std::f64::consts::PI;
                }
                if (scale - 1.0).abs() > self.config.pinch_threshold {
                    out.push(GestureEvent::Pinch {
                        scale,
                        timestamp: event.timestamp,
                    });
                } else if angle_delta.abs() > self.config.rotate_threshold_rad {
                    out.push(GestureEvent::Rotate {
                        clockwise: angle_delta > 0.0,
                        timestamp: event.timestamp,
                    });
                }
            }
            // Reset the two-finger gesture once either finger lifts.
            self.two_finger_start = None;
            self.two_finger_last = None;
            self.fingers = [None, None];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(x: f64, y: f64, ms: u64, phase: TouchPhase) -> TouchEvent {
        TouchEvent::new(PointCm::new(x, y), Timestamp::from_millis(ms), phase)
    }

    #[test]
    fn tap_recognized() {
        let mut r = GestureRecognizer::default();
        let events = r.feed_trace(&[
            ev(1.0, 1.0, 0, TouchPhase::Began),
            ev(1.05, 1.02, 80, TouchPhase::Ended),
        ]);
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], GestureEvent::Tap { .. }));
    }

    #[test]
    fn long_press_is_not_a_tap() {
        let mut r = GestureRecognizer::default();
        let events = r.feed_trace(&[
            ev(1.0, 1.0, 0, TouchPhase::Began),
            ev(1.0, 1.0, 500, TouchPhase::Ended),
        ]);
        assert!(matches!(events[0], GestureEvent::SlideBegan { .. }));
        assert!(matches!(events[1], GestureEvent::SlideEnded { .. }));
    }

    #[test]
    fn slide_emits_step_per_sample() {
        let mut r = GestureRecognizer::default();
        let events = r.feed_trace(&[
            ev(1.0, 0.0, 0, TouchPhase::Began),
            ev(1.0, 1.0, 16, TouchPhase::Moved),
            ev(1.0, 2.0, 33, TouchPhase::Moved),
            ev(1.0, 3.0, 50, TouchPhase::Moved),
            ev(1.0, 3.0, 66, TouchPhase::Ended),
        ]);
        let begans = events
            .iter()
            .filter(|e| matches!(e, GestureEvent::SlideBegan { .. }))
            .count();
        let steps = events
            .iter()
            .filter(|e| matches!(e, GestureEvent::SlideStep { .. }))
            .count();
        let ends = events
            .iter()
            .filter(|e| matches!(e, GestureEvent::SlideEnded { .. }))
            .count();
        assert_eq!(begans, 1);
        assert_eq!(steps, 3);
        assert_eq!(ends, 1);
    }

    #[test]
    fn paused_slide_emits_pause_events() {
        let mut r = GestureRecognizer::default();
        let events = r.feed_trace(&[
            ev(1.0, 0.0, 0, TouchPhase::Began),
            ev(1.0, 1.0, 16, TouchPhase::Moved),
            ev(1.0, 1.0, 33, TouchPhase::Stationary),
            ev(1.0, 1.0, 50, TouchPhase::Stationary),
            ev(1.0, 2.0, 66, TouchPhase::Moved),
            ev(1.0, 2.0, 83, TouchPhase::Ended),
        ]);
        let pauses = events
            .iter()
            .filter(|e| matches!(e, GestureEvent::SlidePaused { .. }))
            .count();
        assert_eq!(pauses, 2);
    }

    #[test]
    fn slide_step_not_emitted_for_zero_movement_moved() {
        let mut r = GestureRecognizer::default();
        let events = r.feed_trace(&[
            ev(1.0, 0.0, 0, TouchPhase::Began),
            ev(1.0, 1.0, 16, TouchPhase::Moved),
            ev(1.0, 1.0, 33, TouchPhase::Moved), // same location: pause
        ]);
        assert!(matches!(
            events.last().unwrap(),
            GestureEvent::SlidePaused { .. }
        ));
    }

    #[test]
    fn pinch_zoom_in_recognized() {
        let mut r = GestureRecognizer::default();
        // Two fingers moving apart: distance grows from 1cm to 3cm.
        let events = r.feed_trace(&[
            ev(2.0, 5.0, 0, TouchPhase::Began),
            ev(3.0, 5.0, 0, TouchPhase::Began).with_finger(1),
            ev(1.5, 5.0, 50, TouchPhase::Moved),
            ev(3.5, 5.0, 50, TouchPhase::Moved).with_finger(1),
            ev(1.0, 5.0, 100, TouchPhase::Moved),
            ev(4.0, 5.0, 100, TouchPhase::Moved).with_finger(1),
            ev(4.0, 5.0, 120, TouchPhase::Ended).with_finger(1),
        ]);
        assert_eq!(events.len(), 1);
        match events[0] {
            GestureEvent::Pinch { scale, .. } => assert!(scale > 2.0),
            other => panic!("expected pinch, got {other:?}"),
        }
    }

    #[test]
    fn pinch_zoom_out_recognized() {
        let mut r = GestureRecognizer::default();
        let events = r.feed_trace(&[
            ev(1.0, 5.0, 0, TouchPhase::Began),
            ev(4.0, 5.0, 0, TouchPhase::Began).with_finger(1),
            ev(2.0, 5.0, 60, TouchPhase::Moved),
            ev(3.0, 5.0, 60, TouchPhase::Moved).with_finger(1),
            ev(3.0, 5.0, 90, TouchPhase::Ended).with_finger(1),
        ]);
        match events[0] {
            GestureEvent::Pinch { scale, .. } => assert!(scale < 0.5),
            other => panic!("expected pinch, got {other:?}"),
        }
    }

    #[test]
    fn rotate_recognized() {
        let mut r = GestureRecognizer::default();
        // Two fingers orbiting: angle changes by ~90 degrees, distance constant.
        let events = r.feed_trace(&[
            ev(2.0, 5.0, 0, TouchPhase::Began),
            ev(4.0, 5.0, 0, TouchPhase::Began).with_finger(1),
            ev(3.0, 4.0, 60, TouchPhase::Moved),
            ev(3.0, 6.0, 60, TouchPhase::Moved).with_finger(1),
            ev(3.0, 6.0, 90, TouchPhase::Ended).with_finger(1),
        ]);
        assert_eq!(events.len(), 1);
        match events[0] {
            GestureEvent::Rotate { clockwise, .. } => assert!(clockwise),
            other => panic!("expected rotate, got {other:?}"),
        }
    }

    #[test]
    fn second_finger_cancels_slide() {
        let mut r = GestureRecognizer::default();
        let events = r.feed_trace(&[
            ev(1.0, 0.0, 0, TouchPhase::Began),
            ev(1.0, 1.0, 16, TouchPhase::Moved),
            ev(2.0, 1.0, 20, TouchPhase::Began).with_finger(1),
            ev(1.0, 1.5, 40, TouchPhase::Moved),
        ]);
        // After the second finger lands, no more slide steps are produced.
        let steps_after: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, GestureEvent::SlideStep { timestamp, .. } if timestamp.as_millis() >= 20))
            .collect();
        assert!(steps_after.is_empty());
    }

    #[test]
    fn recognizer_reusable_across_gestures() {
        let mut r = GestureRecognizer::default();
        let first = r.feed_trace(&[
            ev(1.0, 1.0, 0, TouchPhase::Began),
            ev(1.0, 1.0, 50, TouchPhase::Ended),
        ]);
        let second = r.feed_trace(&[
            ev(1.0, 0.0, 100, TouchPhase::Began),
            ev(1.0, 2.0, 150, TouchPhase::Moved),
            ev(1.0, 2.0, 200, TouchPhase::Ended),
        ]);
        assert!(matches!(first[0], GestureEvent::Tap { .. }));
        assert!(matches!(second[0], GestureEvent::SlideBegan { .. }));
    }
}
