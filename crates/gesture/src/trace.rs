//! Recorded gesture traces.
//!
//! A [`GestureTrace`] is an ordered sequence of touch events aimed at one data
//! object (view). Traces are what the synthesizer produces, what the kernel
//! consumes, and what the experiment harnesses serialize so that every figure
//! can be regenerated from the exact same input.

use crate::json::Json;
use crate::touch::{TouchEvent, TouchPhase};
use dbtouch_types::{DbTouchError, PointCm, Result, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

fn phase_name(phase: TouchPhase) -> &'static str {
    match phase {
        TouchPhase::Began => "Began",
        TouchPhase::Moved => "Moved",
        TouchPhase::Stationary => "Stationary",
        TouchPhase::Ended => "Ended",
    }
}

fn phase_from_name(name: &str) -> Option<TouchPhase> {
    match name {
        "Began" => Some(TouchPhase::Began),
        "Moved" => Some(TouchPhase::Moved),
        "Stationary" => Some(TouchPhase::Stationary),
        "Ended" => Some(TouchPhase::Ended),
        _ => None,
    }
}

/// An ordered sequence of touch events over a single view.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GestureTrace {
    /// Name of the view/data object the trace is aimed at (informational).
    pub target: String,
    /// The touch samples in time order.
    pub events: Vec<TouchEvent>,
}

impl GestureTrace {
    /// Create an empty trace for a target object.
    pub fn new(target: impl Into<String>) -> GestureTrace {
        GestureTrace {
            target: target.into(),
            events: Vec::new(),
        }
    }

    /// Create a trace from events, validating it.
    pub fn from_events(target: impl Into<String>, events: Vec<TouchEvent>) -> Result<GestureTrace> {
        let t = GestureTrace {
            target: target.into(),
            events,
        };
        t.validate()?;
        Ok(t)
    }

    /// Append an event.
    pub fn push(&mut self, event: TouchEvent) {
        self.events.push(event);
    }

    /// Number of touch samples.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Duration from the first to the last sample.
    pub fn duration(&self) -> Duration {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => b.timestamp.since(a.timestamp),
            _ => Duration::ZERO,
        }
    }

    /// The events of a specific finger.
    pub fn finger(&self, finger: u8) -> impl Iterator<Item = &TouchEvent> {
        self.events.iter().filter(move |e| e.finger == finger)
    }

    /// Validate the trace: per-finger timestamps must be non-decreasing, every
    /// finger must begin with a `Began` phase and locations must be finite.
    pub fn validate(&self) -> Result<()> {
        for finger in 0..=1u8 {
            let mut last_ts = None;
            let mut seen_any = false;
            for e in self.finger(finger) {
                if !e.location.is_finite() {
                    return Err(DbTouchError::InvalidGesture(format!(
                        "non-finite touch location {:?}",
                        e.location
                    )));
                }
                if !seen_any && e.phase != TouchPhase::Began {
                    return Err(DbTouchError::InvalidGesture(format!(
                        "finger {finger} does not start with a Began phase"
                    )));
                }
                if let Some(last) = last_ts {
                    if e.timestamp < last {
                        return Err(DbTouchError::InvalidGesture(format!(
                            "timestamps go backwards at {}",
                            e.timestamp
                        )));
                    }
                }
                last_ts = Some(e.timestamp);
                seen_any = true;
            }
        }
        Ok(())
    }

    /// Serialize the trace to JSON (for storing experiment inputs).
    pub fn to_json(&self) -> Result<String> {
        let events = self
            .events
            .iter()
            .map(|e| {
                let mut map = BTreeMap::new();
                map.insert("x".to_string(), Json::Number(e.location.x));
                map.insert("y".to_string(), Json::Number(e.location.y));
                map.insert(
                    "ms".to_string(),
                    Json::Number(e.timestamp.as_millis() as f64),
                );
                map.insert(
                    "phase".to_string(),
                    Json::String(phase_name(e.phase).to_string()),
                );
                map.insert("finger".to_string(), Json::Number(e.finger as f64));
                Json::Object(map)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert("target".to_string(), Json::String(self.target.clone()));
        root.insert("events".to_string(), Json::Array(events));
        Ok(Json::Object(root).pretty())
    }

    /// Deserialize a trace from JSON.
    pub fn from_json(json: &str) -> Result<GestureTrace> {
        let parse_err =
            |msg: String| DbTouchError::ParseError(format!("trace deserialization failed: {msg}"));
        let root = crate::json::parse(json).map_err(parse_err)?;
        let target = root
            .get("target")
            .and_then(Json::as_str)
            .ok_or_else(|| parse_err("missing string field 'target'".to_string()))?
            .to_string();
        let mut events = Vec::new();
        for (i, ev) in root
            .get("events")
            .and_then(Json::as_array)
            .ok_or_else(|| parse_err("missing array field 'events'".to_string()))?
            .iter()
            .enumerate()
        {
            let field_err = |field: &str| parse_err(format!("event {i}: bad field '{field}'"));
            let x = ev
                .get("x")
                .and_then(Json::as_f64)
                .ok_or_else(|| field_err("x"))?;
            let y = ev
                .get("y")
                .and_then(Json::as_f64)
                .ok_or_else(|| field_err("y"))?;
            let ms = ev
                .get("ms")
                .and_then(Json::as_u64)
                .ok_or_else(|| field_err("ms"))?;
            let phase = ev
                .get("phase")
                .and_then(Json::as_str)
                .and_then(phase_from_name)
                .ok_or_else(|| field_err("phase"))?;
            let finger = ev
                .get("finger")
                .and_then(Json::as_u64)
                .filter(|&f| f <= u8::MAX as u64)
                .ok_or_else(|| field_err("finger"))? as u8;
            events.push(
                TouchEvent::new(PointCm::new(x, y), Timestamp::from_millis(ms), phase)
                    .with_finger(finger),
            );
        }
        let trace = GestureTrace { target, events };
        trace.validate()?;
        Ok(trace)
    }

    /// Concatenate another trace after this one (a session of several gestures
    /// over the same object). The other trace's timestamps must not precede
    /// this trace's last timestamp.
    pub fn chain(mut self, other: &GestureTrace) -> Result<GestureTrace> {
        if let (Some(last), Some(first)) = (self.events.last(), other.events.first()) {
            if first.timestamp < last.timestamp {
                return Err(DbTouchError::InvalidGesture(
                    "chained trace starts before the current trace ends".into(),
                ));
            }
        }
        self.events.extend(other.events.iter().copied());
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtouch_types::{PointCm, Timestamp};

    fn ev(y: f64, ms: u64, phase: TouchPhase) -> TouchEvent {
        TouchEvent::new(PointCm::new(1.0, y), Timestamp::from_millis(ms), phase)
    }

    fn valid_trace() -> GestureTrace {
        GestureTrace::from_events(
            "col",
            vec![
                ev(0.0, 0, TouchPhase::Began),
                ev(1.0, 16, TouchPhase::Moved),
                ev(2.0, 33, TouchPhase::Moved),
                ev(2.0, 50, TouchPhase::Ended),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_duration() {
        let t = valid_trace();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.duration(), Duration::from_millis(50));
        assert_eq!(t.target, "col");
    }

    #[test]
    fn empty_trace_duration_zero() {
        let t = GestureTrace::new("x");
        assert!(t.is_empty());
        assert_eq!(t.duration(), Duration::ZERO);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validation_rejects_backwards_time() {
        let r = GestureTrace::from_events(
            "col",
            vec![
                ev(0.0, 100, TouchPhase::Began),
                ev(1.0, 50, TouchPhase::Moved),
            ],
        );
        assert!(matches!(r, Err(DbTouchError::InvalidGesture(_))));
    }

    #[test]
    fn validation_rejects_missing_began() {
        let r = GestureTrace::from_events("col", vec![ev(0.0, 0, TouchPhase::Moved)]);
        assert!(r.is_err());
    }

    #[test]
    fn validation_rejects_nan_location() {
        let r = GestureTrace::from_events(
            "col",
            vec![TouchEvent::new(
                PointCm::new(f64::NAN, 0.0),
                Timestamp::ZERO,
                TouchPhase::Began,
            )],
        );
        assert!(r.is_err());
    }

    #[test]
    fn per_finger_validation_is_independent() {
        // Finger 1 begins "later" than finger 0's moves; that is fine as long as
        // each finger starts with Began.
        let t = GestureTrace::from_events(
            "col",
            vec![
                ev(0.0, 0, TouchPhase::Began),
                ev(0.0, 10, TouchPhase::Began).with_finger(1),
                ev(1.0, 20, TouchPhase::Moved),
                ev(1.0, 20, TouchPhase::Moved).with_finger(1),
            ],
        );
        assert!(t.is_ok());
        assert_eq!(t.unwrap().finger(1).count(), 2);
    }

    #[test]
    fn json_round_trip() {
        let t = valid_trace();
        let json = t.to_json().unwrap();
        let back = GestureTrace::from_json(&json).unwrap();
        assert_eq!(back, t);
        assert!(GestureTrace::from_json("{not json").is_err());
    }

    #[test]
    fn chain_traces() {
        let first = valid_trace();
        let second = GestureTrace::from_events(
            "col",
            vec![
                ev(5.0, 100, TouchPhase::Began),
                ev(6.0, 120, TouchPhase::Ended),
            ],
        )
        .unwrap();
        let chained = first.clone().chain(&second).unwrap();
        assert_eq!(chained.len(), 6);
        // chaining something that starts earlier fails
        assert!(second.chain(&first).is_err());
    }
}
