//! # dbtouch-gesture
//!
//! The touch-input substrate of the dbTouch reproduction.
//!
//! The paper's prototype runs on an iPad: the operating system recognizes
//! touches and gestures and hands them to the dbTouch kernel (Figure 3:
//! *Recognize Touch → Recognize Gesture → Map touch to data → Execute*). This
//! crate reproduces the first two layers in simulation:
//!
//! * [`touch`] — raw touch events: a location inside a view, a timestamp and a
//!   phase (began / moved / ended), for one or two fingers.
//! * [`view`] — the view abstraction of touch operating systems (Section 2.4
//!   "Object Views"): each data object is rendered inside a view of known
//!   physical size; views can be zoomed, rotated and hit-tested.
//! * [`recognizer`] — a gesture recognizer that turns a stream of touch events
//!   into gesture events: tap, slide steps, pinch zoom-in/zoom-out, rotate and
//!   pan.
//! * [`kinematics`] — speed/direction estimation and extrapolation of a gesture,
//!   used by the kernel's prefetching policy.
//! * [`synthesizer`] — a gesture synthesizer that generates realistic touch
//!   traces (slides with speed profiles, pauses and reversals, pinches, taps) at
//!   a configurable sampling rate. This is the stand-in for a physical finger on
//!   a physical touch screen and is what the figure harnesses drive.
//! * [`trace`] — recorded gesture traces with serialization, so experiments are
//!   reproducible.
//! * [`json`] — the dependency-free JSON codec backing trace serialization.

/// The dependency-free JSON codec (re-exported from `dbtouch-types`, where it
/// moved so the storage layer's catalog manifest can share it).
pub mod json {
    pub use dbtouch_types::json::*;
}
pub mod kinematics;
pub mod recognizer;
pub mod synthesizer;
pub mod touch;
pub mod trace;
pub mod view;

pub use kinematics::GestureKinematics;
pub use recognizer::{GestureEvent, GestureRecognizer};
pub use synthesizer::GestureSynthesizer;
pub use touch::{TouchEvent, TouchPhase};
pub use trace::GestureTrace;
pub use view::View;
