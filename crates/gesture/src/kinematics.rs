//! Gesture kinematics: speed and direction estimation plus extrapolation.
//!
//! The kernel's prefetching policy needs to "extrapolate the gesture progression
//! (speed and direction) and fetch the expected entries such that they are
//! readily available if the gesture resumes" (Section 2.6). The estimator keeps
//! a short sliding window of recent touch samples and derives the current
//! velocity from it; the extrapolation projects the touch position a given time
//! into the future.

use crate::touch::{TouchEvent, TouchPhase};
use dbtouch_types::PointCm;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The gross direction of movement along the scroll axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScrollDirection {
    /// Moving towards larger scroll coordinates (down for vertical objects).
    Forward,
    /// Moving towards smaller scroll coordinates (up for vertical objects).
    Backward,
    /// Not moving (paused gesture or brand new gesture).
    Stationary,
}

/// Estimates the velocity of an ongoing gesture from its recent touch samples.
#[derive(Debug, Clone)]
pub struct GestureKinematics {
    window: VecDeque<(f64, PointCm)>, // (seconds, location)
    window_len: usize,
}

impl Default for GestureKinematics {
    fn default() -> Self {
        GestureKinematics::new(6)
    }
}

impl GestureKinematics {
    /// Create an estimator averaging over the last `window_len` samples
    /// (minimum 2).
    pub fn new(window_len: usize) -> GestureKinematics {
        GestureKinematics {
            window: VecDeque::new(),
            window_len: window_len.max(2),
        }
    }

    /// Feed one touch sample. `Began` samples reset the window so that speed is
    /// never estimated across two separate gestures.
    pub fn observe(&mut self, event: &TouchEvent) {
        if event.phase == TouchPhase::Began {
            self.window.clear();
        }
        self.window
            .push_back((event.timestamp.as_secs_f64(), event.location));
        while self.window.len() > self.window_len {
            self.window.pop_front();
        }
    }

    /// Number of samples currently in the window.
    pub fn sample_count(&self) -> usize {
        self.window.len()
    }

    /// Current velocity in centimetres per second as `(vx, vy)`, or `None` when
    /// fewer than two samples (or zero elapsed time) are available.
    pub fn velocity(&self) -> Option<(f64, f64)> {
        let (t0, p0) = *self.window.front()?;
        let (t1, p1) = *self.window.back()?;
        let dt = t1 - t0;
        if dt <= 0.0 || self.window.len() < 2 {
            return None;
        }
        Some(((p1.x - p0.x) / dt, (p1.y - p0.y) / dt))
    }

    /// Current speed (magnitude of the velocity) in centimetres per second.
    pub fn speed_cm_per_s(&self) -> f64 {
        match self.velocity() {
            Some((vx, vy)) => (vx * vx + vy * vy).sqrt(),
            None => 0.0,
        }
    }

    /// Direction of movement along the vertical axis (`y`); use the rotated
    /// variant of the view to interpret horizontal objects.
    pub fn direction_y(&self) -> ScrollDirection {
        match self.velocity() {
            Some((_, vy)) if vy > 1e-9 => ScrollDirection::Forward,
            Some((_, vy)) if vy < -1e-9 => ScrollDirection::Backward,
            _ => ScrollDirection::Stationary,
        }
    }

    /// Direction of movement along the horizontal axis (`x`).
    pub fn direction_x(&self) -> ScrollDirection {
        match self.velocity() {
            Some((vx, _)) if vx > 1e-9 => ScrollDirection::Forward,
            Some((vx, _)) if vx < -1e-9 => ScrollDirection::Backward,
            _ => ScrollDirection::Stationary,
        }
    }

    /// Extrapolate the touch location `horizon_s` seconds into the future,
    /// assuming the current velocity persists. Returns the last observed
    /// location when the velocity is unknown.
    pub fn extrapolate(&self, horizon_s: f64) -> Option<PointCm> {
        let (_, last) = *self.window.back()?;
        Some(match self.velocity() {
            Some((vx, vy)) => PointCm::new(last.x + vx * horizon_s, last.y + vy * horizon_s),
            None => last,
        })
    }

    /// True if the gesture appears paused: at least two samples and essentially
    /// zero speed.
    pub fn is_paused(&self) -> bool {
        self.window.len() >= 2 && self.speed_cm_per_s() < 0.05
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtouch_types::Timestamp;

    fn event(x: f64, y: f64, ms: u64, phase: TouchPhase) -> TouchEvent {
        TouchEvent::new(PointCm::new(x, y), Timestamp::from_millis(ms), phase)
    }

    #[test]
    fn velocity_of_steady_slide() {
        let mut k = GestureKinematics::default();
        k.observe(&event(1.0, 0.0, 0, TouchPhase::Began));
        k.observe(&event(1.0, 1.0, 100, TouchPhase::Moved));
        k.observe(&event(1.0, 2.0, 200, TouchPhase::Moved));
        let (vx, vy) = k.velocity().unwrap();
        assert!(vx.abs() < 1e-9);
        assert!((vy - 10.0).abs() < 1e-9); // 2cm over 0.2s
        assert!((k.speed_cm_per_s() - 10.0).abs() < 1e-9);
        assert_eq!(k.direction_y(), ScrollDirection::Forward);
        assert_eq!(k.direction_x(), ScrollDirection::Stationary);
    }

    #[test]
    fn no_velocity_with_single_sample() {
        let mut k = GestureKinematics::default();
        k.observe(&event(0.0, 0.0, 0, TouchPhase::Began));
        assert!(k.velocity().is_none());
        assert_eq!(k.speed_cm_per_s(), 0.0);
        assert_eq!(k.direction_y(), ScrollDirection::Stationary);
    }

    #[test]
    fn backward_direction() {
        let mut k = GestureKinematics::default();
        k.observe(&event(0.0, 5.0, 0, TouchPhase::Began));
        k.observe(&event(0.0, 4.0, 100, TouchPhase::Moved));
        assert_eq!(k.direction_y(), ScrollDirection::Backward);
    }

    #[test]
    fn began_resets_window() {
        let mut k = GestureKinematics::default();
        k.observe(&event(0.0, 0.0, 0, TouchPhase::Began));
        k.observe(&event(0.0, 5.0, 100, TouchPhase::Moved));
        // a new gesture starts far away much later: speed must not blend
        k.observe(&event(0.0, 0.0, 10_000, TouchPhase::Began));
        assert_eq!(k.sample_count(), 1);
        assert!(k.velocity().is_none());
    }

    #[test]
    fn extrapolation_projects_forward() {
        let mut k = GestureKinematics::default();
        k.observe(&event(0.0, 0.0, 0, TouchPhase::Began));
        k.observe(&event(0.0, 1.0, 100, TouchPhase::Moved));
        let p = k.extrapolate(0.5).unwrap();
        assert!((p.y - 6.0).abs() < 1e-9); // 10 cm/s * 0.5s beyond y=1
        assert!(k.extrapolate(0.0).unwrap().y - 1.0 < 1e-9);
    }

    #[test]
    fn extrapolation_without_velocity_returns_last() {
        let mut k = GestureKinematics::default();
        assert!(k.extrapolate(1.0).is_none());
        k.observe(&event(2.0, 3.0, 0, TouchPhase::Began));
        assert_eq!(k.extrapolate(1.0).unwrap(), PointCm::new(2.0, 3.0));
    }

    #[test]
    fn pause_detection() {
        let mut k = GestureKinematics::default();
        k.observe(&event(0.0, 2.0, 0, TouchPhase::Began));
        k.observe(&event(0.0, 2.0, 100, TouchPhase::Stationary));
        k.observe(&event(0.0, 2.0, 200, TouchPhase::Stationary));
        assert!(k.is_paused());
        k.observe(&event(0.0, 4.0, 300, TouchPhase::Moved));
        assert!(!k.is_paused());
    }

    #[test]
    fn window_bounded() {
        let mut k = GestureKinematics::new(3);
        for i in 0..10u64 {
            k.observe(&event(0.0, i as f64, i * 16, TouchPhase::Moved));
        }
        assert_eq!(k.sample_count(), 3);
    }
}
