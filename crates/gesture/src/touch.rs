//! Raw touch events.
//!
//! A touch event is the smallest unit of input the kernel reacts to: "dbTouch
//! goes through these steps for every touch input on a data object"
//! (Section 3). Events carry the location *in the coordinate space of the view
//! they landed in*, a timestamp relative to the start of the session, the phase
//! of the touch, and which finger produced it (0 or 1 — the paper's gestures use
//! at most two fingers).

use dbtouch_types::{PointCm, Timestamp};
use serde::{Deserialize, Serialize};

/// The lifecycle phase of a touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TouchPhase {
    /// The finger has just made contact.
    Began,
    /// The finger moved while in contact.
    Moved,
    /// The finger is still in contact but has not moved since the last sample
    /// (a paused gesture keeps emitting `Stationary` samples).
    Stationary,
    /// The finger left the screen.
    Ended,
}

/// A single touch sample delivered by the (simulated) touch OS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TouchEvent {
    /// Location of the touch, in centimetres, in the coordinates of the view it
    /// landed in (origin at the view's top-left corner).
    pub location: PointCm,
    /// Time of the sample relative to session start.
    pub timestamp: Timestamp,
    /// Phase of the touch.
    pub phase: TouchPhase,
    /// Finger index: 0 for the first finger, 1 for the second finger of a
    /// two-finger gesture.
    pub finger: u8,
}

impl TouchEvent {
    /// Convenience constructor for a single-finger event.
    pub fn new(location: PointCm, timestamp: Timestamp, phase: TouchPhase) -> TouchEvent {
        TouchEvent {
            location,
            timestamp,
            phase,
            finger: 0,
        }
    }

    /// Same event attributed to the given finger.
    pub fn with_finger(mut self, finger: u8) -> TouchEvent {
        self.finger = finger;
        self
    }

    /// True if this sample keeps the finger on the screen.
    pub fn is_active(&self) -> bool {
        !matches!(self.phase, TouchPhase::Ended)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_defaults_to_first_finger() {
        let e = TouchEvent::new(
            PointCm::new(1.0, 2.0),
            Timestamp::from_millis(5),
            TouchPhase::Began,
        );
        assert_eq!(e.finger, 0);
        assert_eq!(e.location.y, 2.0);
        assert!(e.is_active());
    }

    #[test]
    fn with_finger_sets_index() {
        let e = TouchEvent::new(PointCm::ORIGIN, Timestamp::ZERO, TouchPhase::Moved).with_finger(1);
        assert_eq!(e.finger, 1);
    }

    #[test]
    fn ended_is_not_active() {
        let e = TouchEvent::new(PointCm::ORIGIN, Timestamp::ZERO, TouchPhase::Ended);
        assert!(!e.is_active());
        let s = TouchEvent::new(PointCm::ORIGIN, Timestamp::ZERO, TouchPhase::Stationary);
        assert!(s.is_active());
    }
}
