//! Property tests for the gesture recognizer and kinematics: they must be
//! total (never panic) and well-behaved on arbitrary touch-event sequences,
//! because on a real device the touch OS can deliver odd sequences (dropped
//! samples, out-of-order fingers, repeated begans).

use dbtouch_gesture::kinematics::GestureKinematics;
use dbtouch_gesture::recognizer::{GestureEvent, GestureRecognizer};
use dbtouch_gesture::touch::{TouchEvent, TouchPhase};
use dbtouch_types::{PointCm, Timestamp};
use proptest::prelude::*;

fn arb_phase() -> impl Strategy<Value = TouchPhase> {
    prop_oneof![
        Just(TouchPhase::Began),
        Just(TouchPhase::Moved),
        Just(TouchPhase::Stationary),
        Just(TouchPhase::Ended),
    ]
}

fn arb_event() -> impl Strategy<Value = TouchEvent> {
    (
        -5.0f64..20.0,
        -5.0f64..30.0,
        0u64..10_000,
        arb_phase(),
        0u8..2,
    )
        .prop_map(|(x, y, ms, phase, finger)| {
            TouchEvent::new(PointCm::new(x, y), Timestamp::from_millis(ms), phase)
                .with_finger(finger)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The recognizer never panics and never emits more gesture events than it
    /// received touch samples (every sample triggers at most a began+step pair).
    #[test]
    fn recognizer_is_total_and_bounded(events in prop::collection::vec(arb_event(), 0..120)) {
        let mut recognizer = GestureRecognizer::default();
        let mut emitted = 0usize;
        for event in &events {
            emitted += recognizer.feed(event).len();
        }
        prop_assert!(emitted <= 2 * events.len());
    }

    /// Kinematics never panic, never report non-finite speeds, and pause
    /// detection implies (near-)zero speed.
    #[test]
    fn kinematics_speeds_are_finite(events in prop::collection::vec(arb_event(), 0..120)) {
        let mut kinematics = GestureKinematics::default();
        for event in &events {
            kinematics.observe(event);
            let speed = kinematics.speed_cm_per_s();
            prop_assert!(speed.is_finite());
            prop_assert!(speed >= 0.0);
            if kinematics.is_paused() {
                prop_assert!(speed < 0.05);
            }
            if let Some(p) = kinematics.extrapolate(0.25) {
                prop_assert!(p.x.is_finite() && p.y.is_finite());
            }
        }
    }

    /// A well-formed single-finger slide (monotone time, began/moved/ended) is
    /// recognized as exactly one slide: one began, one ended, steps in between.
    #[test]
    fn well_formed_slides_recognized_once(
        steps in 4usize..60,
        dy in 0.25f64..0.5,
    ) {
        let mut recognizer = GestureRecognizer::default();
        let mut all = Vec::new();
        for i in 0..steps {
            let phase = if i == 0 {
                TouchPhase::Began
            } else if i == steps - 1 {
                TouchPhase::Ended
            } else {
                TouchPhase::Moved
            };
            let event = TouchEvent::new(
                PointCm::new(1.0, i as f64 * dy),
                Timestamp::from_millis(i as u64 * 16),
                phase,
            );
            all.extend(recognizer.feed(&event));
        }
        let begans = all.iter().filter(|e| matches!(e, GestureEvent::SlideBegan { .. })).count();
        let ends = all.iter().filter(|e| matches!(e, GestureEvent::SlideEnded { .. })).count();
        let taps = all.iter().filter(|e| matches!(e, GestureEvent::Tap { .. })).count();
        prop_assert_eq!(begans, 1);
        prop_assert_eq!(ends, 1);
        prop_assert_eq!(taps, 0);
    }
}
