//! Vendored stand-in for `serde` for the offline build environment.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derive macros so the
//! `#[derive(Serialize, Deserialize)]` annotations across the workspace keep
//! compiling unchanged. See `vendor/serde_derive` for the rationale.

pub use serde_derive::{Deserialize, Serialize};
