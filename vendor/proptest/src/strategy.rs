//! Value-generation strategies for the vendored proptest stand-in.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident : $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Object-safe strategy view, used by `prop_oneof!`.
pub trait DynStrategy<V> {
    /// Generate one value through the trait object.
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Uniform choice between boxed strategies of one value type.
pub struct OneOf<V> {
    options: Vec<Box<dyn DynStrategy<V>>>,
}

impl<V> OneOf<V> {
    /// Build from a non-empty list of options.
    pub fn new(options: Vec<Box<dyn DynStrategy<V>>>) -> OneOf<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.rng.gen_range(0..self.options.len());
        self.options[pick].generate_dyn(rng)
    }
}
