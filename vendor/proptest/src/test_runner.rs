//! Deterministic randomness for the vendored proptest stand-in.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The generator handed to strategies. Seeded from the property's name (FNV-1a)
/// so every run of a given test generates the same case sequence; set
/// `PROPTEST_SEED` to explore a different sequence.
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Deterministic generator for a named property.
    pub fn from_name(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = seed.parse::<u64>() {
                hash ^= extra.rotate_left(17);
            }
        }
        TestRng {
            rng: StdRng::seed_from_u64(hash),
        }
    }
}
