//! Vendored minimal stand-in for `proptest` (the build environment is
//! offline). Implements the subset the workspace's property tests use:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strategy, ...) {...} }`
//! * range strategies over integers and floats, tuple strategies,
//!   [`Strategy::prop_map`], [`Just`], `prop_oneof!`, `prop::collection::vec`,
//! * `prop_assert!` / `prop_assert_eq!`, [`ProptestConfig::with_cases`].
//!
//! Unlike the real proptest there is no shrinking and no failure persistence:
//! a failing case panics with the case number and the generated inputs' seed.
//! Generation is deterministic per test name, so failures reproduce.

pub mod strategy;
pub mod test_runner;

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Admissible size arguments for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop` (module-style access).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Stand-in for the `proptest!` macro: runs each property `config.cases`
/// times with fresh deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            message
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strategy),+ ) $body
            )*
        }
    };
}

/// Soft assertion: fails the current case (with its inputs' seed) instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {} ({})", stringify!($cond), format!($($fmt)*)));
        }
    };
}

/// Soft equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Soft inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Weighted-choice macro: picks one of the strategies uniformly. All branches
/// must yield the same `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( ::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::strategy::DynStrategy<_>> ),+
        ])
    };
}
