//! Vendored no-op stand-in for `serde_derive`.
//!
//! The build environment is offline, so the real serde cannot be fetched. The
//! code base only uses `#[derive(Serialize, Deserialize)]` as a marker (no
//! generic serialization entry points exist in-tree; gesture traces use a
//! hand-rolled JSON codec). These derives therefore expand to nothing: the
//! derive lists stay intact and switching back to the real serde is a
//! two-line change in the workspace manifest.

use proc_macro::TokenStream;

/// No-op `Serialize` derive. Accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive. Accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
