//! Vendored minimal stand-in for the `criterion` benchmark harness (the build
//! environment is offline).
//!
//! Implements the subset the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!`/`criterion_main!`
//! macros — with a simple warmup + timed-sampling loop. Results are printed as
//! mean ns/iter (plus throughput when declared). Statistical machinery
//! (outlier rejection, confidence intervals, HTML reports) is intentionally
//! absent; swap the workspace dependency back to the real criterion for
//! publication-grade numbers.
//!
//! Set `DBTOUCH_BENCH_FAST=1` to shrink the measurement window (used by CI to
//! smoke-test bench binaries quickly).

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared throughput of a benchmark, used to derive elements/sec reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id carrying just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    measurement: Duration,
    samples: Vec<Duration>,
    iters_done: u64,
}

impl Bencher {
    /// Run `f` repeatedly: a short warmup, then timed batches until the
    /// measurement window is filled.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + batch sizing: grow until one batch takes >= ~1ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let deadline = Instant::now() + self.measurement;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let took = start.elapsed();
            self.samples.push(took / batch as u32);
            self.iters_done += batch;
        }
        if self.samples.is_empty() {
            // Measurement window shorter than one batch: take a single sample.
            let start = Instant::now();
            std_black_box(f());
            self.samples.push(start.elapsed());
            self.iters_done += 1;
        }
    }

    fn mean_nanos(&self) -> f64 {
        let total: f64 = self.samples.iter().map(|d| d.as_nanos() as f64).sum();
        total / self.samples.len().max(1) as f64
    }
}

fn measurement_window() -> Duration {
    if std::env::var("DBTOUCH_BENCH_FAST").is_ok() {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(300)
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let mean = bencher.mean_nanos();
    let mut line = format!("bench  {name:<48} {mean:>14.1} ns/iter");
    if let Some(tp) = throughput {
        let per_sec = |n: u64| n as f64 / (mean / 1e9);
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  ({:.0} elem/s)", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  ({:.0} B/s)", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement: measurement_window(),
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            measurement: self.measurement,
            samples: Vec::new(),
            iters_done: 0,
        };
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Criterion {
        self
    }

    /// Shrink/grow the per-benchmark measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Criterion {
        self.measurement = d;
        self
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput of subsequent benches.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Shrink/grow the group's measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            measurement: self.criterion.measurement,
            samples: Vec::new(),
            iters_done: 0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Run one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (no-op in the shim; present for API compatibility).
    pub fn finish(self) {}
}

/// Stand-in for `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Stand-in for `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
