//! Vendored minimal stand-in for the `rand` crate (the build environment is
//! offline). Implements exactly the surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator,
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 seed expansion (the same
//!   scheme the real rand uses), so seeded streams are stable run-to-run,
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges.
//!
//! Determinism per seed is the only property the workspace relies on (every
//! synthesizer and data generator is seeded); statistical quality of
//! xoshiro256** is far beyond what the simulation needs.

use std::ops::{Range, RangeInclusive};

/// Core source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding from a plain `u64`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A uniformly random `f64` in `[0, 1)`.
    fn gen<T>(&mut self) -> T
    where
        T: SampleUniform,
        Self: Sized,
    {
        T::sample_unit(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_unit(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from the unit interval / full domain via `Rng::gen`.
pub trait SampleUniform {
    /// Sample a canonical value (floats: uniform in `[0, 1)`).
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for u64 {
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Widening-multiply method (Lemire) with a rejection step to remove bias.
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (n as u128);
    let mut lo = m as u64;
    if lo < n {
        let threshold = n.wrapping_neg() % n;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128) * (n as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-domain u64/i64 range
                }
                let off = uniform_u64_below(rng, span as u64);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_unit(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = f64::sample_unit(rng);
        start + u * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_unit(rng) as f32;
        self.start + u * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as prescribed by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let j = rng.gen_range(-0.1f64..=0.1);
            assert!((-0.1..=0.1).contains(&j));
        }
    }

    #[test]
    fn full_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
