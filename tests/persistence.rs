//! Integration tests of the persistent paged catalog: the durability gate.
//!
//! * The full concurrent round trip: build, serve 8 sessions, persist,
//!   reopen, replay the identical seeded workload to bit-identical digests
//!   (the CI smoke runs the same harness across two processes).
//! * Persistence under live churn: snapshots exported while mutator threads
//!   restructure must reopen to exactly one consistent epoch.
//! * Catalogs larger than the buffer pool stream under exploration with the
//!   pool staying bounded.

use dbtouch::prelude::*;
use dbtouch::server::{digest_outcomes, TraceOutcome};
use dbtouch_workload::persistence::{build_and_persist, replay_persisted, RoundTripSpec};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dbtouch-it-persist-{}-{}-{tag}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn eight_session_round_trip_replays_identical_digests() {
    let dir = temp_dir("round-trip");
    let spec = RoundTripSpec {
        rows: 60_000,
        sessions: 8,
        traces_per_session: 3,
        seed: 4242,
    };
    let record = build_and_persist(
        &dir,
        &spec,
        KernelConfig::default(),
        ServerConfig::with_workers(4),
    )
    .unwrap();
    assert_eq!(record.digests.len(), 8);
    let outcome =
        replay_persisted(&dir, KernelConfig::default(), ServerConfig::with_workers(4)).unwrap();
    assert!(outcome.verified(), "{outcome:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Export snapshots to fresh directories *while* mutators restructure the
/// catalog. Every exported directory must reopen to one consistent epoch:
/// internally coherent objects, the churned column present in exactly one
/// place, and the untouched signal column replaying bit-identically.
#[test]
fn persist_under_live_churn_reopens_to_one_consistent_epoch() {
    const MUTATORS: usize = 2;
    const EXPORTS: usize = 4;

    let catalog = Arc::new(SharedCatalog::new(KernelConfig::default()));
    let signal = catalog
        .load_column(
            "signal",
            (0..40_000).map(|i| i % 331).collect(),
            SizeCm::new(2.0, 12.0),
        )
        .unwrap();
    let table = Table::from_columns(
        "churn",
        vec![
            Column::from_i64("key", (0..4_096).collect()),
            Column::from_i64("m0", (0..4_096).rev().collect()),
            Column::from_i64("m1", (0..4_096).map(|i| i * 7).collect()),
        ],
    )
    .unwrap();
    let churn_tid = catalog.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();

    // The signal column's expected digest, computed before any churn.
    let trace = {
        let view = catalog.data(signal).unwrap().base_view().clone();
        GestureSynthesizer::new(60.0).slide_down(&view, 0.8)
    };
    let digest_signal = |catalog: &Arc<SharedCatalog>, id| {
        let mut kernel = Kernel::from_catalog(Arc::clone(catalog));
        kernel
            .set_action(
                id,
                TouchAction::Summary {
                    half_window: Some(25),
                    kind: dbtouch::core::operators::aggregate::AggregateKind::Avg,
                },
            )
            .unwrap();
        let outcome = kernel.run_trace(id, &trace).unwrap();
        digest_outcomes(
            [TraceOutcome {
                object: id,
                outcome,
            }]
            .iter(),
        )
    };
    let expected_signal = digest_signal(&catalog, signal);

    let stop = Arc::new(AtomicBool::new(false));
    let mutators: Vec<_> = (0..MUTATORS)
        .map(|m| {
            let catalog = Arc::clone(&catalog);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let column = format!("m{m}");
                while !stop.load(Ordering::Relaxed) {
                    let cid = catalog
                        .drag_column_out(churn_tid, &column, SizeCm::new(2.0, 10.0))
                        .unwrap();
                    catalog.drag_column_into(churn_tid, cid).unwrap();
                }
            })
        })
        .collect();

    // Export snapshots mid-churn, each into its own directory.
    let dirs: Vec<PathBuf> = (0..EXPORTS)
        .map(|i| {
            let dir = temp_dir(&format!("churn-{i}"));
            let epoch = catalog.persist_to(&dir).unwrap();
            assert!(epoch > 0);
            dir
        })
        .collect();
    stop.store(true, Ordering::Relaxed);
    for m in mutators {
        m.join().unwrap();
    }

    for dir in &dirs {
        let reopened = Arc::new(SharedCatalog::open(dir, KernelConfig::default()).unwrap());
        // One consistent epoch: every object internally coherent.
        let snapshot = reopened.snapshot();
        for (_, data) in snapshot.objects() {
            assert_eq!(
                data.base_view().attribute_count,
                data.schema().len(),
                "object {} is structurally torn",
                data.name()
            );
            assert_eq!(data.hierarchies().len(), data.schema().len());
        }
        // The churned columns live in exactly one place each: the table or a
        // standalone object, never both, never neither.
        let churn = reopened.data(reopened.object_id("churn").unwrap()).unwrap();
        for m in 0..MUTATORS {
            let column = format!("m{m}");
            let in_table = churn.schema().iter().any(|(n, _)| *n == column);
            let standalone = reopened.object_id(&column).is_ok();
            assert!(
                in_table ^ standalone,
                "column {column} must be in exactly one place (in_table={in_table}, standalone={standalone})"
            );
        }
        // The untouched signal column replays bit-identically from pages.
        let id = reopened.object_id("signal").unwrap();
        assert_eq!(digest_signal(&reopened, id), expected_signal);
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// A catalog bigger than its buffer pool streams: exploration succeeds, the
/// pool faults and evicts, and results stay identical to the in-memory run.
#[test]
fn catalog_larger_than_the_pool_streams_under_exploration() {
    let dir = temp_dir("streaming");
    let rows = 200_000i64;
    let catalog = Arc::new(SharedCatalog::new(KernelConfig::default()));
    let id = catalog
        .load_column("big", (0..rows).collect(), SizeCm::new(2.0, 14.0))
        .unwrap();
    let view = catalog.data(id).unwrap().base_view().clone();
    let trace = GestureSynthesizer::new(60.0).exploratory_slide(&view, 3.0);
    let run = |catalog: &Arc<SharedCatalog>, id| {
        let mut kernel = Kernel::from_catalog(Arc::clone(catalog));
        kernel
            .set_action(
                id,
                TouchAction::Summary {
                    half_window: Some(400),
                    kind: dbtouch::core::operators::aggregate::AggregateKind::Avg,
                },
            )
            .unwrap();
        let outcome = kernel.run_trace(id, &trace).unwrap();
        digest_outcomes(
            [TraceOutcome {
                object: id,
                outcome,
            }]
            .iter(),
        )
    };
    catalog.persist_to(&dir).unwrap();

    // Pool of 32 pages ≈ 256 KiB vs ≈ 1.6 MiB of column data alone: the
    // exploration must stream. Adaptive sampling off so base data is read;
    // the baseline uses the same config, since the plan (not just the
    // storage) depends on it.
    let config = KernelConfig::default()
        .with_adaptive_sampling(false)
        .with_buffer_pool_pages(32);
    let small = Arc::new(SharedCatalog::open(&dir, config.clone()).unwrap());
    let id = small.object_id("big").unwrap();
    let baseline = Arc::new(SharedCatalog::new(config.with_buffer_pool_pages(4096)));
    let bid = baseline
        .load_column("big", (0..rows).collect(), SizeCm::new(2.0, 14.0))
        .unwrap();
    assert_eq!(run(&small, id), run(&baseline, bid));
    let stats = small.pager_stats().unwrap();
    assert!(
        stats.faults > 32,
        "must fault more pages than fit: {stats:?}"
    );
    assert!(stats.evictions > 0, "pool must evict: {stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
