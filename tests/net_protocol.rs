//! Integration tests of the network serving layer: loopback replay with
//! bit-identical digests, malformed-frame robustness, load shedding under
//! deliberately tiny thresholds, and graceful drain.

use dbtouch::net::frame::{self, tag};
use dbtouch::net::{NetServer, TcpClient};
use dbtouch::server::{ClientSession, ExplorationClient, ServerConfig, SessionReport, ShedConfig};
use dbtouch::types::{DbTouchError, KernelConfig};
use dbtouch::workload::concurrent::{
    drive_plans_over, plan_explorers, run_sequential, scenario_catalog,
};
use dbtouch::workload::Scenario;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Bring up a loopback server over a seeded scenario catalog.
fn serve_scenario(
    rows: usize,
    config: ServerConfig,
) -> (
    NetServer,
    std::sync::Arc<dbtouch::core::catalog::SharedCatalog>,
    dbtouch::core::kernel::ObjectId,
) {
    let scenario = Scenario::sky_survey(rows, 17);
    let (catalog, object) = scenario_catalog(&scenario, KernelConfig::default()).unwrap();
    let server = NetServer::serve(
        config
            .with_catalog(std::sync::Arc::clone(&catalog))
            .with_listen_addr("127.0.0.1:0"),
    )
    .unwrap();
    (server, catalog, object)
}

#[test]
fn loopback_replay_digests_match_in_process() {
    let (server, catalog, object) = serve_scenario(20_000, ServerConfig::with_workers(2));
    let client = TcpClient::new(server.local_addr().to_string());

    // The same generic driver the in-process concurrency path uses, pointed
    // at the TCP transport instead.
    let plans = plan_explorers(&catalog, object, 4, 3, 1234).unwrap();
    let reports = drive_plans_over(&client, object, &plans).unwrap();
    assert_eq!(reports.len(), plans.len());
    for report in &reports {
        assert!(report.errors.is_empty(), "errors: {:?}", report.errors);
        assert_eq!(report.traces_run(), 3);
    }

    // Bit-identical to a sequential single-user replay of the same plans:
    // the wire codec preserved every float bit and every result row.
    let networked: Vec<u64> = reports.iter().map(SessionReport::result_digest).collect();
    let sequential = run_sequential(&catalog, object, &plans).unwrap();
    assert_eq!(networked, sequential);

    // The net.* instruments saw the traffic.
    let snap = server.metrics_snapshot();
    assert_eq!(snap.scalar("net.accepted"), Some(4));
    assert!(snap.scalar("net.bytes_in").unwrap() > 0);
    assert!(snap.scalar("net.bytes_out").unwrap() > 0);
    assert_eq!(snap.scalar("net.frame_errors"), Some(0));
    assert!(snap.histogram("net.frame_nanos").unwrap().count() > 0);
    server.shutdown();
}

#[test]
fn metrics_travel_over_the_wire() {
    let (server, _catalog, object) = serve_scenario(5_000, ServerConfig::with_workers(1));
    let client = TcpClient::new(server.local_addr().to_string());

    let mut session = client.open_session().unwrap();
    session
        .set_action(object, dbtouch::core::kernel::TouchAction::Scan)
        .unwrap();
    session.close().unwrap();

    let json = client.metrics_json().unwrap();
    let metrics = json.get("metrics").expect("metrics key");
    assert!(metrics.get("net.accepted").is_some());
    assert!(metrics.get("server.sessions_opened").is_some());
    server.shutdown();
}

/// A raw TCP peer that completes the handshake and then misbehaves.
fn handshaken_raw_stream(server: &NetServer) -> TcpStream {
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let hello = format!(
        "{{\"proto\": \"{}\", \"version\": {}}}",
        frame::PROTOCOL_NAME,
        frame::PROTOCOL_VERSION
    );
    let mut payload = vec![tag::HELLO];
    payload.extend_from_slice(hello.as_bytes());
    frame::write_frame(&mut stream, &payload).unwrap();
    let (outcome, _) = frame::read_frame(&mut stream, frame::MAX_HANDSHAKE_LEN).unwrap();
    match outcome {
        frame::ReadOutcome::Frame(p) => assert_eq!(p.first(), Some(&tag::HELLO_ACK)),
        other => panic!("handshake failed: {other:?}"),
    }
    stream
}

fn read_response(stream: &mut TcpStream) -> Vec<u8> {
    let (outcome, _) = frame::read_frame(stream, frame::MAX_FRAME_LEN).unwrap();
    match outcome {
        frame::ReadOutcome::Frame(p) => p,
        other => panic!("expected a frame, got {other:?}"),
    }
}

#[test]
fn malformed_frames_get_errors_never_panics() {
    let (server, _catalog, object) = serve_scenario(2_000, ServerConfig::with_workers(1));

    // 1. Bad checksum: explicit error response, connection survives.
    {
        let mut stream = handshaken_raw_stream(&server);
        let payload = [tag::OPEN_SESSION];
        stream
            .write_all(&(payload.len() as u32).to_le_bytes())
            .unwrap();
        stream.write_all(&payload).unwrap();
        stream
            .write_all(&(frame::checksum(&payload) ^ 0xdead_beef).to_le_bytes())
            .unwrap();
        let resp = read_response(&mut stream);
        assert_eq!(resp.first(), Some(&tag::ERROR));
        // Same connection still serves a valid request afterwards.
        frame::write_frame(&mut stream, &[tag::OPEN_SESSION]).unwrap();
        let resp = read_response(&mut stream);
        assert_eq!(resp.first(), Some(&tag::SESSION_OPENED));
    }

    // 2. Unknown frame type: error response, connection survives.
    {
        let mut stream = handshaken_raw_stream(&server);
        frame::write_frame(&mut stream, &[0x7f, 1, 2, 3]).unwrap();
        let resp = read_response(&mut stream);
        assert_eq!(resp.first(), Some(&tag::ERROR));
        frame::write_frame(&mut stream, &[tag::METRICS]).unwrap();
        let resp = read_response(&mut stream);
        assert_eq!(resp.first(), Some(&tag::METRICS_JSON));
    }

    // 3. Undecodable payload (valid checksum, garbage body): error response.
    {
        let mut stream = handshaken_raw_stream(&server);
        let mut garbage = vec![tag::RUN_TRACE];
        garbage.extend_from_slice(&[0xff; 7]);
        frame::write_frame(&mut stream, &garbage).unwrap();
        let resp = read_response(&mut stream);
        assert_eq!(resp.first(), Some(&tag::ERROR));
    }

    // 4. Oversize length prefix: error response, then the connection closes.
    {
        let mut stream = handshaken_raw_stream(&server);
        stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let resp = read_response(&mut stream);
        assert_eq!(resp.first(), Some(&tag::ERROR));
        let mut rest = Vec::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(stream.read_to_end(&mut rest).unwrap_or(0), 0);
    }

    // 5. Truncation: die mid-frame; the server cleans up without panicking.
    {
        let mut stream = handshaken_raw_stream(&server);
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(&[tag::RUN_TRACE, 1, 2, 3]).unwrap();
        drop(stream);
    }

    // Every abuse above was counted, and the server still works end to end.
    std::thread::sleep(Duration::from_millis(100));
    let snap = server.metrics_snapshot();
    assert!(
        snap.scalar("net.frame_errors").unwrap() >= 4,
        "frame_errors: {:?}",
        snap.scalar("net.frame_errors")
    );
    let client = TcpClient::new(server.local_addr().to_string());
    let mut session = client.open_session().unwrap();
    session
        .set_action(object, dbtouch::core::kernel::TouchAction::Scan)
        .unwrap();
    let report = session.close().unwrap();
    assert!(report.errors.is_empty());
    server.shutdown();
}

#[test]
fn tiny_thresholds_shed_explicitly() {
    let shed = ShedConfig {
        max_live_sessions: Some(1),
        retry_after_ms: 37,
        ..ShedConfig::default()
    };
    let (server, _catalog, object) =
        serve_scenario(2_000, ServerConfig::with_workers(1).with_shed(shed));
    let client = TcpClient::new(server.local_addr().to_string());

    // First session is admitted; the second is shed with the configured
    // backoff and an explanation, not queued and not hung.
    let mut first = client.open_session().unwrap();
    first
        .set_action(object, dbtouch::core::kernel::TouchAction::Scan)
        .unwrap();
    match client.open_session() {
        Err(DbTouchError::Overloaded {
            retry_after_ms,
            reason,
        }) => {
            assert_eq!(retry_after_ms, 37);
            assert!(reason.contains("live sessions"), "reason: {reason}");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(server.metrics_snapshot().scalar("net.shed").unwrap() >= 1);

    // Closing the first session frees the slot.
    first.close().unwrap();
    let second = client.open_session().unwrap();
    second.close().unwrap();

    // An impossible p99 target sheds traces on an already-open session:
    // the open and the first trace are admitted (no touch latencies yet),
    // then the recorded latencies trip the pressure check.
    let (traffic_server, traffic_catalog, object2) = serve_scenario(
        2_000,
        ServerConfig::with_workers(1).with_shed(ShedConfig {
            max_touch_p99_nanos: Some(0),
            retry_after_ms: 11,
            ..ShedConfig::default()
        }),
    );
    let traffic_client = TcpClient::new(traffic_server.local_addr().to_string());
    let mut session = traffic_client.open_session().unwrap();
    session
        .set_action(object2, dbtouch::core::kernel::TouchAction::Scan)
        .unwrap();
    let view = traffic_catalog.data(object2).unwrap().base_view().clone();
    let trace = dbtouch::gesture::synthesizer::GestureSynthesizer::new(60.0).slide_down(&view, 0.2);
    session.run_trace(object2, trace.clone()).unwrap();
    match session.run_trace(object2, trace) {
        Err(DbTouchError::Overloaded { retry_after_ms, .. }) => {
            assert_eq!(retry_after_ms, 11)
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    session.close().unwrap();

    server.shutdown();
    traffic_server.shutdown();
}

#[test]
fn graceful_drain_delivers_final_report() {
    let (server, catalog, object) = serve_scenario(10_000, ServerConfig::with_workers(1));
    let client = TcpClient::new(server.local_addr().to_string());

    let mut session = client.open_session().unwrap();
    session
        .set_action(object, dbtouch::core::kernel::TouchAction::Scan)
        .unwrap();
    let view = catalog.data(object).unwrap().base_view().clone();
    let trace = dbtouch::gesture::synthesizer::GestureSynthesizer::new(60.0).slide_down(&view, 0.3);
    session.run_trace(object, trace).unwrap();

    // Shut down while the client sits idle: the handler closes the session,
    // flushes the acknowledged trace through the close barrier and sends
    // GoAway with the final report.
    let shutdown = std::thread::spawn(move || server.shutdown());
    // The client's next request crosses the drain and fails...
    let err = loop {
        match session.snapshot() {
            Ok(_) => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => break e,
        }
    };
    assert!(matches!(err, DbTouchError::Remote(_) | DbTouchError::Io(_)));
    // ...but the final report was delivered: the acknowledged trace is in it.
    let report = session
        .take_goaway_report()
        .expect("drain should deliver the final SessionReport");
    assert_eq!(report.traces_run(), 1);
    assert!(report.errors.is_empty());
    drop(session);
    shutdown.join().unwrap();

    // And a fresh connection is refused (the listener is gone).
    let refused = TcpClient::new("127.0.0.1:1".to_string());
    assert!(refused.open_session().is_err());
}
