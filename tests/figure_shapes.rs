//! Integration tests that run the experiment harnesses at reduced scale and
//! assert the *shapes* the paper reports: Figure 4(a) (entries grow with
//! gesture duration), Figure 4(b) (entries double with object size), the
//! exploration contest (dbTouch touches orders of magnitude less data), and
//! the parameter sweeps.

use dbtouch_bench::ablations;
use dbtouch_bench::contest::{run_contest, ContestScenario};
use dbtouch_bench::figures::{run_figure4a, run_figure4b, FigureConfig};
use dbtouch_bench::sweeps::{sweep_summary_window, sweep_touch_rate};

fn small_config() -> FigureConfig {
    FigureConfig {
        rows: 300_000,
        ..FigureConfig::default()
    }
}

#[test]
fn figure4a_shape_entries_grow_linearly_with_duration() {
    let report = run_figure4a(&small_config(), &[0.5, 1.0, 2.0, 4.0]).unwrap();
    let entries: Vec<u64> = report.points.iter().map(|p| p.entries_returned).collect();
    assert!(entries.windows(2).all(|w| w[1] > w[0]), "{entries:?}");
    // 8x longer gesture -> roughly 8x the entries (paper: ~5 -> ~55, i.e. ~11x
    // on the iPad; we accept 4x-12x as "linear-ish").
    let ratio = entries[3] as f64 / entries[0] as f64;
    assert!((4.0..12.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn figure4a_ipad_rate_matches_paper_magnitude() {
    let config = FigureConfig {
        rows: 300_000,
        ..FigureConfig::ipad_like()
    };
    let report = run_figure4a(&config, &[0.5, 4.0]).unwrap();
    // Paper: ~5 entries at 0.5s, ~55 at 4s on the iPad 1.
    assert!((3..=15).contains(&report.points[0].entries_returned));
    assert!((40..=80).contains(&report.points[1].entries_returned));
}

#[test]
fn figure4b_shape_entries_double_with_object_size() {
    let report = run_figure4b(&small_config(), 3).unwrap();
    for pair in report.points.windows(2) {
        let ratio = pair[1].entries_returned as f64 / pair[0].entries_returned as f64;
        assert!(
            (1.6..2.5).contains(&ratio),
            "doubling the object size should roughly double the entries, got {ratio}"
        );
    }
}

#[test]
fn contest_shape_dbtouch_wins_on_data_and_time() {
    let report = run_contest(ContestScenario::Contest, 120_000, 5, 0.02).unwrap();
    assert!(report.dbtouch.found);
    assert!(report.sql.found);
    assert_eq!(report.winner_by_time(), "dbtouch");
    assert!(report.data_touched_ratio() > 10.0);
}

#[test]
fn sweeps_shapes() {
    let k_sweep = sweep_summary_window(150_000, &[0, 10, 50]).unwrap();
    assert!(k_sweep.points[2].rows_touched > 3 * k_sweep.points[0].rows_touched);
    let rate_sweep = sweep_touch_rate(150_000, &[15.0, 60.0]).unwrap();
    assert!(rate_sweep.points[1].entries_returned > 3 * rate_sweep.points[0].entries_returned);
}

#[test]
fn ablation_shapes_hold_at_reduced_scale() {
    let a1 = ablations::ablation_samples(200_000).unwrap();
    assert!(a1.adaptive_working_set_bytes < a1.naive_working_set_bytes);

    let a4 = ablations::ablation_join(20_000).unwrap();
    assert!(a4.symmetric_rows_to_first_match < 100);
    assert!(a4.blocking_rows_to_first_match > 20_000);

    let a5 = ablations::ablation_rotation(100_000, 5_000).unwrap();
    assert!(a5.incremental_first_queryable_nanos < a5.eager_first_queryable_nanos);
}
