//! Acceptance tests for the live telemetry subsystem: the metrics snapshot
//! is readable mid-run under 32 concurrent sessions with live catalog churn,
//! and telemetry never steers results — session digests are bit-identical
//! with the hub on or off.

use dbtouch::obs::TraceEventKind;
use dbtouch::prelude::*;
use dbtouch::workload::concurrent::{plan_hot_object, run_concurrent, scenario_catalog};
use dbtouch::workload::Scenario;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn metrics_snapshot_is_readable_mid_run_under_churn() {
    let catalog = Arc::new(SharedCatalog::new(KernelConfig::default()));
    let id = catalog
        .load_column("col", (0..60_000).collect(), SizeCm::new(2.0, 10.0))
        .unwrap();
    let table = Table::from_columns(
        "t",
        vec![
            Column::from_i64("id", (0..20_000).collect()),
            Column::from_f64("v", (0..20_000).map(|i| i as f64).collect()),
        ],
    )
    .unwrap();
    let tid = catalog.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
    let view = catalog.data(id).unwrap().base_view().clone();
    let epoch_before = catalog.epoch();

    let server = Arc::new(
        ExplorationServer::serve(ServerConfig::with_workers(4).with_catalog(Arc::clone(&catalog)))
            .unwrap(),
    );

    // 32 concurrent explorers, each running several traces.
    let explorers: Vec<_> = (0..32)
        .map(|_| {
            let server = Arc::clone(&server);
            let view = view.clone();
            std::thread::spawn(move || {
                let session = server.open_session();
                for _ in 0..3 {
                    session
                        .run_trace(id, GestureSynthesizer::new(60.0).slide_down(&view, 0.4))
                        .unwrap();
                }
                session.close().unwrap()
            })
        })
        .collect();

    // Live catalog churn: restructure the table while the explorers run.
    let done = Arc::new(AtomicBool::new(false));
    let churn = {
        let catalog = Arc::clone(&catalog);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut restructures = 0u64;
            while !done.load(Ordering::Relaxed) {
                let cid = catalog
                    .drag_column_out(tid, "v", SizeCm::new(2.0, 10.0))
                    .unwrap();
                catalog.drag_column_into(tid, cid).unwrap();
                restructures += 2;
            }
            restructures
        })
    };

    // Mid-run scrapes: coherent and non-blocking while everything churns.
    let mut mid_run_scrapes = 0;
    while explorers.iter().any(|h| !h.is_finished()) {
        let metrics = server.metrics_snapshot();
        assert_eq!(metrics.worker_loads.len(), 4);
        assert!(metrics.scalar("catalog.epoch").is_some());
        assert!(metrics.scalar("server.sessions_opened").is_some());
        assert!(!metrics.render_text().is_empty());
        mid_run_scrapes += 1;
    }
    assert!(mid_run_scrapes > 0, "at least one scrape ran mid-serving");

    let reports: Vec<SessionReport> = explorers
        .into_iter()
        .map(|h| h.join().expect("explorer thread"))
        .collect();
    done.store(true, Ordering::Relaxed);
    let restructures = churn.join().expect("churn thread");
    assert!(restructures > 0, "churn published restructures");
    for report in &reports {
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.traces_run(), 3);
    }

    // Final snapshot: lifetime counters, peaks, and lifecycle events.
    let metrics = server.metrics_snapshot();
    assert_eq!(metrics.sessions_served(), 32);
    assert_eq!(metrics.scalar("server.sessions_closed"), Some(32));
    assert!(
        metrics.peak_live_sessions() >= 4,
        "peak load under 32 threads"
    );
    assert!(metrics.scalar("server.peak_worker_load").unwrap() >= 1);
    assert_eq!(metrics.traces_run(), 96);
    assert!(metrics.scalar("catalog.epoch").unwrap() > epoch_before);
    assert!(metrics.scalar("catalog.restructures").unwrap() >= restructures);
    let hist = metrics.histogram("server.touch_nanos").unwrap();
    assert_eq!(hist.count(), 96);
    assert!(
        metrics
            .events()
            .iter()
            .any(|e| e.kind == TraceEventKind::EpochPublished),
        "restructure publishes appear in the event trace"
    );
    assert!(
        metrics
            .events()
            .iter()
            .any(|e| e.kind == TraceEventKind::TraceFinished),
        "gesture lifecycle appears in the event trace"
    );
    // JSON exposition round-trips through the in-tree codec.
    let rendered = metrics.to_json().pretty();
    let parsed = dbtouch::types::json::parse(&rendered).unwrap();
    assert_eq!(
        parsed
            .get("metrics")
            .and_then(|m| m.get("server.traces"))
            .and_then(|v| v.as_u64()),
        Some(96)
    );
    if let Ok(server) = Arc::try_unwrap(server) {
        server.shutdown();
    }
}

#[test]
fn digests_are_bit_identical_with_telemetry_on_and_off() {
    let scenario = Scenario::sky_survey(30_000, 17);
    let mut digests = Vec::new();
    for telemetry in [false, true] {
        let (catalog, object) =
            scenario_catalog(&scenario, KernelConfig::default().with_telemetry(telemetry)).unwrap();
        let plans = plan_hot_object(&catalog, object, 4, 2, 7).unwrap();
        let run = run_concurrent(&catalog, object, &plans, ServerConfig::default()).unwrap();
        assert!(run.errors().is_empty(), "{:?}", run.errors());
        digests.push(run.digests());
    }
    assert_eq!(
        digests[0], digests[1],
        "telemetry observes, it must never steer results"
    );
}
