//! Concurrency integration tests: N threads of gesture sessions over one
//! shared catalog must produce exactly the results of a single-threaded
//! kernel run — the catalog split makes sessions share immutable data and
//! nothing else, so interleaving cannot change what any explorer sees.

use dbtouch::core::catalog::SharedCatalog;
use dbtouch::core::kernel::{Kernel, TouchAction};
use dbtouch::core::operators::aggregate::AggregateKind;
use dbtouch::core::session::Session;
use dbtouch::gesture::synthesizer::GestureSynthesizer;
use dbtouch::server::{
    digest_outcomes, ExplorationServer, ServerConfig, SessionReport, TraceOutcome,
};
use dbtouch::types::{KernelConfig, SizeCm};
use std::sync::Arc;

const THREADS: usize = 8;
const TRACES_PER_THREAD: usize = 5;

fn shared_catalog(rows: i64) -> (Arc<SharedCatalog>, dbtouch::core::kernel::ObjectId) {
    let catalog = Arc::new(SharedCatalog::new(KernelConfig::default()));
    let id = catalog
        .load_column("shared", (0..rows).collect(), SizeCm::new(2.0, 10.0))
        .unwrap();
    (catalog, id)
}

/// The trace plan every session runs: M slides of varying durations.
fn slide_plan(
    catalog: &SharedCatalog,
    id: dbtouch::core::kernel::ObjectId,
) -> Vec<dbtouch::gesture::trace::GestureTrace> {
    let view = catalog.data(id).unwrap().base_view().clone();
    let mut synthesizer = GestureSynthesizer::new(60.0);
    (0..TRACES_PER_THREAD)
        .map(|i| synthesizer.slide_down(&view, 0.4 + 0.2 * i as f64))
        .collect()
}

/// Baseline: the same plan through the single-user kernel, fresh state.
fn sequential_digest(
    catalog: &Arc<SharedCatalog>,
    id: dbtouch::core::kernel::ObjectId,
    action: TouchAction,
) -> (u64, u64) {
    let mut kernel = Kernel::from_catalog(Arc::clone(catalog));
    kernel.set_action(id, action).unwrap();
    let mut outcomes = Vec::new();
    for trace in slide_plan(catalog, id) {
        outcomes.push(TraceOutcome {
            object: id,
            outcome: kernel.run_trace(id, &trace).unwrap(),
        });
    }
    let entries: u64 = outcomes
        .iter()
        .map(|o| o.outcome.stats.entries_returned)
        .sum();
    (digest_outcomes(outcomes.iter()), entries)
}

#[test]
fn raw_threads_over_checked_out_state_match_kernel() {
    // The low-level form of the claim: N threads each checkout state and run
    // sessions directly, no server machinery involved.
    let (catalog, id) = shared_catalog(150_000);
    let (expected_digest, expected_entries) = sequential_digest(&catalog, id, TouchAction::Scan);
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let catalog = Arc::clone(&catalog);
            std::thread::spawn(move || {
                let config = catalog.config().clone();
                let mut state = catalog.checkout(id).unwrap();
                let mut outcomes = Vec::new();
                for trace in slide_plan(&catalog, id) {
                    outcomes.push(TraceOutcome {
                        object: id,
                        outcome: Session::new(&mut state, &config).run(&trace).unwrap(),
                    });
                }
                (
                    digest_outcomes(outcomes.iter()),
                    outcomes
                        .iter()
                        .map(|o| o.outcome.stats.entries_returned)
                        .sum::<u64>(),
                )
            })
        })
        .collect();
    for handle in handles {
        let (digest, entries) = handle.join().unwrap();
        assert_eq!(entries, expected_entries);
        assert_eq!(digest, expected_digest);
    }
}

#[test]
fn served_sessions_match_kernel_run() {
    // The served form: N sessions through the exploration server's worker
    // pool, each with a different action mix, all checked against the
    // sequential kernel replay.
    let (catalog, id) = shared_catalog(150_000);
    let actions = [
        TouchAction::Scan,
        TouchAction::Aggregate(AggregateKind::Avg),
        TouchAction::Summary {
            half_window: Some(5),
            kind: AggregateKind::Avg,
        },
    ];
    let server =
        ExplorationServer::serve(ServerConfig::with_workers(4).with_catalog(Arc::clone(&catalog)))
            .unwrap();
    let drivers: Vec<_> = (0..THREADS)
        .map(|i| {
            let session = server.open_session();
            let catalog = Arc::clone(&catalog);
            let action = actions[i % actions.len()].clone();
            std::thread::spawn(move || -> (TouchAction, SessionReport) {
                session.set_action(id, action.clone()).unwrap();
                for trace in slide_plan(&catalog, id) {
                    session.run_trace(id, trace).unwrap();
                }
                (action, session.close().unwrap())
            })
        })
        .collect();
    let reports: Vec<(TouchAction, SessionReport)> =
        drivers.into_iter().map(|d| d.join().unwrap()).collect();
    server.shutdown();

    for (action, report) in reports {
        assert!(report.errors.is_empty(), "errors: {:?}", report.errors);
        assert_eq!(report.traces_run(), TRACES_PER_THREAD);
        let (expected_digest, expected_entries) = sequential_digest(&catalog, id, action.clone());
        assert_eq!(
            report.total_entries(),
            expected_entries,
            "entry count diverged for {action:?}"
        );
        assert_eq!(
            report.result_digest(),
            expected_digest,
            "results diverged for {action:?}"
        );
    }
}

#[test]
fn shared_result_cache_is_result_transparent() {
    // Two catalogs with identical data, differing only in the shared-cache
    // knob, each served to N summary sessions running the identical plan —
    // the hot-object case the cache exists for. Every session's digest must
    // be identical across cache-on, cache-off and the sequential replay, and
    // the cache-on run must actually have served windows from the cache.
    let make_catalog = |shared_cache: bool| {
        let config = KernelConfig::default().with_shared_cache(shared_cache);
        let catalog = Arc::new(SharedCatalog::new(config));
        let id = catalog
            .load_column("shared", (0..150_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        (catalog, id)
    };
    let action = TouchAction::Summary {
        half_window: Some(5),
        kind: AggregateKind::Avg,
    };

    let run_served = |catalog: &Arc<SharedCatalog>, id| -> Vec<SessionReport> {
        let server = ExplorationServer::serve(
            ServerConfig::with_workers(4).with_catalog(Arc::clone(catalog)),
        )
        .unwrap();
        let drivers: Vec<_> = (0..THREADS)
            .map(|_| {
                let session = server.open_session();
                let catalog = Arc::clone(catalog);
                let action = action.clone();
                std::thread::spawn(move || -> SessionReport {
                    session.set_action(id, action).unwrap();
                    for trace in slide_plan(&catalog, id) {
                        session.run_trace(id, trace).unwrap();
                    }
                    session.close().unwrap()
                })
            })
            .collect();
        let reports = drivers.into_iter().map(|d| d.join().unwrap()).collect();
        server.shutdown();
        reports
    };

    let (catalog_on, id_on) = make_catalog(true);
    let (catalog_off, id_off) = make_catalog(false);
    let reports_on = run_served(&catalog_on, id_on);
    let reports_off = run_served(&catalog_off, id_off);

    let (expected_digest, expected_entries) =
        sequential_digest(&catalog_off, id_off, action.clone());
    let mut total_hits = 0;
    for (on, off) in reports_on.iter().zip(&reports_off) {
        assert!(on.errors.is_empty(), "errors: {:?}", on.errors);
        assert_eq!(on.result_digest(), expected_digest);
        assert_eq!(off.result_digest(), expected_digest);
        assert_eq!(on.total_entries(), expected_entries);
        assert_eq!(on.total_rows_touched(), off.total_rows_touched());
        assert_eq!(
            off.total_shared_cache_hits() + off.total_shared_cache_misses(),
            0,
            "disabled cache must not be consulted"
        );
        total_hits += on.total_shared_cache_hits();
    }
    // 8 sessions × the same 5-slide plan: windows repeat across sessions, so
    // the cache-on run must have answered some of them without recomputing.
    assert!(total_hits > 0, "shared cache never hit on a hot object");

    // The sequential replay with the cache enabled (and by now warm) is also
    // bit-identical: hits change no observable result.
    let (warm_digest, warm_entries) = sequential_digest(&catalog_on, id_on, action);
    assert_eq!(warm_digest, expected_digest);
    assert_eq!(warm_entries, expected_entries);
}

#[test]
fn catalog_churn_never_perturbs_unrelated_sessions() {
    // End-to-end form of the epoch guarantee: THREADS sessions explore one
    // column while mutator threads continuously restructure a disjoint churn
    // table. Every session's digest must equal the churn-free sequential
    // replay, and the epoch must have advanced by at least the restructures
    // performed.
    use dbtouch::workload::churn::{churn_catalog, run_concurrent_with_churn};
    use dbtouch::workload::concurrent::{plan_explorers, run_sequential};
    use dbtouch::workload::scenarios::Scenario;

    let scenario = Scenario::sky_survey(60_000, 13);
    let (catalog, signal, churn) =
        churn_catalog(&scenario, KernelConfig::default(), 2_048).unwrap();
    let plans = plan_explorers(&catalog, signal, THREADS, 3, 99).unwrap();
    let outcome = run_concurrent_with_churn(
        &catalog,
        signal,
        &plans,
        ServerConfig::with_workers(4),
        churn,
        2,
    )
    .unwrap();
    assert!(
        outcome.mutator_errors.is_empty(),
        "mutators: {:?}",
        outcome.mutator_errors
    );
    assert!(
        outcome.run.errors().is_empty(),
        "sessions: {:?}",
        outcome.run.errors()
    );
    assert!(outcome.restructures >= 4);
    assert!(outcome.final_epoch >= outcome.first_epoch + outcome.restructures);
    for report in &outcome.run.sessions {
        // Within a session, observed epochs never go backwards.
        assert!(report.epochs.windows(2).all(|w| w[0] <= w[1]));
    }
    let sequential = run_sequential(&catalog, signal, &plans).unwrap();
    assert_eq!(outcome.run.digests(), sequential);
}

#[test]
fn sessions_with_same_plan_agree_with_each_other() {
    // Per-session determinism: every session running the identical plan must
    // report the identical result counts and digests.
    let (catalog, id) = shared_catalog(80_000);
    let server =
        ExplorationServer::serve(ServerConfig::with_workers(4).with_catalog(Arc::clone(&catalog)))
            .unwrap();
    let drivers: Vec<_> = (0..THREADS)
        .map(|_| {
            let session = server.open_session();
            let catalog = Arc::clone(&catalog);
            std::thread::spawn(move || -> SessionReport {
                for trace in slide_plan(&catalog, id) {
                    session.run_trace(id, trace).unwrap();
                }
                session.close().unwrap()
            })
        })
        .collect();
    let reports: Vec<SessionReport> = drivers.into_iter().map(|d| d.join().unwrap()).collect();
    server.shutdown();
    let first_digest = reports[0].result_digest();
    let first_entries = reports[0].total_entries();
    assert!(first_entries > 0);
    for report in &reports {
        assert_eq!(report.result_digest(), first_digest);
        assert_eq!(report.total_entries(), first_entries);
    }
}
