//! Acceptance tests for end-to-end causal tracing: a loopback TCP run under
//! 16 concurrent sessions, live catalog churn, and the overlapped remote
//! executor yields tail-sampled span trees that are rooted, acyclic, and
//! interval-nested; every tree carries the trace id the client stamped into
//! its `RunTrace` frame; the Perfetto export parses; and tracing never
//! steers results — digests are bit-identical with spans on or off.

use dbtouch::obs::{SpanRecord, SpanTree, CLIENT_ID_BIT};
use dbtouch::prelude::*;
use dbtouch::types::RemoteSplitConfig;
use dbtouch::workload::concurrent::{plan_hot_object, run_concurrent, scenario_catalog};
use dbtouch::workload::Scenario;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Every structural invariant a retained span tree must hold.
fn assert_tree_well_formed(tree: &SpanTree) {
    let by_id: std::collections::HashMap<u64, &SpanRecord> =
        tree.spans.iter().map(|s| (s.id, s)).collect();
    assert_eq!(by_id.len(), tree.spans.len(), "span ids unique per tree");

    // Exactly one root, and it is the first span recorded.
    let roots: Vec<&SpanRecord> = tree.spans.iter().filter(|s| s.parent == 0).collect();
    assert_eq!(roots.len(), 1, "trace {} has one root", tree.trace);
    let root = roots[0];
    assert_eq!(tree.spans[0].id, root.id, "root recorded first");

    for span in &tree.spans {
        // Finished trees never leak open spans.
        assert_ne!(span.duration_nanos, u64::MAX, "{} closed", span.name);
        if span.parent == 0 {
            continue;
        }
        // Acyclic by construction: every parent already exists and, walking
        // up, terminates at the root.
        let parent = by_id
            .get(&span.parent)
            .unwrap_or_else(|| panic!("{} has a recorded parent", span.name));
        // Late spans (refinements landing after the touch answered) are
        // causally linked but exempt from interval containment.
        if span.late {
            assert_eq!(span.parent, root.id, "late spans hang off the root");
            continue;
        }
        let end = span.start_nanos + span.duration_nanos;
        let parent_end = parent.start_nanos + parent.duration_nanos;
        assert!(
            span.start_nanos >= parent.start_nanos && end <= parent_end,
            "{} [{}, {end}] nests inside {} [{}, {parent_end}]",
            span.name,
            span.start_nanos,
            parent.name,
            parent.start_nanos,
        );
    }
}

#[test]
fn loopback_tracing_yields_well_formed_tail_sampled_trees() {
    // Overlapped remote split on a fast simulated link, and a zero tail
    // threshold so every finished touch is tail-sampled.
    let split = RemoteSplitConfig::default()
        .with_local_min_level(11)
        .with_network(300, 10_000);
    let config = KernelConfig::default()
        .with_sample_levels(12)
        .with_remote_split(Some(split))
        .with_trace_tail_threshold_micros(0)
        .with_trace_retained_capacity(128);
    let catalog = Arc::new(SharedCatalog::new(config));
    let object = catalog
        .load_column("col", (0..60_000).collect(), SizeCm::new(2.0, 10.0))
        .unwrap();
    let table = Table::from_columns(
        "t",
        vec![
            Column::from_i64("id", (0..10_000).collect()),
            Column::from_f64("v", (0..10_000).map(|i| i as f64).collect()),
        ],
    )
    .unwrap();
    let tid = catalog.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
    let view = catalog.data(object).unwrap().base_view().clone();

    let server = NetServer::serve(
        ServerConfig::with_workers(4)
            .with_catalog(Arc::clone(&catalog))
            .with_listen_addr("127.0.0.1:0"),
    )
    .unwrap();
    let client = TcpClient::new(server.local_addr().to_string());

    // Live catalog churn while the explorers run.
    let done = Arc::new(AtomicBool::new(false));
    let churn = {
        let catalog = Arc::clone(&catalog);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                let cid = catalog
                    .drag_column_out(tid, "v", SizeCm::new(2.0, 10.0))
                    .unwrap();
                catalog.drag_column_into(tid, cid).unwrap();
            }
        })
    };

    // 16 concurrent TCP sessions, each stamping its own trace ids.
    let explorers: Vec<_> = (0..16)
        .map(|_| {
            let client = client.clone();
            let view = view.clone();
            std::thread::spawn(move || {
                let mut session = client.open_session().unwrap();
                assert_eq!(session.protocol_version(), dbtouch::net::PROTOCOL_VERSION);
                for _ in 0..3 {
                    session
                        .run_trace(object, GestureSynthesizer::new(60.0).slide_down(&view, 0.4))
                        .unwrap();
                }
                let report = session.snapshot().unwrap();
                assert!(report.errors.is_empty(), "{:?}", report.errors);
                let stamped: Vec<u64> = session.stamped_trace_ids().to_vec();
                session.close().unwrap();
                stamped
            })
        })
        .collect();
    let stamped: HashSet<u64> = explorers
        .into_iter()
        .flat_map(|h| h.join().expect("explorer thread"))
        .collect();
    done.store(true, Ordering::Relaxed);
    churn.join().expect("churn thread");
    assert_eq!(stamped.len(), 48, "one client-minted id per trace");
    assert!(stamped.iter().all(|t| t & CLIENT_ID_BIT != 0));

    // Every retained tree is tail-sampled (threshold 0), structurally sound,
    // decomposes the touch into queue-wait and service, and carries the id
    // the client stamped on the wire.
    let snap = server.metrics_snapshot();
    assert!(
        !snap.traces().is_empty(),
        "tail sampler retained span trees"
    );
    assert!(snap.traces().iter().any(|t| t.tail_sampled));
    for tree in snap.traces() {
        assert_tree_well_formed(tree);
        assert!(
            tree.trace & CLIENT_ID_BIT != 0 && stamped.contains(&tree.trace),
            "trace {} was stamped client-side",
            tree.trace
        );
        let names: Vec<&str> = tree.spans.iter().map(|s| s.name).collect();
        for expected in ["touch", "decode", "queue_wait", "service"] {
            assert!(names.contains(&expected), "{expected} span in {names:?}");
        }
    }
    assert!(snap.scalar("obs.traces_tail_sampled").unwrap() >= 1);

    // The Perfetto export travels over the wire and parses: one complete
    // event per span, trace ids preserved in the args.
    let exported = client.dump_traces().unwrap();
    let events = exported
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let span_count: usize = snap.traces().iter().map(|t| t.spans.len()).sum();
    assert!(events.len() >= span_count, "≥1 event per retained span");
    assert!(events
        .iter()
        .all(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")));

    // Prometheus-style text exposition also crosses the wire.
    let text = client.metrics_text().unwrap();
    assert!(text.contains("net.accepted"), "text exposition: {text}");
    assert!(text.contains("obs.traces_finished"));

    server.shutdown();
}

#[test]
fn digests_are_bit_identical_with_tracing_on_and_off() {
    let scenario = Scenario::sky_survey(30_000, 17);
    let mut digests = Vec::new();
    for tracing in [false, true] {
        let (catalog, object) =
            scenario_catalog(&scenario, KernelConfig::default().with_tracing(tracing)).unwrap();
        let plans = plan_hot_object(&catalog, object, 4, 2, 7).unwrap();
        let run = run_concurrent(&catalog, object, &plans, ServerConfig::default()).unwrap();
        assert!(run.errors().is_empty(), "{:?}", run.errors());
        digests.push(run.digests());
    }
    assert_eq!(
        digests[0], digests[1],
        "tracing observes, it must never steer results"
    );
}
