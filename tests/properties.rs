//! Property-based tests over the core invariants of the reproduction:
//! touch→tuple mapping, sample hierarchies, running aggregates, joins, layout
//! rotation, the gesture synthesizer, and the epoch-versioned catalog's
//! live-restructure atomicity.

use dbtouch::core::mapping::TouchMapper;
use dbtouch::core::operators::aggregate::{AggregateKind, RunningAggregate};
use dbtouch::core::operators::join::{BlockingHashJoin, JoinSide, SymmetricHashJoin};
use dbtouch::gesture::view::View;
use dbtouch::prelude::*;
use dbtouch::server::{digest_outcomes, TraceOutcome};
use dbtouch::storage::column::Column as StorageColumn;
use dbtouch::storage::layout::Layout;
use dbtouch::storage::matrix::Matrix;
use dbtouch::storage::rotation::RotationTask;
use dbtouch::storage::sample::SampleHierarchy;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Rule-of-Three mapping is monotone in the touch location and always
    /// within bounds, for any object geometry and tuple count.
    #[test]
    fn touch_mapping_is_monotone_and_bounded(
        tuples in 1u64..5_000_000,
        height in 1.0f64..40.0,
        samples in 2usize..40,
    ) {
        let view = View::for_column("c", tuples, SizeCm::new(2.0, height)).unwrap();
        let mut last = 0u64;
        for i in 0..samples {
            let y = height * i as f64 / (samples - 1) as f64;
            let row = TouchMapper::row_for_touch(&view, PointCm::new(1.0, y))
                .unwrap()
                .unwrap();
            prop_assert!(row.0 < tuples);
            prop_assert!(row.0 >= last);
            last = row.0;
        }
        // The last touch addresses the last tuple.
        prop_assert_eq!(last, tuples - 1);
    }

    /// Rotating a view never changes which tuple a given fraction of the object
    /// addresses (Section 2.4).
    #[test]
    fn rotation_preserves_touch_mapping(
        tuples in 1u64..1_000_000,
        fraction in 0.0f64..1.0,
    ) {
        let view = View::for_column("c", tuples, SizeCm::new(2.0, 10.0)).unwrap();
        let rotated = view.rotated();
        let before = TouchMapper::row_for_touch(&view, PointCm::new(1.0, 10.0 * fraction)).unwrap();
        let after = TouchMapper::row_for_touch(&rotated, PointCm::new(10.0 * fraction, 1.0)).unwrap();
        prop_assert_eq!(before, after);
    }

    /// Every sample level contains only values present in the base data, level
    /// sizes shrink geometrically, and row mapping stays within bounds.
    #[test]
    fn sample_hierarchy_is_consistent(
        len in 1u64..20_000,
        levels in 1u8..10,
        probe in 0u64..20_000,
    ) {
        let base: Vec<i64> = (0..len as i64).map(|i| i * 3 + 1).collect();
        let hierarchy = SampleHierarchy::build(StorageColumn::from_i64("c", base.clone()), levels).unwrap();
        for level in 0..hierarchy.level_count() {
            let col = hierarchy.level(level).unwrap();
            let stride = hierarchy.stride(level);
            prop_assert_eq!(col.len(), len.div_ceil(stride));
            // spot-check values come from the base data at the expected stride
            for i in (0..col.len()).step_by(7) {
                let v = col.get(RowId(i)).unwrap().as_i64().unwrap();
                prop_assert_eq!(v, base[(i * stride) as usize]);
            }
        }
        let probe = probe % len;
        for level in 0..hierarchy.level_count() {
            let mapped = hierarchy.map_row(RowId(probe), level).unwrap();
            prop_assert!(mapped.0 < hierarchy.level(level).unwrap().len());
            let back = hierarchy.unmap_row(mapped, level).unwrap();
            prop_assert!(back.distance(RowId(probe)) < hierarchy.stride(level));
        }
    }

    /// A running aggregate fed value-by-value matches a batch recomputation
    /// over the same values.
    #[test]
    fn running_aggregate_matches_batch(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        for kind in AggregateKind::ALL {
            let mut agg = RunningAggregate::new(kind);
            for &v in &values {
                agg.update(v);
            }
            let expected = match kind {
                AggregateKind::Count => values.len() as f64,
                AggregateKind::Sum => values.iter().sum(),
                AggregateKind::Avg => values.iter().sum::<f64>() / values.len() as f64,
                AggregateKind::Min => values.iter().cloned().fold(f64::MAX, f64::min),
                AggregateKind::Max => values.iter().cloned().fold(f64::MIN, f64::max),
            };
            let got = agg.value().unwrap();
            prop_assert!((got - expected).abs() <= 1e-6 * expected.abs().max(1.0),
                "{kind:?}: got {got}, expected {expected}");
        }
    }

    /// The non-blocking symmetric hash join produces exactly the same matched
    /// pairs as the classical blocking hash join, for any inputs and any
    /// interleaving of the two sides.
    #[test]
    fn symmetric_join_equals_blocking_join(
        left in prop::collection::vec(0i64..30, 0..60),
        right in prop::collection::vec(0i64..30, 0..60),
        interleave_seed in 0u64..1000,
    ) {
        let mut symmetric = SymmetricHashJoin::new();
        let mut sym_pairs = Vec::new();
        // Deterministic pseudo-random interleaving of the two sides.
        let mut li = 0usize;
        let mut ri = 0usize;
        let mut state = interleave_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        while li < left.len() || ri < right.len() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let take_left = ri >= right.len() || (li < left.len() && state % 2 == 0);
            if take_left {
                sym_pairs.extend(symmetric.push(JoinSide::Left, RowId(li as u64), Value::Int(left[li])));
                li += 1;
            } else {
                sym_pairs.extend(symmetric.push(JoinSide::Right, RowId(ri as u64), Value::Int(right[ri])));
                ri += 1;
            }
        }

        let mut blocking = BlockingHashJoin::new();
        for (i, &k) in left.iter().enumerate() {
            blocking.build_row(RowId(i as u64), Value::Int(k));
        }
        blocking.finish_build();
        let mut blk_pairs = Vec::new();
        for (i, &k) in right.iter().enumerate() {
            blk_pairs.extend(blocking.probe(RowId(i as u64), Value::Int(k)));
        }

        let normalize = |pairs: Vec<dbtouch::core::operators::join::JoinMatch>| {
            let mut v: Vec<(u64, u64)> = pairs.iter().map(|m| (m.left_row.0, m.right_row.0)).collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(normalize(sym_pairs), normalize(blk_pairs));
    }

    /// Rotating a matrix to the other layout and back preserves every cell.
    #[test]
    fn rotation_round_trips(
        rows in 1u64..500,
        chunk in 1u64..600,
    ) {
        let table = Table::from_columns(
            "t",
            vec![
                StorageColumn::from_i64("a", (0..rows as i64).collect()),
                StorageColumn::from_f64("b", (0..rows).map(|i| i as f64 / 3.0).collect()),
            ],
        )
        .unwrap();
        let original = Matrix::from_table(table);
        let once = RotationTask::new(original.clone(), chunk).finish().unwrap();
        prop_assert_eq!(once.layout(), Layout::RowMajor);
        let twice = RotationTask::new(once, chunk).finish().unwrap();
        prop_assert_eq!(twice.layout(), Layout::ColumnMajor);
        for probe in [0, rows / 2, rows - 1] {
            prop_assert_eq!(
                twice.get_row(RowId(probe)).unwrap(),
                original.get_row(RowId(probe)).unwrap()
            );
        }
    }

    /// Synthesized slides are always valid traces whose sample count scales
    /// with duration and sampling rate.
    #[test]
    fn synthesized_slides_are_valid(
        duration in 0.2f64..5.0,
        rate in 20.0f64..120.0,
        height in 2.0f64..30.0,
    ) {
        let view = View::for_column("c", 1_000_000, SizeCm::new(2.0, height)).unwrap();
        let trace = GestureSynthesizer::new(rate).slide_down(&view, duration);
        prop_assert!(trace.validate().is_ok());
        let expected = (duration * rate) as i64;
        prop_assert!((trace.len() as i64 - expected).abs() <= expected / 5 + 4,
            "trace has {} samples, expected ~{expected}", trace.len());
        // the slide covers the object end to end
        let last = trace.events.last().unwrap().location;
        prop_assert!((last.y - height).abs() < 1e-6);
    }

    /// Running a session never reports more entries than touches, and the
    /// per-touch accounting stays internally consistent.
    #[test]
    fn session_accounting_invariants(
        rows in 1_000i64..200_000,
        duration in 0.3f64..2.0,
    ) {
        let mut kernel = Kernel::new(KernelConfig::default());
        let id = kernel
            .load_column("c", (0..rows).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        kernel
            .set_action(
                id,
                dbtouch::core::kernel::TouchAction::Summary {
                    half_window: Some(5),
                    kind: AggregateKind::Avg,
                },
            )
            .unwrap();
        let view = kernel.view(id).unwrap();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, duration);
        let outcome = kernel.run_trace(id, &trace).unwrap();
        let s = &outcome.stats;
        prop_assert_eq!(s.touches as usize, trace.len());
        prop_assert!(s.entries_returned <= s.touches);
        prop_assert!(s.entries_returned as usize == outcome.results.len());
        prop_assert!(s.rows_touched >= s.entries_returned);
        prop_assert_eq!(s.bytes_touched, s.rows_touched * 8);
        prop_assert!(s.duplicate_touches + s.entries_returned <= s.touches);
    }
}

proptest! {
    // Each case spawns a server plus a restructure thread; keep the case
    // count modest — the property quantifies over scheduling anyway, so the
    // interesting variation comes from the interleaving, not the inputs.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Epoch-snapshot semantics: a gesture trace racing one catalog
    /// restructure observes *exactly* the pre-restructure object or exactly
    /// the post-restructure object — never a hybrid. Every session's digest
    /// must equal one of the two sequential baselines, whatever the
    /// interleaving.
    #[test]
    fn restructure_interleaving_is_atomic(
        rows in 2_000i64..20_000,
        sessions in 1usize..5,
        spin in 0u32..50_000,
    ) {
        let build = || {
            let catalog = Arc::new(SharedCatalog::new(KernelConfig::default()));
            let table = Table::from_columns(
                "t",
                vec![
                    StorageColumn::from_i64("id", (0..rows).collect()),
                    StorageColumn::from_f64("price", (0..rows).map(|i| i as f64 / 2.0).collect()),
                    StorageColumn::from_i64("qty", (0..rows).map(|i| i % 7).collect()),
                ],
            )
            .unwrap();
            let tid = catalog.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
            (catalog, tid)
        };

        // Sequential baselines on a separate catalog with identical data:
        // the all-before digest and (after dragging "qty" out) the all-after
        // digest. Tuple results include the whole row, so the two differ.
        let (baseline_catalog, baseline_tid) = build();
        let view = baseline_catalog.data(baseline_tid).unwrap().base_view().clone();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 0.4);
        let digest_now = |catalog: &Arc<SharedCatalog>, tid| {
            let mut kernel = Kernel::from_catalog(Arc::clone(catalog));
            kernel.set_action(tid, TouchAction::Tuple).unwrap();
            let outcome = kernel.run_trace(tid, &trace).unwrap();
            digest_outcomes([TraceOutcome { object: tid, outcome }].iter())
        };
        let before = digest_now(&baseline_catalog, baseline_tid);
        baseline_catalog
            .drag_column_out(baseline_tid, "qty", SizeCm::new(2.0, 10.0))
            .unwrap();
        let after = digest_now(&baseline_catalog, baseline_tid);
        prop_assert_ne!(before, after);

        // Live: K sessions each run the one trace concurrently with one
        // restructure landing at an arbitrary point in the schedule.
        let (catalog, tid) = build();
        let server = ExplorationServer::serve(ServerConfig::with_workers(2).with_catalog(Arc::clone(&catalog))).unwrap();
        let mutator = {
            let catalog = Arc::clone(&catalog);
            std::thread::spawn(move || {
                for _ in 0..spin {
                    std::hint::spin_loop();
                }
                catalog
                    .drag_column_out(tid, "qty", SizeCm::new(2.0, 10.0))
                    .unwrap();
            })
        };
        let drivers: Vec<_> = (0..sessions)
            .map(|_| {
                let session = server.open_session();
                let trace = trace.clone();
                std::thread::spawn(move || -> SessionReport {
                    session.set_action(tid, TouchAction::Tuple).unwrap();
                    session.run_trace(tid, trace).unwrap();
                    session.close().unwrap()
                })
            })
            .collect();
        let reports: Vec<SessionReport> = drivers.into_iter().map(|d| d.join().unwrap()).collect();
        mutator.join().unwrap();
        server.shutdown();

        for report in &reports {
            prop_assert!(report.errors.is_empty(), "errors: {:?}", report.errors);
            let digest = report.result_digest();
            prop_assert!(
                digest == before || digest == after,
                "hybrid result observed: digest {digest} is neither the \
                 all-before ({before}) nor the all-after ({after}) order"
            );
            // A session whose state was rebuilt at a gesture boundary must
            // have produced the post-restructure answer (a fresh checkout
            // after the restructure also yields it, with no rebuild seen).
            if report.restructures_seen > 0 {
                prop_assert_eq!(digest, after);
            }
        }
    }

    /// Remote refinements racing a live restructure: whatever the
    /// interleaving of in-flight refinements with `drag_column_out` /
    /// `group_into_table`, every refinement either applies cleanly to the
    /// pre-restructure trace it belongs to or is dropped (stale build) —
    /// and a closed (drained) session's digest always equals one of the two
    /// all-local sequential replays. Refinements are identity-stamped
    /// against the immutable build their trace ran on, so none may be
    /// dropped here and none may straddle builds.
    #[test]
    fn refinement_restructure_interleaving_is_clean_or_dropped(
        rows in 60_000i64..150_000,
        sessions in 1usize..4,
        spin in 0u32..200_000,
        group_flag in 0u8..2,
    ) {
        use dbtouch::types::RemoteSplitConfig;

        let group_too = group_flag == 1;
        // Overlapped split on a fast link; the all-local baselines use the
        // same sample depth so granularity decisions are identical.
        let split = RemoteSplitConfig::default()
            .with_local_min_level(11)
            .with_network(300, 10_000);
        let remote_config = KernelConfig::default()
            .with_sample_levels(12)
            .with_remote_split(Some(split));
        let local_config = KernelConfig::default().with_sample_levels(12);
        let build = |config: KernelConfig| {
            let catalog = Arc::new(SharedCatalog::new(config));
            let table = Table::from_columns(
                "t",
                vec![
                    StorageColumn::from_i64("id", (0..rows).collect()),
                    StorageColumn::from_f64("price", (0..rows).map(|i| i as f64 / 2.0).collect()),
                    StorageColumn::from_i64("qty", (0..rows).map(|i| i % 7).collect()),
                ],
            )
            .unwrap();
            let tid = catalog.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
            (catalog, tid)
        };
        let action = TouchAction::Summary {
            half_window: Some(5),
            kind: AggregateKind::Avg,
        };

        // A slow slide: fine sample levels, i.e. remote traffic.
        let (baseline_catalog, baseline_tid) = build(local_config);
        let view = baseline_catalog.data(baseline_tid).unwrap().base_view().clone();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 2.8);
        let digest_now = |catalog: &Arc<SharedCatalog>, tid| {
            let mut kernel = Kernel::from_catalog(Arc::clone(catalog));
            kernel.set_action(tid, action.clone()).unwrap();
            let outcome = kernel.run_trace(tid, &trace).unwrap();
            digest_outcomes([TraceOutcome { object: tid, outcome }].iter())
        };
        let before = digest_now(&baseline_catalog, baseline_tid);
        baseline_catalog
            .drag_column_out(baseline_tid, "price", SizeCm::new(2.0, 10.0))
            .unwrap();
        let after = digest_now(&baseline_catalog, baseline_tid);
        prop_assert_ne!(before, after);

        // Live: K overlapped sessions race one restructure (plus, sometimes,
        // a group_into_table creating a fresh object mid-flight).
        let (catalog, tid) = build(remote_config);
        let server = ExplorationServer::serve(ServerConfig::with_workers(2).with_catalog(Arc::clone(&catalog))).unwrap();
        let mutator = {
            let catalog = Arc::clone(&catalog);
            std::thread::spawn(move || {
                for _ in 0..spin {
                    std::hint::spin_loop();
                }
                let cid = catalog
                    .drag_column_out(tid, "price", SizeCm::new(2.0, 10.0))
                    .unwrap();
                if group_too {
                    catalog
                        .group_into_table("grouped", &[cid], SizeCm::new(2.0, 10.0))
                        .unwrap();
                }
            })
        };
        let drivers: Vec<_> = (0..sessions)
            .map(|_| {
                let session = server.open_session();
                let trace = trace.clone();
                let action = action.clone();
                std::thread::spawn(move || -> SessionReport {
                    session.set_action(tid, action).unwrap();
                    session.run_trace(tid, trace).unwrap();
                    session.close().unwrap()
                })
            })
            .collect();
        let reports: Vec<SessionReport> = drivers.into_iter().map(|d| d.join().unwrap()).collect();
        mutator.join().unwrap();
        server.shutdown();

        for report in &reports {
            prop_assert!(report.errors.is_empty(), "errors: {:?}", report.errors);
            // close() is a drain barrier: nothing may still be in flight.
            prop_assert_eq!(report.pending_refinements(), 0);
            // Refinements bind to the immutable build their trace ran on, so
            // every one applies cleanly — the restructure can never produce a
            // cross-build application, and therefore no drops either.
            prop_assert_eq!(report.total_refinements_dropped(), 0);
            prop_assert_eq!(
                report.total_refinements_applied(),
                report.total_remote().progressive_requests
            );
            let digest = report.result_digest();
            prop_assert!(
                digest == before || digest == after,
                "hybrid result observed: drained digest {digest} is neither the \
                 all-before ({before}) nor the all-after ({after}) replay"
            );
            if report.restructures_seen > 0 {
                prop_assert_eq!(digest, after);
            }
        }
    }
}

// The scan-knob grid spawns a server per swept point; a few cases suffice —
// the property quantifies over the grid itself, churn interleavings and the
// remote executor's scheduling, so each case already covers a lot of ground.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The segment kernel's promise: digests, `final_aggregate` bits and
    /// `group_aggregates` are identical across `scan_parallelism ∈ {1, 2, 8}`
    /// × `segment_rows ∈ {small, large, unaligned-to-len}` — with the remote
    /// overlap executor active, and (membership in the sequential baselines)
    /// under live `drag_column_out`/`drag_column_into` churn.
    #[test]
    fn scan_knob_grid_is_digest_invariant_under_churn_and_remote(
        rows in 60_000i64..120_000,
        duration in 2.0f64..2.8,
        spin in 0u32..150_000,
    ) {
        use dbtouch::types::RemoteSplitConfig;

        let config = |parallelism: usize, segment_rows: u64, remote: bool| {
            let split = remote.then(|| {
                RemoteSplitConfig::default()
                    .with_local_min_level(11)
                    .with_network(300, 10_000)
            });
            KernelConfig::default()
                .with_sample_levels(12)
                .with_scan_parallelism(parallelism)
                .with_segment_rows(segment_rows)
                .with_remote_split(split)
        };
        let build = |c: KernelConfig| {
            let catalog = Arc::new(SharedCatalog::new(c));
            let table = Table::from_columns(
                "t",
                vec![
                    StorageColumn::from_i64("id", (0..rows).collect()),
                    StorageColumn::from_f64("price", (0..rows).map(|i| i as f64 / 2.0).collect()),
                    StorageColumn::from_i64("qty", (0..rows).map(|i| i % 7).collect()),
                ],
            )
            .unwrap();
            let tid = catalog.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
            (catalog, tid)
        };
        // Wide windows over the integer `id` attribute: every touch
        // decomposes into segment morsels at small segment_rows settings.
        let action = TouchAction::Summary {
            half_window: Some(20_000),
            kind: AggregateKind::Avg,
        };
        let group_action = TouchAction::GroupBy {
            group_attribute: 2,
            value_attribute: 0,
            kind: AggregateKind::Sum,
        };

        let (baseline_catalog, baseline_tid) = build(config(1, 65_536, false));
        let view = baseline_catalog.data(baseline_tid).unwrap().base_view().clone();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, duration);
        let run_local = |catalog: &Arc<SharedCatalog>, tid, action: &TouchAction| {
            let mut kernel = Kernel::from_catalog(Arc::clone(catalog));
            kernel.set_action(tid, action.clone()).unwrap();
            let outcome = kernel.run_trace(tid, &trace).unwrap();
            let agg = outcome.final_aggregate.map(f64::to_bits);
            let groups = outcome.final_groups.clone();
            (digest_outcomes([TraceOutcome { object: tid, outcome }].iter()), agg, groups)
        };
        // Sequential baselines at scan_parallelism = 1: the untouched table,
        // after dragging `price` out, and after merging it back.
        let (d0, agg0, _) = run_local(&baseline_catalog, baseline_tid, &action);
        let (_, _, groups0) = run_local(&baseline_catalog, baseline_tid, &group_action);
        let qid = baseline_catalog
            .drag_column_out(baseline_tid, "price", SizeCm::new(2.0, 10.0))
            .unwrap();
        let (d1, _, _) = run_local(&baseline_catalog, baseline_tid, &action);
        baseline_catalog.drag_column_into(baseline_tid, qid).unwrap();
        let (d2, _, _) = run_local(&baseline_catalog, baseline_tid, &action);
        prop_assert_ne!(d0, d1);

        for &parallelism in &[1usize, 2, 8] {
            for &segment_rows in &[3_000u64, 65_536, 7_777] {
                // Static sweep, remote overlap executor active: the served
                // (drained) digest and aggregate bits must equal the
                // sequential all-local baseline exactly.
                let (catalog, tid) = build(config(parallelism, segment_rows, true));
                let server =
                    ExplorationServer::serve(ServerConfig::with_workers(2).with_catalog(Arc::clone(&catalog))).unwrap();
                let session = server.open_session();
                session.set_action(tid, action.clone()).unwrap();
                session.run_trace(tid, trace.clone()).unwrap();
                let report = session.close().unwrap();
                server.shutdown();
                prop_assert!(report.errors.is_empty(), "errors: {:?}", report.errors);
                prop_assert_eq!(report.pending_refinements(), 0);
                let outcome = &report.outcomes[0].outcome;
                prop_assert!(
                    outcome.final_aggregate.map(f64::to_bits) == agg0,
                    "final_aggregate drifted at parallelism={parallelism}, \
                     segment_rows={segment_rows}"
                );
                prop_assert!(
                    report.result_digest() == d0,
                    "digest drifted at parallelism={parallelism}, \
                     segment_rows={segment_rows}"
                );

                // Group-by rides the same session machinery; its per-group
                // sums must not depend on the scan knobs either.
                let (_, _, groups) = run_local(&catalog, tid, &group_action);
                prop_assert_eq!(&groups, &groups0);
            }
        }

        // Live churn at representative grid points: one mutator drags `price`
        // out and merges it back while the session's trace races it. The
        // epoch-snapshot guarantee must hold at any parallelism: the digest
        // is exactly one of the three sequential baselines, never a hybrid.
        for &(parallelism, segment_rows) in &[(2usize, 3_000u64), (8, 7_777), (2, 65_536)] {
            let (catalog, tid) = build(config(parallelism, segment_rows, true));
            let server =
                ExplorationServer::serve(ServerConfig::with_workers(2).with_catalog(Arc::clone(&catalog))).unwrap();
            let mutator = {
                let catalog = Arc::clone(&catalog);
                std::thread::spawn(move || {
                    for _ in 0..spin {
                        std::hint::spin_loop();
                    }
                    let qid = catalog
                        .drag_column_out(tid, "price", SizeCm::new(2.0, 10.0))
                        .unwrap();
                    catalog.drag_column_into(tid, qid).unwrap();
                })
            };
            let session = server.open_session();
            session.set_action(tid, action.clone()).unwrap();
            session.run_trace(tid, trace.clone()).unwrap();
            let report = session.close().unwrap();
            mutator.join().unwrap();
            server.shutdown();
            prop_assert!(report.errors.is_empty(), "errors: {:?}", report.errors);
            let digest = report.result_digest();
            prop_assert!(
                digest == d0 || digest == d1 || digest == d2,
                "hybrid result under churn at parallelism={parallelism}, \
                 segment_rows={segment_rows}: digest {digest} matches no baseline \
                 ({d0}, {d1}, {d2})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Page-span encoding is lossless and self-describing on adversarial
    /// shapes: empty spans, one long run, strict alternation, bounded
    /// cardinality and full-entropy data all decode back to the exact input
    /// bytes, per-row offsets address the same values, and the packed form
    /// concatenates back to the verbatim column.
    #[test]
    fn span_encodings_round_trip_adversarial_data(
        shape in prop_oneof![
            // empty
            Just((0usize, 0u8)),
            // single run / alternating / short runs / high cardinality
            (1usize..3_000).prop_map(|n| (n, 1u8)),
            (1usize..3_000).prop_map(|n| (n, 2u8)),
            (1usize..3_000).prop_map(|n| (n, 3u8)),
            (1usize..3_000).prop_map(|n| (n, 4u8)),
        ],
        a in -1_000_000i64..1_000_000,
        b in -1_000_000i64..1_000_000,
        cap in 1u16..=256,
    ) {
        use dbtouch::storage::encoding::{
            decode_span, encode_span, pack_row_bytes, span_value_offset, span_view,
            EncodingPolicy,
        };

        let (n, kind): (usize, u8) = shape;
        let values: Vec<i64> = match kind {
            0 => Vec::new(),
            1 => vec![a; n],
            2 => (0..n).map(|i| if i % 2 == 0 { a } else { b }).collect(),
            3 => (0..n as i64).map(|i| (i / 37) % 11).collect(),
            _ => (0..n as i64)
                .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15u64 as i64).wrapping_add(a))
                .collect(),
        };
        let raw: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let policy = EncodingPolicy { enabled: true, dict_max_cardinality: cap };

        // Unbounded encode always succeeds (Raw is always a candidate) and
        // round-trips bit-exactly, wholesale and per row.
        let (enc, payload) = encode_span(&raw, 8, &policy, usize::MAX).unwrap();
        let decoded = decode_span(&payload, 8).unwrap();
        prop_assert!(decoded == raw, "decode mismatch through {enc:?}");
        let (_, rows) = span_view(&payload, 8).unwrap();
        prop_assert_eq!(rows as usize, values.len());
        for idx in (0..rows).step_by(7) {
            let at = span_value_offset(&payload, 8, idx).unwrap();
            let i = idx as usize;
            prop_assert_eq!(&payload[at..at + 8], &raw[i * 8..(i + 1) * 8]);
        }
        prop_assert!(span_value_offset(&payload, 8, rows).is_err());

        // Packing under a real page budget: spans re-concatenate to the
        // verbatim column and the claimed geometry is internally consistent.
        if let Some(packed) = pack_row_bytes(&raw, 8, 29, 232, &policy) {
            prop_assert_eq!(packed.payloads.len() as u64,
                (values.len() as u64).div_ceil(packed.rows_per_page));
            prop_assert_eq!(packed.rows_per_page % 29, 0);
            let mut rebuilt = Vec::with_capacity(raw.len());
            let mut payload_bytes = 0u64;
            for payload in &packed.payloads {
                prop_assert!(payload.len() <= 232, "span overflows the page");
                payload_bytes += payload.len() as u64;
                rebuilt.extend(decode_span(payload, 8).unwrap());
            }
            prop_assert_eq!(&rebuilt, &raw);
            prop_assert_eq!(payload_bytes, packed.payload_bytes);
        }
    }
}

// Encoded-catalog digest invariance persists to (and reopens from) a real
// on-disk store per grid point; a few cases cover the interesting ground.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// On-disk representation is invisible to results: for RLE-shaped,
    /// dict-shaped and incompressible columns, a persisted-then-reopened
    /// catalog replays bit-identical digests across encoding {on, off} ×
    /// `scan_parallelism` {1, 8} — while live loads append (and pack) pages
    /// through the same attached store mid-replay.
    #[test]
    fn encoded_catalog_digests_match_raw_across_parallelism_under_churn(
        rows in 40_000i64..80_000,
        duration in 0.6f64..1.2,
        case in 0u32..u32::MAX,
    ) {
        let datasets: Vec<(&str, Vec<i64>)> = vec![
            ("runs", (0..rows).map(|i| (i / 777) % 5).collect()),
            ("codes", (0..rows).map(|i| i.wrapping_mul(2654435761) % 13).collect()),
            ("unique", (0..rows).map(|i| i.wrapping_mul(2654435761).wrapping_add(17)).collect()),
        ];
        let action = TouchAction::Summary {
            half_window: Some(10_000),
            kind: AggregateKind::Sum,
        };
        let digest_object = |catalog: &Arc<SharedCatalog>, name: &str| -> u64 {
            let id = catalog.object_id(name).unwrap();
            let data = catalog.data(id).unwrap();
            let trace = GestureSynthesizer::new(60.0).slide_down(data.base_view(), duration);
            let mut kernel = Kernel::from_catalog(Arc::clone(catalog));
            kernel.set_action(id, action.clone()).unwrap();
            let outcome = kernel.run_trace(id, &trace).unwrap();
            digest_outcomes([TraceOutcome { object: id, outcome }].iter())
        };

        // In-memory baseline: encoding only exists on disk, so these digests
        // are the ground truth every on-disk configuration must reproduce.
        let baseline = Arc::new(SharedCatalog::new(KernelConfig::default()));
        for (name, values) in &datasets {
            baseline
                .load_column(*name, values.clone(), SizeCm::new(2.0, 10.0))
                .unwrap();
        }
        let expected: Vec<u64> = datasets
            .iter()
            .map(|(name, _)| digest_object(&baseline, name))
            .collect();

        for encoding_on in [true, false] {
            for parallelism in [1usize, 8] {
                let config = KernelConfig::default()
                    .with_encoding(encoding_on)
                    .with_scan_parallelism(parallelism);
                let dir = std::env::temp_dir().join(format!(
                    "dbtouch-enc-props-{}-{case:08x}-{encoding_on}-{parallelism}",
                    std::process::id()
                ));
                let _ = std::fs::remove_dir_all(&dir);
                {
                    let writer =
                        Arc::new(SharedCatalog::open(&dir, config.clone()).unwrap());
                    for (name, values) in &datasets {
                        writer
                            .load_column(*name, values.clone(), SizeCm::new(2.0, 10.0))
                            .unwrap();
                    }
                }
                let reopened = Arc::new(SharedCatalog::open(&dir, config).unwrap());
                // Churn: concurrent loads persist (and pack) new columns
                // through the same pager the replays are faulting from.
                let churn = {
                    let catalog = Arc::clone(&reopened);
                    let churn_rows = rows / 4;
                    std::thread::spawn(move || {
                        for k in 0..3i64 {
                            catalog
                                .load_column(
                                    format!("churn_{k}"),
                                    (0..churn_rows).map(|i| (i / 501) % 3 + k).collect(),
                                    SizeCm::new(2.0, 10.0),
                                )
                                .unwrap();
                        }
                    })
                };
                for ((name, _), expected) in datasets.iter().zip(&expected) {
                    let actual = digest_object(&reopened, name);
                    prop_assert!(
                        actual == *expected,
                        "digest diverged for {name} at encoding={encoding_on}, \
                         parallelism={parallelism}"
                    );
                }
                churn.join().unwrap();
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

// Persistence properties run fewer cases: each one persists to (and reopens
// from) a real on-disk store.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `persist_to` → `open` is digest-transparent: any seeded trace over any
    /// object of the reopened, paged-backed catalog produces bit-identical
    /// results to the in-memory catalog it was persisted from — including
    /// catalogs whose object table carries tombstones and a
    /// `drag_column_into`-rebuilt table.
    #[test]
    fn persisted_catalog_replays_identical_digests(
        rows in 512i64..4_000,
        merge in 0u32..2,
        duration in 0.2f64..0.8,
        case in 0u32..u32::MAX,
    ) {
        let merge_back = merge == 1;
        let dir = std::env::temp_dir().join(format!(
            "dbtouch-props-{}-{case:08x}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let catalog = Arc::new(SharedCatalog::new(KernelConfig::default()));
        let table = Table::from_columns(
            "t",
            vec![
                StorageColumn::from_i64("id", (0..rows).collect()),
                StorageColumn::from_f64("price", (0..rows).map(|i| i as f64 / 2.0).collect()),
                StorageColumn::from_i64("qty", (0..rows).map(|i| i % 7).collect()),
            ],
        )
        .unwrap();
        let tid = catalog.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        catalog
            .load_column("solo", (0..rows).map(|i| i * 3).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        // Restructure history: a dragged-out column, optionally merged back
        // (which rebuilds the table AND leaves a permanent tombstone).
        let qid = catalog.drag_column_out(tid, "qty", SizeCm::new(2.0, 10.0)).unwrap();
        if merge_back {
            catalog.drag_column_into(tid, qid).unwrap();
        }

        let digest_object = |catalog: &Arc<SharedCatalog>, name: &str| -> u64 {
            let id = catalog.object_id(name).unwrap();
            let data = catalog.data(id).unwrap();
            let trace = GestureSynthesizer::new(60.0).slide_down(data.base_view(), duration);
            let action = if data.schema().len() > 1 {
                TouchAction::Tuple
            } else {
                TouchAction::Summary { half_window: Some(9), kind: AggregateKind::Avg }
            };
            let mut kernel = Kernel::from_catalog(Arc::clone(catalog));
            kernel.set_action(id, action).unwrap();
            let outcome = kernel.run_trace(id, &trace).unwrap();
            digest_outcomes([TraceOutcome { object: id, outcome }].iter())
        };

        let names = catalog.names();
        let expected: Vec<u64> = names.iter().map(|n| digest_object(&catalog, n)).collect();
        let epoch = catalog.persist_to(&dir).unwrap();

        let reopened = Arc::new(SharedCatalog::open(&dir, KernelConfig::default()).unwrap());
        prop_assert_eq!(reopened.epoch(), epoch);
        prop_assert_eq!(reopened.names(), names.clone());
        // Tombstones must survive the round trip.
        prop_assert_eq!(reopened.snapshot().slot_count(), catalog.snapshot().slot_count());
        if merge_back {
            prop_assert!(reopened.checkout(qid).is_err(), "tombstoned id must stay dead");
        }
        for (name, expected) in names.iter().zip(expected) {
            let actual = digest_object(&reopened, name);
            prop_assert!(actual == expected, "digest diverged for {name}");
        }

        let _ = std::fs::remove_dir_all(&dir);
    }
}
