//! Cross-crate integration tests: full gesture-trace → kernel → result flows,
//! layout gestures, the exploration scenarios and the remote-processing split,
//! all at a scale small enough for CI.

use dbtouch::core::kernel::TouchAction;
use dbtouch::core::operators::aggregate::AggregateKind;
use dbtouch::core::operators::filter::{CompareOp, Predicate};
use dbtouch::core::remote::{NetworkModel, RemoteStore, ServedFrom};
use dbtouch::gesture::synthesizer::SlideSegment;
use dbtouch::prelude::*;
use dbtouch::storage::column::Column as StorageColumn;
use dbtouch::storage::sample::SampleHierarchy;
use dbtouch::workload::explorer::{DbTouchExplorer, SqlExplorer};
use dbtouch::workload::scenarios::Scenario;

fn loaded_kernel(rows: i64) -> (Kernel, dbtouch::core::kernel::ObjectId) {
    let mut kernel = Kernel::new(KernelConfig::default());
    let id = kernel
        .load_column("col", (0..rows).collect(), SizeCm::new(2.0, 10.0))
        .unwrap();
    (kernel, id)
}

#[test]
fn scan_slide_returns_values_in_touch_order() {
    let (mut kernel, id) = loaded_kernel(500_000);
    kernel.set_action(id, TouchAction::Scan).unwrap();
    let view = kernel.view(id).unwrap();
    let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.5);
    let outcome = kernel.run_trace(id, &trace).unwrap();
    assert!(outcome.stats.entries_returned > 50);
    let rows: Vec<u64> = outcome.results.results().iter().map(|r| r.row.0).collect();
    assert!(rows.windows(2).all(|w| w[0] < w[1]));
    // values equal the synthetic data at the touched rows
    for r in outcome.results.results() {
        assert_eq!(r.value().unwrap(), &Value::Int(r.row.0 as i64));
    }
}

#[test]
fn summary_slide_average_tracks_touched_region() {
    let (mut kernel, id) = loaded_kernel(1_000_000);
    kernel
        .set_action(
            id,
            TouchAction::Summary {
                half_window: Some(5),
                kind: AggregateKind::Avg,
            },
        )
        .unwrap();
    let view = kernel.view(id).unwrap();
    // slide only over the last quarter of the object
    let trace = GestureSynthesizer::new(60.0).slide_profile(
        &view,
        &[SlideSegment::movement(0.75, 1.0, 1.0)],
        Timestamp::ZERO,
    );
    let outcome = kernel.run_trace(id, &trace).unwrap();
    assert!(outcome.stats.entries_returned > 10);
    for r in outcome.results.results() {
        let v = r.value().unwrap().as_f64().unwrap();
        assert!(
            v >= 0.75 * 1_000_000.0 * 0.95,
            "summary {v} not from touched region"
        );
        assert!(r.position_fraction >= 0.74);
    }
}

#[test]
fn gesture_speed_controls_entries_and_granularity() {
    let (mut kernel, id) = loaded_kernel(2_000_000);
    kernel
        .set_action(
            id,
            TouchAction::Summary {
                half_window: Some(5),
                kind: AggregateKind::Avg,
            },
        )
        .unwrap();
    let view = kernel.view(id).unwrap();
    let mut synthesizer = GestureSynthesizer::new(60.0);
    let fast = kernel
        .run_trace(id, &synthesizer.slide_down(&view, 0.5))
        .unwrap();
    let slow = kernel
        .run_trace(id, &synthesizer.slide_down(&view, 4.0))
        .unwrap();
    assert!(slow.stats.entries_returned > 4 * fast.stats.entries_returned);
    // the faster slide is served from a coarser (or equal) sample level
    let max_level = |s: &dbtouch::core::session::SessionStats| {
        s.sample_level_usage.keys().copied().max().unwrap_or(0)
    };
    assert!(max_level(&fast.stats) >= max_level(&slow.stats));
}

#[test]
fn zoom_in_then_slide_returns_more_entries() {
    let (mut kernel, id) = loaded_kernel(2_000_000);
    kernel
        .set_action(
            id,
            TouchAction::Summary {
                half_window: Some(5),
                kind: AggregateKind::Avg,
            },
        )
        .unwrap();
    let mut synthesizer = GestureSynthesizer::new(60.0);
    let view = kernel.view(id).unwrap();
    // constant speed: the zoomed object takes proportionally longer to traverse
    let before = kernel
        .run_trace(id, &synthesizer.slide_down(&view, 1.0))
        .unwrap();
    let pinch = synthesizer.pinch(&view, 2.0, 0.4);
    kernel.run_trace(id, &pinch).unwrap();
    let zoomed_view = kernel.view(id).unwrap();
    assert!(zoomed_view.size().height > view.size().height * 1.5);
    let after = kernel
        .run_trace(id, &synthesizer.slide_down(&zoomed_view, 2.0))
        .unwrap();
    assert!(after.stats.entries_returned > before.stats.entries_returned * 3 / 2);
}

#[test]
fn filtered_aggregate_respects_predicate() {
    let (mut kernel, id) = loaded_kernel(100_000);
    kernel
        .set_action(
            id,
            TouchAction::FilteredAggregate {
                predicate: Predicate::compare(CompareOp::Ge, 50_000i64),
                kind: AggregateKind::Min,
            },
        )
        .unwrap();
    let view = kernel.view(id).unwrap();
    let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
    let outcome = kernel.run_trace(id, &trace).unwrap();
    // the minimum over passing values can never be below the predicate bound
    assert!(outcome.final_aggregate.unwrap() >= 50_000.0);
    assert!(outcome.results.len() < outcome.stats.touches as usize);
}

#[test]
fn rotate_gesture_flips_layout_and_data_survives() {
    let mut kernel = Kernel::new(KernelConfig::default());
    let table = Table::from_columns(
        "t",
        vec![
            StorageColumn::from_i64("id", (0..50_000).collect()),
            StorageColumn::from_f64("v", (0..50_000).map(|i| i as f64 * 0.5).collect()),
        ],
    )
    .unwrap();
    let id = kernel.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
    let mut synthesizer = GestureSynthesizer::new(60.0);
    let view = kernel.view(id).unwrap();
    kernel
        .run_trace(id, &synthesizer.rotate(&view, true, 0.5))
        .unwrap();
    assert_eq!(
        kernel.layout(id).unwrap(),
        dbtouch::storage::layout::Layout::RowMajor
    );
    // data is still correct after the physical rotation
    kernel.set_action(id, TouchAction::Tuple).unwrap();
    let tap = kernel.tap(id, 0.5).unwrap();
    let tuple = tap.results.latest().unwrap().values.clone();
    let row = tap.results.latest().unwrap().row.0;
    assert_eq!(tuple[0], Value::Int(row as i64));
    assert_eq!(tuple[1], Value::Float(row as f64 * 0.5));
}

#[test]
fn drag_out_and_group_round_trip() {
    let mut kernel = Kernel::new(KernelConfig::default());
    let table = Table::from_columns(
        "orders",
        vec![
            StorageColumn::from_i64("id", (0..10_000).collect()),
            StorageColumn::from_f64("amount", (0..10_000).map(|i| i as f64).collect()),
            StorageColumn::from_i64("region", (0..10_000).map(|i| i % 4).collect()),
        ],
    )
    .unwrap();
    let tid = kernel.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
    let amount = kernel
        .drag_column_out(tid, "amount", SizeCm::new(2.0, 10.0))
        .unwrap();
    assert_eq!(kernel.view(tid).unwrap().attribute_count, 2);
    let grouped = kernel
        .group_into_table("amounts", &[amount], SizeCm::new(2.0, 10.0))
        .unwrap();
    assert_eq!(kernel.row_count(grouped).unwrap(), 10_000);
    // the standalone column can be queried on its own
    kernel
        .set_action(amount, TouchAction::Aggregate(AggregateKind::Max))
        .unwrap();
    let view = kernel.view(amount).unwrap();
    let outcome = kernel
        .run_trace(
            amount,
            &GestureSynthesizer::new(60.0).slide_down(&view, 0.5),
        )
        .unwrap();
    assert!(outcome.final_aggregate.unwrap() > 9_000.0);
}

#[test]
fn exploration_contest_dbtouch_touches_less_data() {
    let scenario = Scenario::contest(120_000, 17);
    let dbtouch = DbTouchExplorer::new(KernelConfig::default())
        .explore(&scenario, 0.02)
        .unwrap();
    let sql = SqlExplorer::new().explore(&scenario, 0.02).unwrap();
    assert!(dbtouch.error_fraction < 0.05);
    assert!(sql.error_fraction < 0.05);
    assert!(dbtouch.rows_touched * 5 < sql.rows_touched);
}

#[test]
fn remote_split_serves_coarse_locally_and_detail_remotely() {
    let column = StorageColumn::from_i64("c", (0..100_000).collect());
    let hierarchy = SampleHierarchy::build(column, 8).unwrap();
    let mut store = RemoteStore::new(hierarchy, 4, NetworkModel::default()).unwrap();
    let coarse = store.fetch(RowRange::new(0, 50_000), 6).unwrap();
    assert_eq!(coarse.served_from, ServedFrom::Local);
    let (quick, fine) = store
        .fetch_progressive(RowRange::new(0, 50_000), 0)
        .unwrap();
    assert_eq!(quick.served_from, ServedFrom::Local);
    let fine = fine.unwrap();
    assert_eq!(fine.served_from, ServedFrom::Remote);
    assert!(fine.simulated_micros > 0);
    // Unambiguous accounting: the plain local fetch and the progressive
    // request each count exactly once, in their own counters.
    let stats = store.stats();
    assert_eq!(stats.local_requests, 1);
    assert_eq!(stats.progressive_requests, 1);
    assert_eq!(stats.remote_requests, 0);
    assert_eq!(stats.total_requests(), 2);
    assert_eq!(stats.rows_shipped, fine.rows);
}

#[test]
fn gesture_driven_join_matches_baseline_join_semantics() {
    use dbtouch::core::join_session::{JoinSession, JoinSpec};

    // Two columns sharing keys; the baseline engine computes the exact join
    // size, the gesture-driven join over a full slow slide should find matches
    // for the prefix of data the gesture actually covered, with identical
    // key-equality semantics.
    let left_keys: Vec<i64> = (0..5_000).map(|i| i % 50).collect();
    let right_keys: Vec<i64> = (0..5_000).map(|i| i % 75).collect();

    let mut kernel = Kernel::new(KernelConfig::default());
    let left = kernel
        .load_column("left", left_keys.clone(), SizeCm::new(2.0, 10.0))
        .unwrap();
    let right = kernel
        .load_column("right", right_keys.clone(), SizeCm::new(2.0, 10.0))
        .unwrap();
    let view = kernel.view(left).unwrap();
    let trace = GestureSynthesizer::new(60.0).slide_down(&view, 3.0);
    let outcome = JoinSession::new(
        &kernel,
        JoinSpec {
            driving: left,
            other: right,
            driving_key: 0,
            other_key: 0,
        },
    )
    .unwrap()
    .run(&trace)
    .unwrap();

    assert!(outcome.stats.matches > 0);
    // every match joins equal keys
    for m in outcome.matches.iter().step_by(97) {
        assert_eq!(
            left_keys[m.left_row.index()],
            right_keys[m.right_row.index()],
            "match {m:?} joins unequal keys"
        );
    }
    // non-blocking behaviour: first match long before all consumed rows
    assert!(
        outcome.stats.rows_to_first_match * 10 < outcome.stats.left_rows + outcome.stats.right_rows
    );
}

#[test]
fn group_by_gesture_approximates_baseline_group_sizes() {
    // dbTouch group-by over a long slide vs. the exact group-by of the baseline
    // engine: relative group sizes should agree (all groups are equally likely).
    let rows = 40_000usize;
    let regions: Vec<i64> = (0..rows as i64).map(|i| i % 5).collect();
    let amounts: Vec<f64> = (0..rows).map(|i| (i % 10) as f64).collect();

    let mut db = dbtouch::baseline::engine::Database::new();
    db.register(
        Table::from_columns(
            "sales",
            vec![
                StorageColumn::from_i64("region", regions.clone()),
                StorageColumn::from_f64("amount", amounts.clone()),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    let exact = db
        .run_sql("select region, count(*) from sales group by region")
        .unwrap();
    assert_eq!(exact.rows.len(), 5);

    let mut kernel = Kernel::new(KernelConfig::default());
    let table = Table::from_columns(
        "sales",
        vec![
            StorageColumn::from_i64("region", regions),
            StorageColumn::from_f64("amount", amounts),
        ],
    )
    .unwrap();
    let id = kernel.load_table(table, SizeCm::new(4.0, 10.0)).unwrap();
    kernel
        .set_action(
            id,
            TouchAction::GroupBy {
                group_attribute: 0,
                value_attribute: 1,
                kind: AggregateKind::Count,
            },
        )
        .unwrap();
    let view = kernel.view(id).unwrap();
    let outcome = kernel
        .run_trace(id, &GestureSynthesizer::new(60.0).slide_down(&view, 4.0))
        .unwrap();
    assert_eq!(outcome.final_groups.len(), 5);
    // groups are uniform, so the touched sample should be roughly balanced too
    let counts: Vec<f64> = outcome.final_groups.iter().map(|(_, c)| *c).collect();
    let max = counts.iter().cloned().fold(f64::MIN, f64::max);
    let min = counts.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max <= 3.0 * min.max(1.0), "groups unbalanced: {counts:?}");
}

#[test]
fn baseline_and_dbtouch_agree_on_the_data() {
    // The baseline's exact average and the dbTouch running average from a slow
    // slide should agree within a few percent on uniform data.
    let values: Vec<i64> = (0..200_000).collect();
    let mut db = dbtouch::baseline::engine::Database::new();
    db.register(
        Table::from_columns("t", vec![StorageColumn::from_i64("v", values.clone())]).unwrap(),
    )
    .unwrap();
    let exact = db
        .run_sql("select avg(v) from t")
        .unwrap()
        .scalar()
        .unwrap()
        .as_f64()
        .unwrap();

    let mut kernel = Kernel::new(KernelConfig::default());
    let id = kernel
        .load_column("v", values, SizeCm::new(2.0, 10.0))
        .unwrap();
    kernel
        .set_action(
            id,
            TouchAction::Summary {
                half_window: Some(20),
                kind: AggregateKind::Avg,
            },
        )
        .unwrap();
    let view = kernel.view(id).unwrap();
    let outcome = kernel
        .run_trace(id, &GestureSynthesizer::new(60.0).slide_down(&view, 4.0))
        .unwrap();
    let approx = outcome.final_aggregate.unwrap();
    let relative_error = (approx - exact).abs() / exact;
    assert!(relative_error < 0.05, "approx {approx} vs exact {exact}");
}
